"""Setup shim.

The container this reproduction targets has setuptools but no ``wheel``
package and no network, so PEP 660 editable installs (which require
``bdist_wheel``) fail. Keeping a ``setup.py`` and no
``[build-system]`` table in pyproject.toml makes ``pip install -e .``
take the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
