"""The asyncio HTTP/JSON serving tier.

``HttpServer`` puts a wire protocol (:mod:`repro.server.wire`) in
front of a query backend:

* ``POST /v1/query`` — JSON request body carrying the full
  :class:`~repro.cypher.QueryOptions` surface; the response streams
  the result as chunked NDJSON (header frame, one frame per row,
  summary frame).
* ``GET /v1/health`` — liveness plus replica topology.
* ``GET /v1/metrics`` — the shared
  :class:`~repro.obs.MetricsRegistry` as JSON (server counters, and
  per-replica counters when serving from worker processes).

Admission control is the PR 4 fair-share
:class:`~repro.server.executor.Executor`, not a new mechanism: a
refused submission becomes ``429 Too Many Requests`` with a
``Retry-After`` header, an exhausted time budget ``504``, a closed
server ``503``, a malformed request or bad Cypher ``400`` — each with
a structured JSON error body a client can rebuild the original
exception from.

The event loop never runs a query itself: handlers submit to the
backend's executor (thread pool or replica processes) and await the
future, so slow queries don't stall health checks or other clients.

Two backends exist:

* :class:`ExecutorBackend` — queries run in-process on the Frappé
  facade's thread-pool executor (one process, shared page cache).
* :class:`~repro.server.replica.ReplicaBackend` — queries run on N
  ``mmap``'d worker processes behind the router (the
  millions-of-users shape; the OS page cache is shared, the GIL is
  not).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import AdmissionError, FrappeError
from repro.obs import Observability
from repro.server import wire
from repro.server.executor import (DEFAULT_QUEUE_CAPACITY,
                                   DEFAULT_WORKERS)

DEFAULT_HOST = "127.0.0.1"

#: Largest accepted request body; parameter-heavy queries are small,
#: so anything bigger is a client bug (413).
MAX_BODY_BYTES = 1 << 20

#: Header-section size limit handed to the stream reader.
_READ_LIMIT = 1 << 16

#: drain() the transport after this many streamed row frames, so a
#: slow client applies backpressure instead of buffering the result.
_DRAIN_EVERY = 256

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Mapping[str, str]
    body: bytes = b""

    @property
    def client(self) -> str:
        """The quota identity: the ``X-Frappe-Client`` header, or the
        anonymous pool for clients that don't send one."""
        return self.headers.get("x-frappe-client", "anonymous")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class _BadRequest(Exception):
    """Internal: malformed HTTP framing (maps to a 4xx and close)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ExecutorBackend:
    """Serve queries in-process from a Frappé facade's executor.

    The facade's own fair-share admission queue is the quota layer;
    this class only adapts its surface to what :class:`HttpServer`
    needs (``submit``/``health``/``metrics``/``close``).
    """

    def __init__(self, frappe: Any, *, workers: int = DEFAULT_WORKERS,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 max_per_client: int | None = None) -> None:
        self._frappe = frappe
        self.obs: Observability = frappe.obs
        self._executor = frappe.serve(
            workers, queue_capacity=queue_capacity,
            max_per_client=max_per_client)

    def submit(self, text: str, options: Any, client: str):
        return self._executor.submit(text, options, client=client)

    def health(self) -> dict[str, Any]:
        return {"mode": "in-process",
                "replicas": {"alive": 1, "configured": 1},
                "workers": self._executor.workers}

    def metrics(self) -> dict[str, Any]:
        return {"server": self.obs.registry.snapshot().as_dict(),
                "replicas": []}

    def close(self) -> None:
        self._frappe.close()


class HttpServer:
    """A minimal, dependency-free asyncio HTTP/1.1 server.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`). Connections are keep-alive; request bodies are
    bounded by ``max_body``.
    """

    def __init__(self, backend: Any, host: str = DEFAULT_HOST,
                 port: int = 0, *,
                 max_body: int = MAX_BODY_BYTES) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        obs = getattr(backend, "obs", None)
        registry = obs.registry if obs is not None else \
            Observability().registry
        self._requests = registry.counter("http.requests")
        self._errors = registry.counter("http.error_responses")
        self._connections = registry.gauge("http.active_connections")
        self._latency = registry.histogram("http.request_seconds")

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (resolves the ephemeral port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=_READ_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point (the CLI): serve until interrupted."""
        async def main() -> None:
            await self.start()
            await self.serve_forever()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass
        finally:
            self.backend.close()

    def start_background(self) -> "HttpServer":
        """Run the event loop on a daemon thread (tests, benchmarks).

        Returns once the socket is bound; :meth:`stop` tears it down.
        """
        ready = threading.Event()
        startup_error: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as error:  # noqa: BLE001
                startup_error.append(error)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                assert self._server is not None
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                pending = [task for task in asyncio.all_tasks(loop)
                           if not task.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="frappe-http", daemon=True)
        self._thread.start()
        ready.wait()
        if startup_error:
            raise startup_error[0]
        return self

    def stop(self, close_backend: bool = True) -> None:
        """Stop a background server and (by default) its backend."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None
        if close_backend:
            self.backend.close()

    def __enter__(self) -> "HttpServer":
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections.inc()
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    await self._send_simple(
                        writer, error.status,
                        {"schema_version": wire.WIRE_SCHEMA_VERSION,
                         "error": {"type": "BadRequest",
                                   "message": str(error)}},
                        keep_alive=False)
                    return
                if request is None:
                    return
                self._requests.inc()
                started = time.monotonic()
                try:
                    keep = await self._dispatch(request, writer)
                finally:
                    self._latency.observe(time.monotonic() - started)
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server teardown cancelled this connection
        finally:
            self._connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Request | None:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as error:
            raise _BadRequest(400, f"request line too long: {error}") \
                from error
        if not request_line:
            return None  # clean EOF between requests
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as error:
                raise _BadRequest(400, "header section too large") \
                    from error
            if line in (b"\r\n", b"\n", b""):
                break
            name, separator, value = \
                line.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as error:
            raise _BadRequest(400, "bad Content-Length") from error
        if length > self.max_body:
            # drain what the client is committed to sending (bounded)
            # before answering, so a well-behaved client blocked in
            # send() gets the 413 instead of a broken pipe when we
            # close the socket under it
            remaining = min(length, 16 * self.max_body)
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _BadRequest(
                413, f"request body of {length} bytes exceeds the "
                f"{self.max_body} byte limit")
        if length:
            body = await reader.readexactly(length)
        path = target.split("?", 1)[0]
        return Request(method, path, headers, body)

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        if request.path == "/v1/query":
            if request.method != "POST":
                return await self._method_not_allowed(
                    request, writer, "POST")
            return await self._handle_query(request, writer)
        if request.path == "/v1/health":
            if request.method != "GET":
                return await self._method_not_allowed(
                    request, writer, "GET")
            body = {"schema_version": wire.WIRE_SCHEMA_VERSION,
                    "status": "ok", **self.backend.health()}
            return await self._send_simple(
                writer, 200, body, keep_alive=request.keep_alive)
        if request.path == "/v1/metrics":
            if request.method != "GET":
                return await self._method_not_allowed(
                    request, writer, "GET")
            body = {"schema_version": wire.WIRE_SCHEMA_VERSION,
                    **self.backend.metrics()}
            return await self._send_simple(
                writer, 200, body, keep_alive=request.keep_alive)
        self._errors.inc()
        return await self._send_simple(
            writer, 404,
            {"schema_version": wire.WIRE_SCHEMA_VERSION,
             "error": {"type": "NotFound",
                       "message": f"no route {request.path!r}"}},
            keep_alive=request.keep_alive)

    async def _method_not_allowed(self, request: Request,
                                  writer: asyncio.StreamWriter,
                                  allowed: str) -> bool:
        self._errors.inc()
        return await self._send_simple(
            writer, 405,
            {"schema_version": wire.WIRE_SCHEMA_VERSION,
             "error": {"type": "MethodNotAllowed",
                       "message": f"{request.path} accepts "
                                  f"{allowed} only"}},
            keep_alive=request.keep_alive,
            extra_headers=(("Allow", allowed),))

    async def _handle_query(self, request: Request,
                            writer: asyncio.StreamWriter) -> bool:
        try:
            text, options = wire.parse_query_request(request.body)
            future = self.backend.submit(text, options, request.client)
        except FrappeError as error:
            return await self._send_error(writer, error,
                                          request.keep_alive)
        try:
            result = await asyncio.wrap_future(future)
        except FrappeError as error:
            return await self._send_error(writer, error,
                                          request.keep_alive)
        except Exception as error:  # noqa: BLE001 - engine bug; keep serving
            return await self._send_error(writer, error,
                                          request.keep_alive)
        # replica workers ship pre-serialized NDJSON bytes; the
        # in-process backend returns a Result we serialize here
        payload = result if isinstance(result, (bytes, bytearray)) \
            else wire.result_to_ndjson(result)
        await self._stream_ndjson(writer, bytes(payload),
                                  request.keep_alive)
        return request.keep_alive

    # -- response writing ----------------------------------------------

    @staticmethod
    def _head(status: int, keep_alive: bool,
              headers: tuple[tuple[str, str], ...]) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        lines.append("Connection: "
                     + ("keep-alive" if keep_alive else "close"))
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_simple(self, writer: asyncio.StreamWriter,
                           status: int, payload: dict[str, Any], *,
                           keep_alive: bool,
                           extra_headers: tuple[tuple[str, str], ...]
                           = ()) -> bool:
        body = json.dumps(payload).encode("utf-8")
        headers = (("Content-Type", "application/json"),
                   ("Content-Length", str(len(body)))) + extra_headers
        writer.write(self._head(status, keep_alive, headers) + body)
        await writer.drain()
        return keep_alive

    async def _send_error(self, writer: asyncio.StreamWriter,
                          error: BaseException,
                          keep_alive: bool) -> bool:
        self._errors.inc()
        status = wire.status_for(error)
        extra: tuple[tuple[str, str], ...] = ()
        if isinstance(error, AdmissionError):
            extra = (("Retry-After", str(wire.RETRY_AFTER_SECONDS)),)
        body = wire.error_body(error)
        headers = (("Content-Type", "application/json"),
                   ("Content-Length", str(len(body)))) + extra
        writer.write(self._head(status, keep_alive, headers) + body)
        await writer.drain()
        return keep_alive

    async def _stream_ndjson(self, writer: asyncio.StreamWriter,
                             payload: bytes,
                             keep_alive: bool) -> None:
        """Stream one NDJSON payload as chunked frames, row by row."""
        headers = (("Content-Type", "application/x-ndjson"),
                   ("Transfer-Encoding", "chunked"))
        writer.write(self._head(200, keep_alive, headers))
        pending = 0
        for line in payload.splitlines(keepends=True):
            writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
            pending += 1
            if pending >= _DRAIN_EVERY:
                await writer.drain()
                pending = 0
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def serve_http(backend: Any, host: str = DEFAULT_HOST,
               port: int = 0) -> HttpServer:
    """Start a background HTTP server over *backend*; returns the
    running server (read ``.port``/``.url``, call ``.stop()``)."""
    return HttpServer(backend, host, port).start_background()


__all__ = ["ExecutorBackend", "HttpServer", "Request", "serve_http",
           "DEFAULT_HOST", "MAX_BODY_BYTES"]
