"""The versioned HTTP/JSON wire schema.

One module owns everything that crosses a process or network boundary
so every surface speaks the same dialect:

* **Requests** — ``POST /v1/query`` bodies: ``{"query": "...",
  "options": {...QueryOptions fields...}}``. Unknown option keys are
  rejected (a client typo must not become a silently-ignored knob).
* **Results** — the canonical ``ResultPayload``
  (:meth:`repro.cypher.Result.to_dict`), streamed as NDJSON frames: a
  header line carrying ``schema_version`` and ``columns``, one
  ``{"row": [...]}`` line per row, and a trailing ``{"summary":
  {...}}`` line with stats and the optional profile tree.
* **Errors** — ``{"schema_version": 1, "error": {"type": ...,
  "message": ...}}`` plus an HTTP status per error class
  (:data:`ERROR_STATUS`); :func:`exception_from_dict` rebuilds the
  matching Python exception client-side, so ``FrappeClient.query``
  raises exactly what an in-process ``Frappe.query`` would have.

The replica tier reuses the same encoding over its worker pipes:
workers ship back pre-serialized NDJSON payload bytes, which the
router streams into HTTP responses without re-encoding.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro import errors
from repro.cypher.options import QueryOptions
from repro.cypher.result import RESULT_SCHEMA_VERSION, Result

#: Version of the request/response envelope (independent of the
#: result payload's own ``schema_version``, though currently in step).
WIRE_SCHEMA_VERSION = 1

class WireFormatError(errors.ServerError):
    """A request or frame did not match the wire schema (HTTP 400)."""


#: Error class -> HTTP status. Ordered most-specific-first; the first
#: ``isinstance`` match wins.
ERROR_STATUS: tuple[tuple[type[BaseException], int], ...] = (
    (errors.AdmissionError, 429),
    (errors.QueryTimeoutError, 504),
    (errors.ServerClosedError, 503),
    (WireFormatError, 400),
    (errors.CypherSyntaxError, 400),
    (errors.CypherSemanticError, 400),
    (errors.QueryError, 400),
    (errors.FrappeError, 500),
)

#: Seconds a 429'd client is told to back off (the Retry-After header).
RETRY_AFTER_SECONDS = 1


# -- requests ----------------------------------------------------------


def parse_query_request(body: bytes | str) -> tuple[str, QueryOptions]:
    """Decode a ``POST /v1/query`` body into (text, options).

    Raises :class:`WireFormatError` on malformed JSON, a missing
    ``query`` field, or unknown option keys.
    """
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireFormatError(f"request body is not JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise WireFormatError("request body must be a JSON object")
    text = payload.get("query")
    if not isinstance(text, str) or not text.strip():
        raise WireFormatError(
            'request body needs a non-empty "query" string')
    unknown = set(payload) - {"query", "options"}
    if unknown:
        raise WireFormatError("unknown request field(s): "
                              + ", ".join(sorted(unknown)))
    options_payload = payload.get("options") or {}
    if not isinstance(options_payload, dict):
        raise WireFormatError('"options" must be a JSON object')
    try:
        options = QueryOptions.from_dict(options_payload)
    except (ValueError, TypeError) as error:
        raise WireFormatError(str(error)) from error
    return text, options


def query_request(text: str,
                  options: QueryOptions | None = None) -> bytes:
    """Encode the client side of :func:`parse_query_request`."""
    payload: dict[str, Any] = {"query": text}
    if options is not None:
        encoded = options.to_dict()
        if encoded:
            payload["options"] = encoded
    return json.dumps(payload).encode("utf-8")


# -- results (NDJSON framing of the canonical ResultPayload) -----------


def _line(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") \
        + b"\n"


def result_to_ndjson(result: Result) -> bytes:
    """Frame one result as NDJSON: header, rows, summary."""
    return payload_to_ndjson(result.to_dict())


def payload_to_ndjson(payload: dict[str, Any]) -> bytes:
    """Frame a :meth:`Result.to_dict` payload as NDJSON lines."""
    frames = [_line({"schema_version": payload["schema_version"],
                     "columns": payload["columns"]})]
    frames.extend(_line({"row": row}) for row in payload["rows"])
    frames.append(_line({"summary": {
        "stats": payload["stats"], "profile": payload["profile"]}}))
    return b"".join(frames)


def payload_from_ndjson(data: bytes | str | Iterable[str],
                        ) -> dict[str, Any]:
    """Reassemble NDJSON frames into the canonical ResultPayload.

    Accepts the whole stream as bytes/str or an iterable of lines (a
    streaming client hands the response line iterator straight in).
    """
    if isinstance(data, bytes):
        lines: Iterable[str] = data.decode("utf-8").splitlines()
    elif isinstance(data, str):
        lines = data.splitlines()
    else:
        lines = data
    header: dict[str, Any] | None = None
    rows: list[list[Any]] = []
    summary: dict[str, Any] | None = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as error:
            raise WireFormatError(
                f"bad NDJSON frame: {error}") from error
        if "row" in frame:
            rows.append(frame["row"])
        elif "summary" in frame:
            summary = frame["summary"]
        elif "columns" in frame:
            header = frame
        elif "error" in frame:
            raise exception_from_dict(frame["error"])
        else:
            raise WireFormatError(f"unrecognized frame: {line[:80]}")
    if header is None:
        raise WireFormatError("result stream carried no header frame")
    if summary is None:
        raise WireFormatError("result stream ended without a summary "
                              "frame (truncated response?)")
    return {"schema_version": header.get("schema_version",
                                         RESULT_SCHEMA_VERSION),
            "columns": header["columns"],
            "rows": rows,
            "stats": summary.get("stats", {}),
            "profile": summary.get("profile")}


def result_from_ndjson(data: bytes | str | Iterable[str]) -> Result:
    return Result.from_dict(payload_from_ndjson(data))


# -- errors ------------------------------------------------------------


def status_for(error: BaseException) -> int:
    """The HTTP status a given exception maps to (500 fallback)."""
    for cls, status in ERROR_STATUS:
        if isinstance(error, cls):
            return status
    return 500


def error_to_dict(error: BaseException) -> dict[str, Any]:
    """Encode an exception for the wire (or a worker pipe)."""
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, errors.QueryTimeoutError):
        payload["seconds"] = error.seconds
    if isinstance(error, errors.AdmissionError):
        payload["client"] = error.client
        payload["retry_after"] = RETRY_AFTER_SECONDS
    if isinstance(error, errors.ShardCrashedError):
        payload["shard"] = error.shard
    return payload


def error_body(error: BaseException) -> bytes:
    """The JSON body of a non-200 response."""
    return json.dumps({"schema_version": WIRE_SCHEMA_VERSION,
                       "error": error_to_dict(error)}).encode("utf-8")


def exception_from_dict(payload: dict[str, Any]) -> errors.FrappeError:
    """Rebuild the Python exception an error payload describes.

    Unknown types degrade to :class:`~repro.errors.ServerError` with
    the original type name preserved in the message — a client talking
    to a newer server fails usefully instead of crashing the decoder.
    """
    kind = payload.get("type", "")
    message = payload.get("message", "")
    if kind == "QueryTimeoutError":
        error = errors.QueryTimeoutError(payload.get("seconds", 0.0))
        # keep the server's exact message (it names the server-side
        # budget, which is what the operator greps for)
        error.args = (message,)
        return error
    if kind == "AdmissionError":
        return errors.AdmissionError(message,
                                     client=payload.get("client"))
    if kind == "ShardCrashedError":
        return errors.ShardCrashedError(message,
                                        shard=payload.get("shard"))
    cls = getattr(errors, kind, None)
    if isinstance(cls, type) and issubclass(cls, errors.FrappeError):
        try:
            return cls(message)
        except TypeError:
            pass  # odd constructor signature; fall through
    return errors.ServerError(f"{kind or 'unknown error'}: {message}")
