"""Concurrent query serving.

A :class:`~repro.server.executor.Executor` runs queries from a pool of
worker threads against one engine, with bounded admission
(backpressure instead of unbounded queue growth), per-client fair
share, and cooperative deadline enforcement that counts queue wait
against each query's time budget.

:meth:`repro.core.frappe.Frappe.query_async` is the friendly front
door; ``frappe serve`` drives it from the command line.
"""

from repro.server.executor import Executor, QueryJob

__all__ = ["Executor", "QueryJob"]
