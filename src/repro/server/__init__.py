"""Concurrent and networked query serving.

Three layers, innermost first:

* :class:`~repro.server.executor.Executor` — a thread-pool query
  executor with bounded admission (backpressure instead of unbounded
  queue growth), per-client fair share, and cooperative deadline
  enforcement that counts queue wait against each query's budget.
  :meth:`repro.core.frappe.Frappe.query_async` is its friendly front
  door.
* :mod:`repro.server.http` — an asyncio HTTP/JSON wire tier in front
  of an executor: ``POST /v1/query`` (NDJSON-streamed rows),
  ``GET /v1/health``, ``GET /v1/metrics``, structured error mapping
  (429/504/503/400). The request/response schema lives in
  :mod:`repro.server.wire`.
* :mod:`repro.server.replica` — N ``mmap``'d worker processes behind
  a least-loaded router with crash detection, transparent retry and
  respawn. ``frappe serve --http PORT --replicas N`` is the CLI
  deployment of the full stack; :class:`repro.client.FrappeClient`
  is the matching in-Python client.
* :mod:`repro.server.shard` — scatter/gather routing over a
  subtree-sharded store (``frappe shard-split`` + ``frappe serve
  --http --shards DIR``): per-shard replica sets, single-shard
  dispatch pruned by index statistics, partial-aggregation scatter,
  and a gateway engine over the composite
  :class:`~repro.graphdb.storage.sharding.ShardedStore` view.
"""

from typing import Any

from repro.server.executor import Executor, QueryJob
from repro.server.http import ExecutorBackend, HttpServer, serve_http
from repro.server.replica import Replica, ReplicaBackend, ReplicaSet

__all__ = ["Executor", "ExecutorBackend", "HttpServer", "QueryJob",
           "Replica", "ReplicaBackend", "ReplicaSet", "ShardBackend",
           "ShardRouter", "serve_http"]

_SHARD_EXPORTS = ("ShardBackend", "ShardRouter")


def __getattr__(name: str) -> Any:
    # resolved lazily: repro.server.shard imports the sharded-store
    # layer, whose own import chain re-enters this package — an eager
    # import here would dead-end mid-initialization
    if name in _SHARD_EXPORTS:
        from repro.server import shard
        return getattr(shard, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
