"""A thread-pool query executor with bounded, fair admission.

The serving model is deliberately simple — the paper's Frappé is an
interactive service: many developers fire ad-hoc queries while the
indexer keeps ingesting.  What that requires of the engine is exactly
what PR 4's snapshot layer provides (each query pins one epoch); what
it requires of the server is:

* **Bounded admission.**  The queue holds at most ``queue_capacity``
  waiting queries; beyond that :class:`~repro.errors.AdmissionError`
  is raised immediately (backpressure) instead of buffering without
  limit.
* **Fair share.**  A single chatty client cannot occupy the whole
  queue: with ``max_per_client`` set, a client over its share is
  refused even while the queue has room for others.
* **Cooperative deadlines.**  A query's ``QueryOptions.timeout`` is a
  promise about *latency from submission*, so queue wait counts
  against it.  Workers subtract the wait from the budget they hand the
  engine, and a query whose budget expired while queued fails with
  :class:`~repro.errors.QueryTimeoutError` without executing at all.

Everything observable is metered into the shared registry:
``server.submitted`` / ``server.rejected`` / ``server.completed`` /
``server.failed`` / ``server.timeouts`` counters, the
``server.queue_depth`` and ``server.active_workers`` gauges, and the
``server.queue_wait_seconds`` histogram.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.cypher.options import QueryOptions
from repro.errors import (AdmissionError, ExecutorShutdownError,
                          QueryTimeoutError, ServerClosedError)

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_CAPACITY = 64

#: minimum budget (seconds) handed to the engine when a deadline is
#: nearly exhausted at dequeue time — so the engine raises its own
#: uniform QueryTimeoutError instead of us special-casing "expired by
#: a hair while queued"
_MIN_BUDGET = 1e-9


@dataclass
class QueryJob:
    """One admitted query waiting for (or holding) a worker."""

    text: str
    options: QueryOptions
    client: str
    future: Future = field(default_factory=Future)
    submitted_at: float = 0.0
    #: monotonic instant the timeout budget runs out (None = no budget)
    deadline: float | None = None


class TaskHandle:
    """A claimable unit of intra-query work (``Executor.spawn_task``).

    Exactly one thread runs the task: a pool worker that claims it
    from the task deque, or the spawner itself inside :meth:`result`
    (caller-help). Caller-help is the no-deadlock guarantee — a query
    that parallelized itself onto a saturated pool degrades to running
    its own morsels inline instead of waiting on workers that are all
    busy running queries that are themselves waiting on tasks.
    """

    __slots__ = ("_fn", "_claimed", "_lock", "_done", "_result",
                 "_error")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self._fn = fn
        self._claimed = False
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None

    def _claim(self) -> bool:
        with self._lock:
            if self._claimed:
                return False
            self._claimed = True
            return True

    def _run(self) -> None:
        try:
            self._result = self._fn()
        except BaseException as error:  # noqa: BLE001 - result re-raises
            self._error = error
        finally:
            self._done.set()

    def _fail(self, error: BaseException) -> bool:
        """Claim the task and resolve it with *error* without running
        it.  Returns False when some thread already claimed it (its
        outcome stands).  This is how :meth:`Executor.close` drains
        the task deque and how a scatter/gather caller releases
        partials it will never collect."""
        if not self._claim():
            return False
        self._error = error
        self._done.set()
        return True

    def cancel(self) -> bool:
        """Release an uncollected task: if no thread claimed it yet it
        resolves with :class:`~repro.errors.ServerClosedError` and
        ``True`` is returned; a task already running (or finished)
        keeps its outcome and ``False`` is returned.  Gather loops
        call this on remaining handles when one partial fails, so a
        scattered query never leaves claimable work behind."""
        return self._fail(ServerClosedError(
            "task released by its spawner before it ran"))

    def result(self) -> Any:
        """The task's return value (re-raises its exception).

        If no worker claimed the task yet, the calling thread claims
        and runs it here — so ``result()`` never deadlocks, even with
        zero free workers.
        """
        if self._claim():
            self._run()
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._result


class Executor:
    """Runs queries on worker threads against one engine.

    Parameters
    ----------
    runner:
        ``callable(text, options) -> Result`` — normally a bound
        :meth:`CypherEngine.run`, called as
        ``runner(text, options=options)``.
    workers:
        Worker-thread count (the ``--workers`` of ``frappe serve``).
    queue_capacity:
        Maximum *waiting* queries; submissions beyond it are refused
        with :class:`~repro.errors.AdmissionError`.
    max_per_client:
        Fair-share bound on one client's in-flight queries (queued +
        running). ``None`` derives ``max(1, queue_capacity // 4)``; a
        submission over the bound is refused even if the queue has
        room.
    obs:
        An :class:`~repro.obs.Observability` bundle to meter into
        (the Frappé facade passes its own so server counters land in
        the same registry as engine counters). ``None`` disables
        metering.
    """

    def __init__(self, runner: Callable[..., Any], *,
                 workers: int = DEFAULT_WORKERS,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 max_per_client: int | None = None,
                 obs: Any = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if max_per_client is not None and max_per_client < 1:
            raise ValueError("max_per_client must be >= 1")
        self._runner = runner
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.max_per_client = max_per_client \
            if max_per_client is not None \
            else max(1, queue_capacity // 4)
        self._queue: deque[QueryJob] = deque()
        #: intra-query work (morsel tasks) — preferred over new jobs
        #: so a running query finishes before fresh ones start
        self._tasks: deque[TaskHandle] = deque()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._in_flight: dict[str, int] = {}
        self._shutdown = False
        self._metered = obs is not None
        if self._metered:
            registry = obs.registry
            self._submitted = registry.counter("server.submitted")
            self._rejected = registry.counter("server.rejected")
            self._completed = registry.counter("server.completed")
            self._failed = registry.counter("server.failed")
            self._timeouts = registry.counter("server.timeouts")
            self._drained = registry.counter("server.drained")
            self._tasks_drained = registry.counter(
                "server.tasks_drained")
            self._tasks_spawned = registry.counter(
                "server.tasks_spawned")
            self._queue_depth = registry.gauge("server.queue_depth")
            self._active = registry.gauge("server.active_workers")
            self._wait = registry.histogram(
                "server.queue_wait_seconds")
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"frappe-query-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(self, text: str, options: QueryOptions | None = None,
               *, client: str = "anonymous") -> Future:
        """Admit a query; returns a ``concurrent.futures.Future``.

        The future resolves to the engine's
        :class:`~repro.cypher.Result`, or raises the engine's error;
        ``future.cancel()`` works until a worker picks the job up.

        Raises :class:`~repro.errors.AdmissionError` (queue full or
        client over fair share — nothing was enqueued) or
        :class:`~repro.errors.ExecutorShutdownError`.
        """
        opts = options if options is not None else QueryOptions()
        job = QueryJob(text=text, options=opts, client=client)
        with self._work:
            if self._shutdown:
                raise ExecutorShutdownError(
                    "executor has shut down; no new queries accepted")
            if len(self._queue) >= self.queue_capacity:
                self._inc("_rejected")
                raise AdmissionError(
                    f"queue full ({self.queue_capacity} waiting "
                    "queries); retry later")
            held = self._in_flight.get(client, 0)
            if held >= self.max_per_client:
                self._inc("_rejected")
                raise AdmissionError(
                    f"client {client!r} already has {held} queries "
                    f"in flight (fair share {self.max_per_client})",
                    client=client)
            job.submitted_at = time.monotonic()
            if opts.timeout is not None:
                job.deadline = job.submitted_at + opts.timeout
            self._in_flight[client] = held + 1
            self._queue.append(job)
            self._inc("_submitted")
            self._set_gauge("_queue_depth", len(self._queue))
            self._work.notify()
        return job.future

    def spawn_task(self, fn: Callable[[], Any]) -> TaskHandle:
        """Offer *fn* to the pool as intra-query work.

        Unlike :meth:`submit`, tasks bypass admission control: they
        are fractions of an already-admitted query, so refusing them
        would double-charge the client. Workers prefer tasks over new
        jobs (finish what's running first); if every worker is busy,
        the spawner's ``result()`` call runs the task inline
        (caller-help), so spawning is always safe — including after
        shutdown, when the task simply never reaches a worker.
        """
        handle = TaskHandle(fn)
        with self._work:
            if not self._shutdown:
                self._tasks.append(handle)
                self._inc("_tasks_spawned")
                self._work.notify()
        return handle

    def map(self, texts: list[str],
            options: QueryOptions | None = None,
            *, client: str = "anonymous") -> list[Future]:
        """Submit a batch; admission errors abort the remainder."""
        return [self.submit(text, options, client=client)
                for text in texts]

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting queries; optionally wait for the backlog.

        Already-admitted queries still run to completion (their
        futures resolve); only new submissions are refused.
        """
        with self._work:
            self._shutdown = True
            self._work.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries and *drain* the admission queue.

        Unlike :meth:`shutdown`, queued-but-not-yet-running queries do
        not run: each drained job's future fails deterministically
        with :class:`~repro.errors.ServerClosedError` (never a hang,
        never a bare ``CancelledError``), so a caller blocked in
        ``future.result()`` returns immediately. Queries a worker
        already picked up still run to completion; with ``wait=True``
        the call returns only once the worker threads exit.

        Unclaimed intra-query tasks (:meth:`spawn_task`) are drained
        the same way: each unclaimed handle resolves with
        :class:`~repro.errors.ServerClosedError` instead of lingering
        on the task deque, so a scatter/gather caller blocked in
        ``TaskHandle.result()`` unblocks and can release its gathered
        partials instead of leaking them.
        """
        with self._work:
            self._shutdown = True
            drained = list(self._queue)
            self._queue.clear()
            task_backlog = list(self._tasks)
            self._tasks.clear()
            for job in drained:
                remaining = self._in_flight.get(job.client, 1) - 1
                if remaining > 0:
                    self._in_flight[job.client] = remaining
                else:
                    self._in_flight.pop(job.client, None)
            self._set_gauge("_queue_depth", 0)
            self._work.notify_all()
        error = ServerClosedError(
            "executor closed; the query was drained from the "
            "admission queue before a worker picked it up")
        for job in drained:
            # a job someone already cancelled stays cancelled; every
            # other drained future carries the deterministic error
            if job.future.set_running_or_notify_cancel():
                job.future.set_exception(error)
                self._inc("_drained")
        task_error = ServerClosedError(
            "executor closed; the task was drained before any worker "
            "claimed it")
        for handle in task_backlog:
            # a task already claimed (by a worker or by caller-help)
            # keeps its outcome; every other handle resolves with the
            # deterministic error
            if handle._fail(task_error):
                self._inc("_tasks_drained")
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    def in_flight(self, client: str) -> int:
        """Queued + running queries charged to *client*."""
        with self._lock:
            return self._in_flight.get(client, 0)

    # -- worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._tasks and not self._queue \
                        and not self._shutdown:
                    self._work.wait()
                if self._tasks:
                    task = self._tasks.popleft()
                    # run outside the lock; a task some caller already
                    # helped with is simply skipped
                    job = None
                elif self._queue:
                    task = None
                    job = self._queue.popleft()
                    self._set_gauge("_queue_depth", len(self._queue))
                else:
                    return  # shutdown with a drained queue
            if task is not None:
                if task._claim():
                    task._run()
                continue
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    remaining = self._in_flight.get(job.client, 1) - 1
                    if remaining > 0:
                        self._in_flight[job.client] = remaining
                    else:
                        self._in_flight.pop(job.client, None)

    def _run_job(self, job: QueryJob) -> None:
        if not job.future.set_running_or_notify_cancel():
            return  # cancelled while queued
        now = time.monotonic()
        wait = now - job.submitted_at
        self._observe("_wait", wait)
        options = job.options
        if job.deadline is not None:
            # the queue wait already consumed part of the budget;
            # hand the engine only what's left so "timeout=2.0" means
            # two seconds from submit, not from dequeue
            budget = max(job.deadline - now, _MIN_BUDGET)
            options = replace(options, timeout=budget)
        self._gauge_delta("_active", +1)
        try:
            result = self._runner(job.text, options=options)
        except QueryTimeoutError as error:
            self._inc("_timeouts")
            self._inc("_failed")
            job.future.set_exception(error)
        except BaseException as error:  # noqa: BLE001 - future carries it
            self._inc("_failed")
            job.future.set_exception(error)
        else:
            self._inc("_completed")
            job.future.set_result(result)
        finally:
            self._gauge_delta("_active", -1)

    # -- metering ------------------------------------------------------

    def _inc(self, name: str) -> None:
        if self._metered:
            getattr(self, name).inc()

    def _set_gauge(self, name: str, value: float) -> None:
        if self._metered:
            getattr(self, name).set(value)

    def _observe(self, name: str, value: float) -> None:
        if self._metered:
            getattr(self, name).observe(value)

    def _gauge_delta(self, name: str, delta: int) -> None:
        if not self._metered:
            return
        gauge = getattr(self, name)
        if delta > 0:
            gauge.inc(delta)
        else:
            gauge.dec(-delta)

    def __repr__(self) -> str:
        with self._lock:
            state = "shut down" if self._shutdown else "serving"
            return (f"Executor({self.workers} workers, "
                    f"{len(self._queue)}/{self.queue_capacity} "
                    f"queued, {state})")
