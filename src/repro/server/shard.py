"""Scatter/gather serving over a subtree-sharded store.

The topology stacks the PR 9 shard layer under the PR 7 replica
tier::

    client ── HTTP ──▶ ShardBackend (fair-share Executor)
                          │ ShardRouter.execute
          ┌───────────────┼────────────────┐
          ▼               ▼                ▼
      shard 0          shard 1          shard 2        (ReplicaSet each)
      replica procs    replica procs    replica procs  (mmap, respawn)
          └───────────────┴────────────────┘
                          ▼
               gateway Frappe(ShardedStore)            (composite view)

Three routing tiers, picked per query by :meth:`ShardRouter.classify`:

* **dispatch** — the query is provably answerable by one shard alone:
  it is START-anchored, the anchor's exact index seek (or node-id set)
  lands in exactly one shard's postings, and it expands nothing (zero
  relationships), so every row is an owned node of that shard. The
  query runs on that shard's replica set and the reply bytes are
  forwarded as-is, with the owning shard id spliced into the summary
  frame. This is the tier the BENCH_PR9 "never slower than unsharded"
  gate measures: the store a worker opens is a fraction of the graph.
* **scatter** — a zero-relationship aggregation (``count``/``sum``/
  ``min``/``max`` over a label scan) decomposes into per-shard
  partials: ghost nodes are excluded from shard indexes, so the
  per-shard scans partition the source scan and the partial
  aggregates merge losslessly. Shards whose label postings are empty
  are pruned by the manifest statistics before fan-out.
* **gateway** — everything else (var-length traversals, multi-hop
  expansions, ``PROFILE``, ``collect``/``avg``/``DISTINCT``, ordered
  or paginated returns) runs on the in-process gateway engine over
  :class:`~repro.graphdb.storage.sharding.ShardedStore`. The
  composite view preserves ids, iteration order and planner
  statistics, so the gateway is *result-identical* to an unsharded
  store by construction — including db-hit accounting and PROFILE
  trees. Var-length expansion over the composite view is exactly the
  iterative frontier exchange of
  :func:`~repro.graphdb.storage.sharding.frontier_exchange`: each BFS
  level reads adjacency only on the frontier node's owner shard and
  ships foreign neighbor ids to their owners for the next round,
  with the visited set deduplicating boundary edges that are
  replicated on both sides of the cut.

A worker-process crash inside one shard's replica set stays invisible
(the set retries on a survivor and respawns in the background); only
when a whole shard's worker tier is exhausted does the client see a
structured :class:`~repro.errors.ShardCrashedError` naming the shard.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterator

from repro.cypher import ast
from repro.cypher.options import QueryOptions
from repro.cypher.parser import parse
from repro.cypher.result import Result
from repro.errors import (FrappeError, ReplicaCrashedError, ServerError,
                          ShardCrashedError)
from repro.graphdb.storage.sharding import (ShardedStore,
                                            load_shard_manifest,
                                            parse_exact_seek,
                                            shard_directory_name)
from repro.obs import Observability
from repro.server import wire
from repro.server.executor import Executor, TaskHandle
from repro.server.replica import ReplicaSet

#: aggregate functions whose partials merge losslessly across shards
#: (``avg`` needs a sum/count pair and ``collect`` a posting-order
#: merge — both route to the gateway instead)
DECOMPOSABLE_AGGREGATES = frozenset({"count", "sum", "min", "max"})

#: routing decisions memoized per query text (the store is immutable,
#: so a decision can never go stale)
DECISION_CACHE_SIZE = 512


@dataclasses.dataclass(frozen=True)
class RoutingDecision:
    """Where one query runs, and why."""

    tier: str              # 'dispatch' | 'scatter' | 'gateway'
    shards: tuple[int, ...]
    reason: str

    #: merge plan for the scatter tier: one aggregate kind per column
    merge: tuple[str, ...] = ()


def _walk_expr(expr: Any) -> Iterator[Any]:
    """Every sub-expression of an AST expression, including itself."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            yield from _walk_expr(arg)
    elif isinstance(expr, ast.Unary):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, ast.Binary):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, ast.PropertyAccess):
        yield from _walk_expr(expr.subject)


def _has_pattern_predicate(expr: Any) -> bool:
    return any(isinstance(node, ast.PatternPredicate)
               for node in _walk_expr(expr))


def _aggregate_kind(item: ast.ReturnItem) -> str | None:
    """The merge kind of one RETURN item, or None if not mergeable."""
    expr = item.expression
    if isinstance(expr, ast.CountStar):
        return "count"
    if isinstance(expr, ast.FunctionCall) and not expr.distinct \
            and expr.name in DECOMPOSABLE_AGGREGATES \
            and not any(isinstance(sub, (ast.FunctionCall,
                                         ast.CountStar))
                        for arg in expr.args
                        for sub in _walk_expr(arg)):
        return expr.name
    return None


def merge_partial_aggregates(kinds: tuple[str, ...] | list[str],
                             partial_rows: list[tuple[Any, ...]],
                             ) -> tuple[Any, ...]:
    """Fold per-shard aggregate rows into the global aggregate row.

    ``kinds[i]`` names the aggregate in column ``i``: ``count`` and
    ``sum`` partials add up; ``min``/``max`` partials compare, with
    ``None`` partials (a shard whose scan matched nothing) ignored —
    exactly the semantics the single-store aggregation has over the
    union of the shards' disjoint row sets.
    """
    merged: list[Any] = []
    for column, kind in enumerate(kinds):
        values = [row[column] for row in partial_rows]
        if kind in ("count", "sum"):
            present = [value for value in values if value is not None]
            if kind == "count":
                merged.append(sum(present))
            else:
                merged.append(sum(present) if present else None)
        elif kind in ("min", "max"):
            present = [value for value in values if value is not None]
            fold = min if kind == "min" else max
            merged.append(fold(present) if present else None)
        else:
            raise ValueError(f"cannot merge aggregate kind {kind!r}")
    return tuple(merged)


def splice_shards(payload: bytes, shards: list[int]) -> bytes:
    """Rewrite an NDJSON reply's summary frame with the serving shards.

    The dispatch tier forwards a replica's pre-serialized bytes; only
    the final summary line is decoded and re-encoded, so row frames —
    the bulk of the payload — are never touched.
    """
    body = payload.rstrip(b"\n")
    head, _, last = body.rpartition(b"\n")
    try:
        frame = json.loads(last)
    except json.JSONDecodeError:
        return payload
    summary = frame.get("summary")
    if not isinstance(summary, dict):
        return payload
    stats = summary.get("stats")
    if not isinstance(stats, dict):
        stats = {}
        summary["stats"] = stats
    stats["shards"] = list(shards)
    spliced = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    prefix = head + b"\n" if head else b""
    return prefix + spliced + b"\n"


class ShardRouter:
    """Scatter/gather query routing over one shard root.

    Parameters
    ----------
    root:
        A shard root written by ``frappe shard-split``.
    replicas:
        Worker processes per shard (each shard gets its own
        :class:`~repro.server.replica.ReplicaSet` over its shard
        store, mmap-shared like the PR 7 tier). ``0`` runs the
        dispatch and scatter tiers in-process on per-shard engines
        instead — same shard-local execution and wire payloads, no
        worker processes (the equivalence harness's mode).
    respawn:
        Replace crashed shard workers automatically.
    obs:
        Shared metrics sink; also carries the
        ``router.dispatched`` / ``router.scattered`` /
        ``router.gatewayed`` tier counters and
        ``router.shards_pruned``.
    """

    def __init__(self, root: str, replicas: int = 2, *,
                 config: Any = None, respawn: bool = True,
                 obs: Observability | None = None) -> None:
        # imported lazily: repro.core.frappe itself imports
        # repro.server, so a module-level import would re-enter the
        # half-initialized package (same pattern as replica.py)
        from repro.core.config import StoreConfig
        from repro.core.frappe import Frappe

        self.root = root
        self.manifest = load_shard_manifest(root)
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._dispatched = registry.counter("router.dispatched")
        self._scattered = registry.counter("router.scattered")
        self._gatewayed = registry.counter("router.gatewayed")
        self._pruned = registry.counter("router.shards_pruned")
        self._decision_hits = registry.counter(
            "router.decision_cache_hits")
        self._decisions: OrderedDict[tuple[str, bool],
                                     RoutingDecision] = OrderedDict()
        self._decision_lock = threading.Lock()
        if config is None:
            config = StoreConfig(mmap=True)
        self.store = ShardedStore(
            root, use_compiled_csr=config.use_compiled_csr)
        self.gateway = Frappe(self.store, obs=self.obs)
        self.replica_sets: list[ReplicaSet] = []
        self.shard_engines: list[Any] = []
        try:
            for entry in self.manifest["shards"]:
                directory = os.path.join(root, entry["directory"])
                if replicas > 0:
                    self.replica_sets.append(ReplicaSet(
                        directory, replicas, config=config,
                        respawn=respawn, obs=self.obs))
                else:
                    self.shard_engines.append(
                        Frappe.open(directory, config=config))
        except BaseException:
            self.close()
            raise

    @property
    def shard_count(self) -> int:
        return len(self.manifest["shards"])

    # -- classification ------------------------------------------------

    def classify(self, text: str,
                 options: QueryOptions | None = None) -> RoutingDecision:
        """Pick the routing tier for one query (side-effect free).

        The dispatch and scatter tiers only accept shapes whose
        shard-local execution is *provably* identical to the
        single-store execution; anything uncertain — including any
        text the parser rejects — falls through to the gateway, whose
        composite view is identical by construction.

        Decisions are memoized per (text, profiled) — the store is
        immutable, so they never go stale, and a serving workload's
        repeated queries skip the parse entirely (the BENCH_PR9
        dispatch gate counts this cost).
        """
        key = (text, bool(options is not None and options.profile))
        with self._decision_lock:
            cached = self._decisions.get(key)
            if cached is not None:
                self._decisions.move_to_end(key)
                self._decision_hits.inc()
                return cached
        decision = self._classify(text, options)
        with self._decision_lock:
            self._decisions[key] = decision
            while len(self._decisions) > DECISION_CACHE_SIZE:
                self._decisions.popitem(last=False)
        return decision

    def _classify(self, text: str,
                  options: QueryOptions | None) -> RoutingDecision:
        every = tuple(range(self.shard_count))
        if options is not None and options.profile:
            return RoutingDecision("gateway", every,
                                   "profiled run (options)")
        try:
            query = parse(text)
        except FrappeError:
            return RoutingDecision("gateway", every, "unparseable")
        if query.profile:
            return RoutingDecision("gateway", every, "profiled run")
        starts = [c for c in query.clauses if isinstance(c, ast.Start)]
        matches = [c for c in query.clauses if isinstance(c, ast.Match)]
        wheres = [c for c in query.clauses if isinstance(c, ast.Where)]
        returns = [c for c in query.clauses
                   if isinstance(c, ast.Return)]
        others = [c for c in query.clauses
                  if not isinstance(c, (ast.Start, ast.Match,
                                        ast.Where, ast.Return))]
        if others or len(returns) != 1:
            return RoutingDecision("gateway", every,
                                   "pipelined clauses")
        if any(_has_pattern_predicate(w.predicate) for w in wheres):
            return RoutingDecision("gateway", every,
                                   "pattern predicate in WHERE")
        patterns = [pattern for clause in matches
                    for pattern in clause.patterns]
        if any(pattern.rels or pattern.shortest
               for pattern in patterns):
            # any expansion can read a ghost's (incomplete) shard-local
            # adjacency or let the planner anchor on a shard-local scan
            return RoutingDecision("gateway", every, "expands edges")

        anchored = self._anchor_shards(starts)
        if anchored is not None:
            bound = {point.variable for start in starts
                     for point in start.points}
            free = any(node.variable not in bound
                       for pattern in patterns
                       for node in pattern.nodes)
            if free:
                # an unbound node pattern is a scan, and a shard-local
                # scan sees only owned nodes — not dispatchable
                return RoutingDecision("gateway", every,
                                       "scan beside the anchor")
            if len(anchored) == 1:
                return RoutingDecision(
                    "dispatch", (anchored[0],),
                    "anchor seek owned by one shard")
            return RoutingDecision("gateway", every,
                                   "anchor spans shards")
        if starts:
            return RoutingDecision("gateway", every,
                                   "unprunable START")

        return self._classify_scan(patterns, returns[0], every)

    def _anchor_shards(self, starts: list[ast.Start]) -> list[int] | None:
        """Shards an exact START anchor can live in, or None.

        ``None`` means "not a prunable anchor" (no START clause, a
        wildcard index query, ``node(*)``); a list means the anchor's
        rows are provably confined to those shards. An empty seek
        pins shard 0 — any shard returns the same empty result.
        """
        if len(starts) != 1 or len(starts[0].points) != 1:
            return None
        point = starts[0].points[0]
        if isinstance(point, ast.NodeIdStartPoint):
            if point.all_nodes:
                return None
            owners: set[int] = set()
            for node_id in point.ids:
                try:
                    owners.add(self.store.node_owner(node_id))
                except KeyError:
                    # a dead id raises the same NodeNotFoundError on
                    # every shard; let any target shard report it
                    continue
            return sorted(owners) if owners else [0]
        seek = parse_exact_seek(point.query)
        if seek is None:
            return None
        counts = self.store.shard_seek_counts(*seek)
        hit = [index for index, count in enumerate(counts) if count]
        self._pruned.inc(max(0, len(counts) - max(1, len(hit))))
        return hit if hit else [0]

    def _classify_scan(self, patterns: list[ast.Pattern],
                       returns: ast.Return,
                       every: tuple[int, ...]) -> RoutingDecision:
        """Scatter decision for anchorless zero-rel queries."""
        if len(patterns) != 1 or len(patterns[0].nodes) != 1:
            return RoutingDecision("gateway", every,
                                   "not a single node scan")
        if returns.distinct or returns.order_by or returns.skip \
                or returns.limit or returns.star or not returns.items:
            return RoutingDecision("gateway", every,
                                   "order-sensitive return")
        kinds = [_aggregate_kind(item) for item in returns.items]
        if any(kind is None for kind in kinds):
            return RoutingDecision("gateway", every,
                                   "non-decomposable return item")
        shards = list(every)
        labels = patterns[0].nodes[0].labels
        if labels:
            # manifest label statistics prune shards that cannot
            # contribute a row; keep one shard so the empty aggregate
            # row (count=0, min=null) still materializes
            counts = self.store.shard_label_counts(labels[0])
            shards = [index for index, count in enumerate(counts)
                      if count] or [0]
            self._pruned.inc(len(every) - len(shards))
        return RoutingDecision("scatter", tuple(shards),
                               "decomposable aggregation",
                               merge=tuple(kinds))

    # -- execution -----------------------------------------------------

    def execute(self, text: str, options: QueryOptions | None = None,
                *, spawn: Callable[[Callable[[], Any]], TaskHandle]
                | None = None) -> bytes:
        """Run one query through the router; returns NDJSON bytes.

        ``spawn`` (an :meth:`Executor.spawn_task`) parallelizes the
        scatter fan-out; without it partials run sequentially.
        """
        decision = self.classify(text, options)
        if decision.tier == "dispatch":
            self._dispatched.inc()
            shard = decision.shards[0]
            payload = self._execute_on(shard, text, options)
            return splice_shards(payload, [shard])
        if decision.tier == "scatter":
            self._scattered.inc()
            return self._scatter(text, options, decision, spawn)
        self._gatewayed.inc()
        result = self.gateway.query(text, options=options)
        result.stats.shards = list(decision.shards)
        return wire.result_to_ndjson(result)

    def _execute_on(self, shard: int, text: str,
                    options: QueryOptions | None) -> bytes:
        """One shard's replica set, with crashes escalated by name."""
        if not self.replica_sets:
            return wire.result_to_ndjson(
                self.shard_engines[shard].query(text, options=options))
        try:
            return self.replica_sets[shard].execute(text, options)
        except ReplicaCrashedError as error:
            raise ShardCrashedError(
                f"shard {shard} lost every worker mid-query",
                shard=shard) from error
        except ServerError as error:
            # ReplicaSet's retry-exhaustion paths raise the bare base
            # class; narrower server errors (admission etc.) pass on
            if type(error) is ServerError:
                raise ShardCrashedError(
                    f"shard {shard} is unrecoverable: {error}",
                    shard=shard) from error
            raise

    def _scatter(self, text: str, options: QueryOptions | None,
                 decision: RoutingDecision,
                 spawn: Callable[..., TaskHandle] | None) -> bytes:
        shards = list(decision.shards)
        if spawn is not None:
            handles = [spawn(lambda shard=shard: self._execute_on(
                shard, text, options)) for shard in shards]
            payloads = []
            try:
                for handle in handles:
                    payloads.append(handle.result())
            finally:
                # a failed partial must not leave siblings claimable
                # on the pool (nobody will ever collect them)
                for handle in handles[len(payloads):]:
                    handle.cancel()
        else:
            payloads = [self._execute_on(shard, text, options)
                        for shard in shards]
        partials = [wire.result_from_ndjson(payload)
                    for payload in payloads]
        merged_row = merge_partial_aggregates(
            decision.merge,
            [partial.rows[0] for partial in partials if partial.rows])
        first = partials[0]
        result = Result(list(first.columns), [merged_row],
                        dataclasses.replace(
                            first.stats, rows_produced=1,
                            expansions=sum(p.stats.expansions
                                           for p in partials),
                            elapsed_seconds=max(p.stats.elapsed_seconds
                                                for p in partials),
                            db_hits=sum(p.stats.db_hits
                                        for p in partials),
                            shards=shards))
        return wire.result_to_ndjson(result)

    # -- introspection / lifecycle -------------------------------------

    def alive(self) -> list[int]:
        """Live worker count per shard."""
        return [replica_set.alive()
                for replica_set in self.replica_sets]

    def pids(self) -> list[list[int]]:
        """Live worker pids per shard (the fault tests kill these)."""
        return [replica_set.pids()
                for replica_set in self.replica_sets]

    def topology(self) -> list[dict[str, Any]]:
        entries = []
        for index, entry in enumerate(self.manifest["shards"]):
            replica_set = self.replica_sets[index] \
                if index < len(self.replica_sets) else None
            entries.append({
                "shard": index,
                "directory": shard_directory_name(index),
                "alive": replica_set.alive()
                if replica_set is not None else 0,
                "configured": replica_set.configured
                if replica_set is not None else 0,
                "path_prefixes": list(entry.get("path_prefixes", ()))})
        return entries

    def close(self) -> None:
        for replica_set in self.replica_sets:
            replica_set.close()
        self.replica_sets = []
        for engine in self.shard_engines:
            engine.close()
        self.shard_engines = []
        gateway = getattr(self, "gateway", None)
        if gateway is not None:
            gateway.close()
            self.gateway = None

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardRouter({self.root!r}, "
                f"shards={self.shard_count}, alive={self.alive()})")


class ShardBackend:
    """The :class:`~repro.server.http.HttpServer` backend for a
    :class:`ShardRouter`.

    Admission reuses the fair-share executor exactly like
    :class:`~repro.server.replica.ReplicaBackend`; its worker threads
    dispatch to shard replica sets (blocking on pipes, not the GIL)
    and double as the scatter tier's partial-collection pool via
    ``spawn_task`` — which is what ties scattered partials into
    ``Executor.close``'s drain guarantee.
    """

    def __init__(self, router: ShardRouter, *,
                 workers: int | None = None,
                 queue_capacity: int = 64,
                 max_per_client: int | None = None) -> None:
        self.router = router
        self.obs = router.obs
        if workers is None:
            workers = max(2, 2 * router.shard_count)
        self._executor = Executor(
            self._run, workers=workers, queue_capacity=queue_capacity,
            max_per_client=max_per_client, obs=self.obs)

    def _run(self, text: str, options: Any = None) -> bytes:
        return self.router.execute(text, options,
                                   spawn=self._executor.spawn_task)

    def submit(self, text: str, options: Any, client: str):
        return self._executor.submit(text, options, client=client)

    def health(self) -> dict[str, Any]:
        return {"mode": "sharded",
                "shards": self.router.topology(),
                "workers": self._executor.workers}

    def metrics(self) -> dict[str, Any]:
        return {"server": self.obs.registry.snapshot().as_dict(),
                "shards": [{"shard": index,
                            "replicas": replica_set.metrics()}
                           for index, replica_set in enumerate(
                               self.router.replica_sets)]}

    def close(self) -> None:
        self._executor.close(wait=True)
        self.router.close()


__all__ = ["DECOMPOSABLE_AGGREGATES", "RoutingDecision", "ShardBackend",
           "ShardRouter", "merge_partial_aggregates", "splice_shards"]
