"""Multi-process read replicas over one immutable store.

The millions-of-users topology from the ROADMAP: a parent router and
``N`` worker processes that each ``Frappe.open`` the *same* store
directory with ``StoreConfig(mmap=True)``. The store is immutable and
memory-mapped, so the operating system shares one page cache across
every replica — adding a replica costs a process, not a copy of the
graph — and because each replica is its own interpreter, the GIL stops
being the serving bottleneck.

Topology::

    client ─ HTTP ─▶ parent router (asyncio + fair-share Executor)
                        │ least-loaded dispatch, pickle pipes
            ┌───────────┼───────────┐
            ▼           ▼           ▼
        worker 0     worker 1     worker 2      (spawned processes)
        mmap store   mmap store   mmap store    (one OS page cache)

Protocol (pickle frames over a duplex pipe): the parent sends
``{"op": "query", "id", "text", "options", "deadline"}`` and the
worker answers ``{"id", "ok": True, "payload": <NDJSON bytes>}`` or
``{"id", "ok": False, "error": <wire error dict>}`` — the payload is
pre-serialized *in the worker*, so the router never re-encodes rows,
it just frames bytes into the HTTP response. ``metrics`` and ``stop``
are the admin ops.

Crash handling: a pump thread per replica turns pipe EOF into
:class:`~repro.errors.ReplicaCrashedError` for that replica's
in-flight queries; :meth:`ReplicaSet.execute` catches it and replays
the query on a surviving replica (safe — the store is read-only), and
the set respawns the dead worker in the background. A client therefore
never observes a worker crash, only (bounded) extra latency.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Any

from repro.cypher.options import QueryOptions
from repro.errors import (QueryTimeoutError, ReplicaCrashedError,
                          ServerError)
from repro.obs import Observability
from repro.server import wire
from repro.server.executor import Executor

#: Seconds a worker gets to open the store and report ready.
STARTUP_TIMEOUT = 60.0

#: Seed for a fresh replica's reply-size EWMA: one page of NDJSON.
#: Until real replies arrive every replica scores identically, so the
#: router degenerates to the old least-in-flight-count behaviour.
INITIAL_REPLY_BYTES = 4096.0

#: EWMA smoothing for observed reply payload sizes. 0.2 keeps ~5
#: recent replies of memory — fast enough to follow a workload shift,
#: slow enough that one outlier reply does not blacklist a replica.
REPLY_BYTES_ALPHA = 0.2

#: spawn, not fork: the parent runs pump threads and an asyncio loop,
#: and forking a threaded process can clone held locks into the child.
_CONTEXT = multiprocessing.get_context("spawn")


def _worker_main(conn: Any, store_dir: str,
                 config_payload: dict[str, Any]) -> None:
    """One replica process: open the store, answer pipe requests.

    Runs single-threaded and in request order — determinism the
    crash-replay logic relies on (a replayed query cannot interleave
    with itself).
    """
    # import here: under the spawn start method this module is
    # re-imported in a fresh interpreter before this function runs
    from repro.core.config import StoreConfig
    from repro.core.frappe import Frappe

    frappe = Frappe.open(store_dir,
                         config=StoreConfig.from_dict(config_payload))
    try:
        conn.send({"op": "ready", "pid": os.getpid()})
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away
            op = message.get("op")
            if op == "stop":
                break
            if op == "query":
                conn.send(_run_query(frappe, message))
            elif op == "metrics":
                conn.send({"id": message["id"], "ok": True,
                           "pid": os.getpid(),
                           "metrics":
                           frappe.counters().as_dict()})
            else:
                conn.send({"id": message.get("id"), "ok": False,
                           "error": {"type": "ServerError",
                                     "message":
                                     f"unknown op {op!r}"}})
    finally:
        frappe.close()


def _run_query(frappe: Any, message: dict[str, Any]) -> dict[str, Any]:
    try:
        options = QueryOptions.from_dict(message.get("options") or {})
        deadline = message.get("deadline")
        if deadline is not None:
            # monotonic clocks are process-shared on Linux: recompute
            # the remaining budget so time spent queued in this
            # replica's pipe counts against the query, exactly like
            # the executor's queue wait does in-process
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise QueryTimeoutError(options.timeout or 0.0)
            options = QueryOptions.resolve(options, timeout=remaining)
        result = frappe.query(message["text"], options=options)
        return {"id": message["id"], "ok": True,
                "payload": wire.result_to_ndjson(result)}
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        return {"id": message["id"], "ok": False,
                "error": wire.error_to_dict(error)}


class _PendingReply:
    """A parent-side slot one pipe request resolves into."""

    __slots__ = ("event", "message")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.message: dict[str, Any] | None = None

    def resolve(self, message: dict[str, Any] | None) -> None:
        self.message = message
        self.event.set()


class Replica:
    """Parent-side handle for one worker process."""

    def __init__(self, index: int, store_dir: str,
                 config_payload: dict[str, Any]) -> None:
        self.index = index
        parent_conn, child_conn = _CONTEXT.Pipe(duplex=True)
        self.process = _CONTEXT.Process(
            target=_worker_main,
            args=(child_conn, store_dir, config_payload),
            name=f"frappe-replica-{index}", daemon=True)
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        if not parent_conn.poll(STARTUP_TIMEOUT):
            self.process.terminate()
            raise ServerError(
                f"replica {index} did not become ready within "
                f"{STARTUP_TIMEOUT:.0f}s")
        try:
            ready = parent_conn.recv()
        except (EOFError, OSError) as error:
            self.process.join(timeout=5.0)
            raise ServerError(
                f"replica {index} died while opening the store "
                f"(exit code {self.process.exitcode})") from error
        if ready.get("op") != "ready":
            self.process.terminate()
            raise ServerError(
                f"replica {index} sent {ready!r} instead of a ready "
                "handshake")
        self.pid: int = ready["pid"]
        self.alive = True
        self.in_flight = 0
        self.in_flight_bytes = 0.0
        self._bytes_ewma = INITIAL_REPLY_BYTES
        self._ids = itertools.count()
        self._pending: dict[int, _PendingReply] = {}
        self._lock = threading.Lock()
        self._on_death: Any = None  # set by the owning ReplicaSet
        self._pump = threading.Thread(
            target=self._pump_loop,
            name=f"frappe-replica-pump-{index}", daemon=True)
        self._pump.start()

    # -- request/reply -------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one op and block for its reply (thread-safe).

        Raises :class:`~repro.errors.ReplicaCrashedError` if the
        worker dies before answering.
        """
        slot = _PendingReply()
        with self._lock:
            if not self.alive:
                raise ReplicaCrashedError(
                    f"replica {self.index} (pid {self.pid}) is down")
            request_id = next(self._ids)
            self._pending[request_id] = slot
            self.in_flight += 1
            # charge the dispatch at the replica's current expected
            # reply size; settled against the observed size on reply
            estimate = self._bytes_ewma
            self.in_flight_bytes += estimate
            try:
                self._conn.send({**message, "id": request_id})
            except (BrokenPipeError, OSError) as error:
                self._pending.pop(request_id, None)
                self.in_flight -= 1
                self.in_flight_bytes -= estimate
                # a broken pipe is definitive death: mark it here so
                # the caller's retry cannot re-pick this replica while
                # the pump thread is still blocked on its EOF (on a
                # loaded box that window is long enough for a retry
                # loop to burn every attempt on the same dead worker)
                self.alive = False
                raise ReplicaCrashedError(
                    f"replica {self.index} pipe closed mid-send"
                ) from error
        try:
            slot.event.wait()
        finally:
            with self._lock:
                self.in_flight -= 1
                self.in_flight_bytes -= estimate
                payload = (slot.message or {}).get("payload")
                if isinstance(payload, (bytes, bytearray)):
                    self._bytes_ewma += REPLY_BYTES_ALPHA * (
                        len(payload) - self._bytes_ewma)
        if slot.message is None:
            raise ReplicaCrashedError(
                f"replica {self.index} (pid {self.pid}) died with "
                "the query in flight")
        return slot.message

    def _pump_loop(self) -> None:
        """Read replies until the pipe dies, then fail the stragglers."""
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            slot = None
            with self._lock:
                slot = self._pending.pop(message.get("id"), None)
            if slot is not None:
                slot.resolve(message)
        with self._lock:
            self.alive = False
            stragglers = list(self._pending.values())
            self._pending.clear()
        for slot in stragglers:
            slot.resolve(None)  # -> ReplicaCrashedError in request()
        callback = self._on_death
        if callback is not None:
            callback(self)

    def load(self) -> float:
        """Dispatch score: estimated bytes still owed by this worker.

        A count-only score dispatches a point lookup behind a replica
        that is serializing a multi-megabyte traversal reply while its
        siblings sit idle at the same job count — the 4-replica
        regression recorded in BENCH_PR7.json / EXPERIMENTS.md. Bytes
        in flight (each dispatch charged at the replica's reply-size
        EWMA) makes expensive queries visibly expensive to the router.
        """
        with self._lock:
            return self.in_flight_bytes

    # -- lifecycle -----------------------------------------------------

    def stop(self, join_timeout: float = 10.0) -> None:
        self._on_death = None
        with self._lock:
            self.alive = False
        try:
            self._conn.send({"op": "stop"})
        except (BrokenPipeError, OSError):
            pass
        self.process.join(join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(join_timeout)
        self._conn.close()

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"Replica({self.index}, pid={self.pid}, {state}, "
                f"{self.in_flight} in flight)")


class ReplicaSet:
    """N worker processes serving one immutable store.

    Parameters
    ----------
    store_dir:
        The saved store every replica opens.
    replicas:
        Worker-process count.
    config:
        Per-worker open configuration
        (:class:`~repro.core.config.StoreConfig`); defaults to
        ``mmap=True`` so replicas share the OS page cache.
    respawn:
        Replace a crashed worker automatically (on by default; the
        crash-respawn test and ``frappe serve --replicas`` rely on
        it).
    obs:
        Metrics sink: ``replica.dispatched`` / ``replica.retries`` /
        ``replica.crashes`` / ``replica.respawns`` counters and the
        ``replica.alive`` gauge.
    """

    def __init__(self, store_dir: str, replicas: int = 2, *,
                 config: Any = None, respawn: bool = True,
                 obs: Observability | None = None) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        from repro.core.config import StoreConfig
        if config is None:
            config = StoreConfig(mmap=True)
        self.store_dir = store_dir
        self.configured = replicas
        self.config = config
        self._respawn = respawn
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._dispatched = registry.counter("replica.dispatched")
        self._retries = registry.counter("replica.retries")
        self._crashes = registry.counter("replica.crashes")
        self._respawns = registry.counter("replica.respawns")
        self._alive_gauge = registry.gauge("replica.alive")
        self._lock = threading.Lock()
        self._closing = False
        self._rr = itertools.count()
        self._replicas: list[Replica] = []
        try:
            for index in range(replicas):
                self._replicas.append(self._spawn(index))
        except BaseException:
            self.close()
            raise
        self._alive_gauge.set(len(self._replicas))

    def _spawn(self, index: int) -> Replica:
        replica = Replica(index, self.store_dir, self.config.to_dict())
        replica._on_death = self._replica_died
        return replica

    # -- routing -------------------------------------------------------

    def _pick(self) -> Replica:
        """Least-loaded live replica; round-robin breaks ties.

        Load is :meth:`Replica.load` — estimated reply bytes in
        flight, not job count — so one replica grinding a large
        traversal reply stops absorbing point lookups that an idle
        sibling could answer immediately.
        """
        with self._lock:
            live = [replica for replica in self._replicas
                    if replica.alive]
            if not live:
                raise ServerError(
                    "no live replicas (all workers down)")
            offset = next(self._rr) % len(live)
            rotated = live[offset:] + live[:offset]
        return min(rotated, key=lambda replica: replica.load())

    def execute(self, text: str,
                options: QueryOptions | None = None) -> bytes:
        """Run one query on some replica; returns NDJSON payload bytes.

        Thread-safe (the fair-share executor calls this from its
        worker threads). A replica crash mid-query is retried on the
        survivors — the store is immutable, so a replay returns the
        same rows.
        """
        message: dict[str, Any] = {
            "op": "query", "text": text,
            "options": options.to_dict() if options is not None
            else {}}
        if options is not None and options.timeout is not None:
            message["deadline"] = time.monotonic() + options.timeout
        attempts = self.configured + 1
        for attempt in range(attempts):
            replica = self._pick()
            self._dispatched.inc()
            try:
                reply = replica.request(message)
            except ReplicaCrashedError:
                self._retries.inc()
                continue
            if reply["ok"]:
                return reply["payload"]
            raise wire.exception_from_dict(reply["error"])
        raise ServerError(
            f"query failed on {attempts} replicas in a row; "
            "serving tier is unhealthy")

    # -- crash handling ------------------------------------------------

    def _replica_died(self, dead: Replica) -> None:
        """Pump-thread callback: account the crash, maybe respawn."""
        self._crashes.inc()
        with self._lock:
            if self._closing or dead not in self._replicas:
                return
            self._replicas.remove(dead)
            self._alive_gauge.set(len(self._replicas))
            index = dead.index
        dead.process.join(timeout=1.0)
        if not self._respawn:
            return
        try:
            replacement = self._spawn(index)
        except Exception:  # noqa: BLE001 - crash loop; gauge shows the hole
            return
        with self._lock:
            if self._closing:
                replacement.stop()
                return
            self._replicas.append(replacement)
            self._alive_gauge.set(len(self._replicas))
        self._respawns.inc()

    # -- introspection -------------------------------------------------

    def alive(self) -> int:
        with self._lock:
            return sum(1 for replica in self._replicas
                       if replica.alive)

    def pids(self) -> list[int]:
        """Live worker pids (the crash test kills one of these)."""
        with self._lock:
            return [replica.pid for replica in self._replicas
                    if replica.alive]

    def metrics(self) -> list[dict[str, Any]]:
        """Each live replica's counter snapshot (admin op)."""
        with self._lock:
            replicas = [replica for replica in self._replicas
                        if replica.alive]
        reports = []
        for replica in replicas:
            try:
                reply = replica.request({"op": "metrics"})
            except ReplicaCrashedError:
                continue
            reports.append({"pid": reply["pid"],
                            "metrics": reply["metrics"]})
        return reports

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closing = True
            replicas = list(self._replicas)
            self._replicas.clear()
        for replica in replicas:
            replica.stop()
        self._alive_gauge.set(0)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ReplicaSet({self.alive()}/{self.configured} alive, "
                f"store={self.store_dir!r})")


class ReplicaBackend:
    """The :class:`~repro.server.http.HttpServer` backend for a
    :class:`ReplicaSet`.

    Admission reuses the PR 4 fair-share executor: its worker threads
    are *dispatch* threads (they block on a pipe, not the GIL), so the
    pool is sized at ``2 x replicas`` by default to keep every worker
    process busy while requests overlap.
    """

    def __init__(self, replicas: ReplicaSet, *,
                 workers: int | None = None,
                 queue_capacity: int = 64,
                 max_per_client: int | None = None) -> None:
        self.replicas = replicas
        self.obs = replicas.obs
        if workers is None:
            workers = max(2, 2 * replicas.configured)
        self._executor = Executor(
            self._run, workers=workers, queue_capacity=queue_capacity,
            max_per_client=max_per_client, obs=self.obs)

    def _run(self, text: str, options: Any = None) -> bytes:
        return self.replicas.execute(text, options)

    def submit(self, text: str, options: Any, client: str):
        return self._executor.submit(text, options, client=client)

    def health(self) -> dict[str, Any]:
        return {"mode": "replicas",
                "replicas": {"alive": self.replicas.alive(),
                             "configured": self.replicas.configured},
                "workers": self._executor.workers}

    def metrics(self) -> dict[str, Any]:
        return {"server": self.obs.registry.snapshot().as_dict(),
                "replicas": self.replicas.metrics()}

    def close(self) -> None:
        self._executor.close(wait=True)
        self.replicas.close()


__all__ = ["Replica", "ReplicaBackend", "ReplicaSet", "_worker_main"]
