"""Graph metrics for the paper's Table 3 and Figure 7.

Table 3 reports node count, edge count and "graph density" for the UEK
dependency graph; Figure 7 plots the count of nodes at each total
(in+out) degree on a log scale, observing a heavy tail whose hubs are
primitives (``int``, degree ~79K) and common constants (``NULL``,
~19K).
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

from repro.graphdb.view import Direction, GraphView


@dataclasses.dataclass(frozen=True)
class GraphMetrics:
    """The Table 3 row."""

    node_count: int
    edge_count: int
    density: float

    @property
    def edge_node_ratio(self) -> float:
        """The paper quotes "a ratio of 1:8" nodes to edges."""
        if not self.node_count:
            return 0.0
        return self.edge_count / self.node_count


def graph_metrics(view: GraphView) -> GraphMetrics:
    """Compute the Table 3 metrics for a graph.

    Density is the directed-simple-graph density ``E / (V * (V - 1))``;
    for a multigraph this can exceed 1 in principle, but dependency
    graphs are far below that.
    """
    nodes = view.node_count()
    edges = view.edge_count()
    if nodes > 1:
        density = edges / (nodes * (nodes - 1))
    else:
        density = 0.0
    return GraphMetrics(node_count=nodes, edge_count=edges, density=density)


def degree_distribution(view: GraphView,
                        direction: Direction = Direction.BOTH,
                        ) -> dict[int, int]:
    """degree -> node count, for the Figure 7 histogram."""
    counter: Counter[int] = Counter()
    for node_id in view.node_ids():
        counter[view.degree(node_id, direction)] += 1
    return dict(counter)


def top_degree_nodes(view: GraphView, limit: int = 10,
                     direction: Direction = Direction.BOTH,
                     ) -> list[tuple[int, int]]:
    """The hubs: (node id, degree) pairs, highest degree first."""
    degrees = ((view.degree(node_id, direction), node_id)
               for node_id in view.node_ids())
    best = sorted(degrees, reverse=True)[:limit]
    return [(node_id, degree) for degree, node_id in best]


def node_type_distribution(view: GraphView) -> dict[str, int]:
    """node TYPE -> count (the Table 1 node inventory of a graph)."""
    counter: Counter[str] = Counter()
    for node_id in view.node_ids():
        counter[str(view.node_property(node_id, "type", "?"))] += 1
    return dict(counter)


def edge_type_distribution(view: GraphView) -> dict[str, int]:
    """edge type -> count (the Table 1 edge inventory of a graph)."""
    counter: Counter[str] = Counter()
    for edge_id in view.edge_ids():
        counter[view.edge_type(edge_id)] += 1
    return dict(counter)


def powerlaw_alpha(distribution: dict[int, int],
                   degree_min: int = 1) -> float:
    """Maximum-likelihood exponent of a discrete power law.

    The continuous-approximation MLE
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` (Clauset et al.);
    used by the Figure 7 bench to check the synthetic graph's tail is
    power-law-shaped like the paper's.

    The approximation is accurate for ``degree_min >= 5`` or so; at
    ``degree_min = 1`` it underestimates alpha by several tenths
    (Clauset et al. 2009, Section 3.5) — pass a larger cutoff when the
    head of the distribution matters.
    """
    total = 0
    log_sum = 0.0
    for degree, count in distribution.items():
        if degree < degree_min:
            continue
        total += count
        log_sum += count * math.log(degree / (degree_min - 0.5))
    if not total or log_sum <= 0:
        return float("nan")
    return 1.0 + total / log_sum


def log_binned_histogram(distribution: dict[int, int],
                         bins_per_decade: int = 5,
                         ) -> list[tuple[float, float, int]]:
    """Aggregate a degree histogram into logarithmic bins.

    Returns (bin lower edge, bin upper edge, node count) rows — the
    series the Figure 7 bench prints (the paper's x axis is degree on a
    quasi-log scale).
    """
    if not distribution:
        return []
    max_degree = max(distribution)
    rows = []
    edge = 1.0
    ratio = 10 ** (1.0 / bins_per_decade)
    while edge <= max_degree:
        upper = edge * ratio
        count = sum(node_count for degree, node_count in distribution.items()
                    if edge <= degree < upper)
        rows.append((edge, upper, count))
        edge = upper
    zero_nodes = distribution.get(0, 0)
    if zero_nodes:
        rows.insert(0, (0.0, 1.0, zero_nodes))
    return rows
