"""Graph metrics for the paper's Table 3 and Figure 7.

Table 3 reports node count, edge count and "graph density" for the UEK
dependency graph; Figure 7 plots the count of nodes at each total
(in+out) degree on a log scale, observing a heavy tail whose hubs are
primitives (``int``, degree ~79K) and common constants (``NULL``,
~19K).
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

from repro.graphdb.view import Direction, GraphView


@dataclasses.dataclass(frozen=True)
class GraphMetrics:
    """The Table 3 row."""

    node_count: int
    edge_count: int
    density: float

    @property
    def edge_node_ratio(self) -> float:
        """The paper quotes "a ratio of 1:8" nodes to edges."""
        if not self.node_count:
            return 0.0
        return self.edge_count / self.node_count


def graph_metrics(view: GraphView) -> GraphMetrics:
    """Compute the Table 3 metrics for a graph.

    Density is the directed-simple-graph density ``E / (V * (V - 1))``;
    for a multigraph this can exceed 1 in principle, but dependency
    graphs are far below that.
    """
    nodes = view.node_count()
    edges = view.edge_count()
    if nodes > 1:
        density = edges / (nodes * (nodes - 1))
    else:
        density = 0.0
    return GraphMetrics(node_count=nodes, edge_count=edges, density=density)


def degree_distribution(view: GraphView,
                        direction: Direction = Direction.BOTH,
                        ) -> dict[int, int]:
    """degree -> node count, for the Figure 7 histogram."""
    counter: Counter[int] = Counter()
    for node_id in view.node_ids():
        counter[view.degree(node_id, direction)] += 1
    return dict(counter)


def top_degree_nodes(view: GraphView, limit: int = 10,
                     direction: Direction = Direction.BOTH,
                     ) -> list[tuple[int, int]]:
    """The hubs: (node id, degree) pairs, highest degree first."""
    degrees = ((view.degree(node_id, direction), node_id)
               for node_id in view.node_ids())
    best = sorted(degrees, reverse=True)[:limit]
    return [(node_id, degree) for degree, node_id in best]


def node_type_distribution(view: GraphView) -> dict[str, int]:
    """node TYPE -> count (the Table 1 node inventory of a graph)."""
    counter: Counter[str] = Counter()
    for node_id in view.node_ids():
        counter[str(view.node_property(node_id, "type", "?"))] += 1
    return dict(counter)


def edge_type_distribution(view: GraphView) -> dict[str, int]:
    """edge type -> count (the Table 1 edge inventory of a graph)."""
    counter: Counter[str] = Counter()
    for edge_id in view.edge_ids():
        counter[view.edge_type(edge_id)] += 1
    return dict(counter)


def powerlaw_alpha(distribution: dict[int, int],
                   degree_min: int = 1) -> float:
    """Maximum-likelihood exponent of a discrete power law.

    The continuous-approximation MLE
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` (Clauset et al.);
    used by the Figure 7 bench to check the synthetic graph's tail is
    power-law-shaped like the paper's.

    The approximation is accurate for ``degree_min >= 5`` or so; at
    ``degree_min = 1`` it underestimates alpha by several tenths
    (Clauset et al. 2009, Section 3.5) — pass a larger cutoff when the
    head of the distribution matters.
    """
    total = 0
    log_sum = 0.0
    for degree, count in distribution.items():
        if degree < degree_min:
            continue
        total += count
        log_sum += count * math.log(degree / (degree_min - 0.5))
    if not total or log_sum <= 0:
        return float("nan")
    return 1.0 + total / log_sum


def log_binned_histogram(distribution: dict[int, int],
                         bins_per_decade: int = 5,
                         ) -> list[tuple[float, float, int]]:
    """Aggregate a degree histogram into logarithmic bins.

    Returns (bin lower edge, bin upper edge, node count) rows — the
    series the Figure 7 bench prints (the paper's x axis is degree on a
    quasi-log scale).
    """
    if not distribution:
        return []
    max_degree = max(distribution)
    rows = []
    edge = 1.0
    ratio = 10 ** (1.0 / bins_per_decade)
    while edge <= max_degree:
        upper = edge * ratio
        count = sum(node_count for degree, node_count in distribution.items()
                    if edge <= degree < upper)
        rows.append((edge, upper, count))
        edge = upper
    zero_nodes = distribution.get(0, 0)
    if zero_nodes:
        rows.insert(0, (0.0, 1.0, zero_nodes))
    return rows


# --------------------------------------------------------------------------
# Planner statistics
# --------------------------------------------------------------------------

class GraphStatistics:
    """Incrementally maintained cardinalities feeding the Cypher planner.

    A :class:`~repro.graphdb.graph.PropertyGraph` owns one of these and
    updates it on every mutation; the read-only disk store builds one
    from metadata at open time. The planner reads label counts,
    per-edge-type counts and average out-degree to cost anchor choices
    and expansion orders, and the ``epoch`` invalidates compiled plans
    when the graph changes underneath them.
    """

    __slots__ = ("epoch", "node_count", "edge_count", "label_counts",
                 "edge_type_counts", "degree_stats")

    def __init__(self) -> None:
        self.epoch = 0
        self.node_count = 0
        self.edge_count = 0
        self.label_counts: Counter[str] = Counter()
        self.edge_type_counts: Counter[str] = Counter()
        # per-(direction, edge type) degree statistics, read for free
        # from the compiled CSR segment descriptors at store open:
        # {"edges": int, "max_degree": int, "histogram": [log2 buckets]}.
        # Purely additive — absent entries mean "unknown", and the
        # cost-model reads above never consult these, so plans are
        # identical with or without them.
        self.degree_stats: dict[tuple[str, str], dict] = {}

    @classmethod
    def from_counts(cls, node_count: int, edge_count: int,
                    label_counts: dict[str, int] | None = None,
                    edge_type_counts: dict[str, int] | None = None,
                    ) -> "GraphStatistics":
        stats = cls()
        stats.node_count = node_count
        stats.edge_count = edge_count
        stats.label_counts.update(label_counts or {})
        stats.edge_type_counts.update(edge_type_counts or {})
        return stats

    def clone(self) -> "GraphStatistics":
        """An independent copy (what an epoch snapshot pins): the
        planner costs against it while the live counters keep moving."""
        twin = GraphStatistics()
        twin.epoch = self.epoch
        twin.node_count = self.node_count
        twin.edge_count = self.edge_count
        twin.label_counts = Counter(self.label_counts)
        twin.edge_type_counts = Counter(self.edge_type_counts)
        twin.degree_stats = {key: dict(entry)
                             for key, entry in self.degree_stats.items()}
        return twin

    @classmethod
    def of_view(cls, view: GraphView) -> "GraphStatistics":
        """One full O(V+E) pass — the fallback for plain views."""
        stats = cls()
        stats.node_count = view.node_count()
        stats.edge_count = view.edge_count()
        for node_id in view.node_ids():
            stats.label_counts.update(view.node_labels(node_id))
        for edge_id in view.edge_ids():
            stats.edge_type_counts[view.edge_type(edge_id)] += 1
        return stats

    # -- mutation hooks (PropertyGraph calls these inline) -------------

    def bump(self) -> None:
        """Advance the epoch: any mutation stales compiled plans."""
        self.epoch += 1

    def node_added(self, labels: tuple[str, ...]) -> None:
        self.node_count += 1
        self.label_counts.update(labels)
        self.bump()

    def node_removed(self, labels: tuple[str, ...]) -> None:
        self.node_count -= 1
        self.label_counts.subtract(labels)
        self.bump()

    def label_added(self, label: str) -> None:
        self.label_counts[label] += 1
        self.bump()

    def label_removed(self, label: str) -> None:
        self.label_counts[label] -= 1
        self.bump()

    def edge_added(self, edge_type: str) -> None:
        self.edge_count += 1
        self.edge_type_counts[edge_type] += 1
        self.bump()

    def edge_removed(self, edge_type: str) -> None:
        self.edge_count -= 1
        self.edge_type_counts[edge_type] -= 1
        self.bump()

    # -- planner reads -------------------------------------------------

    def label_count(self, label: str) -> int:
        return max(self.label_counts.get(label, 0), 0)

    def edge_type_count(self, edge_type: str) -> int:
        return max(self.edge_type_counts.get(edge_type, 0), 0)

    def avg_out_degree(self, edge_types: tuple[str, ...] = ()) -> float:
        """Mean out-degree over all nodes, restricted to edge types.

        An empty ``edge_types`` means every type. This is the planner's
        per-step fanout estimate: a uniform-degree assumption, cheap
        and monotone in the true cost.
        """
        if not self.node_count:
            return 0.0
        if not edge_types:
            total = self.edge_count
        else:
            total = sum(self.edge_type_count(t) for t in edge_types)
        return total / self.node_count

    def set_degree_stats(self, direction: str, edge_type: str,
                         edges: int, max_degree: int,
                         histogram: list[int]) -> None:
        """Record one (direction, edge type) degree summary (the store
        reader feeds these from the CSR segment descriptors)."""
        self.degree_stats[(direction, edge_type)] = {
            "edges": edges,
            "max_degree": max_degree,
            "histogram": list(histogram),
        }

    def max_degree(self, edge_type: str | None = None,
                   direction: str = "out") -> int:
        """Largest per-node degree for *edge_type* in *direction* (all
        types when ``None``); 0 when no degree stats were recorded."""
        best = 0
        for (stat_direction, stat_type), entry in self.degree_stats.items():
            if stat_direction != direction:
                continue
            if edge_type is not None and stat_type != edge_type:
                continue
            best = max(best, entry["max_degree"])
        return best

    def degree_histogram(self, edge_type: str | None = None,
                         direction: str = "out") -> list[int]:
        """Element-wise sum of the log2-bucketed degree histograms
        matching *edge_type*/*direction* (empty list when unknown).
        Bucket ``b`` counts nodes with ``2**(b-1) <= degree < 2**b``."""
        total: list[int] = []
        for (stat_direction, stat_type), entry in self.degree_stats.items():
            if stat_direction != direction:
                continue
            if edge_type is not None and stat_type != edge_type:
                continue
            histogram = entry["histogram"]
            if len(histogram) > len(total):
                total.extend([0] * (len(histogram) - len(total)))
            for bucket, count in enumerate(histogram):
                total[bucket] += count
        return total

    def __repr__(self) -> str:
        return (f"GraphStatistics(epoch={self.epoch}, "
                f"nodes={self.node_count}, edges={self.edge_count}, "
                f"{len(self.label_counts)} labels, "
                f"{len(self.edge_type_counts)} edge types)")


def graph_statistics_for(view: GraphView) -> GraphStatistics:
    """The view's live statistics, or a one-shot computed fallback."""
    stats = getattr(view, "statistics", None)
    if isinstance(stats, GraphStatistics):
        return stats
    return GraphStatistics.of_view(view)
