"""A from-scratch property-graph DBMS: the reproduction's Neo4j substrate.

The package provides:

* :class:`~repro.graphdb.graph.PropertyGraph` — the in-memory mutable
  labeled property graph used while extracting a codebase.
* :mod:`~repro.graphdb.indexes` — label, property and "lucene-style"
  name auto-indexes (what the paper's ``node_auto_index`` resolves to).
* :mod:`~repro.graphdb.storage` — a record-oriented on-disk store with a
  page cache, mirroring Neo4j's node/relationship/property/string store
  file decomposition (paper Table 4 measures these files directly).
* :mod:`~repro.graphdb.traversal` — the embedded traversal framework the
  paper uses to work around Cypher's transitive-closure performance
  (Section 6.1).
"""

from repro.graphdb.graph import Direction, Edge, Node, PropertyGraph
from repro.graphdb.indexes import IndexManager
from repro.graphdb.snapshot import GraphSnapshot, pin_view
from repro.graphdb.view import GraphView

__all__ = [
    "Direction",
    "Edge",
    "GraphSnapshot",
    "GraphView",
    "IndexManager",
    "Node",
    "PropertyGraph",
    "pin_view",
]
