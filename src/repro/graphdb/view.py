"""The read-only graph protocol shared by memory- and disk-backed graphs.

Both :class:`repro.graphdb.graph.PropertyGraph` (in-memory, mutable) and
:class:`repro.graphdb.storage.store.StoreGraph` (record files behind a
page cache) implement this interface, so the Cypher executor, the
traversal framework, and the Frappé use-case queries run unchanged
against either — which is what lets the benchmark harness measure the
same query cold (from disk) and warm (cache-resident).
"""

from __future__ import annotations

import enum
from typing import Any, Collection, Iterable, Iterator, Protocol, runtime_checkable


class Direction(enum.Enum):
    """Edge direction relative to a node."""

    OUT = "out"
    IN = "in"
    BOTH = "both"

    def reverse(self) -> "Direction":
        if self is Direction.OUT:
            return Direction.IN
        if self is Direction.IN:
            return Direction.OUT
        return Direction.BOTH


@runtime_checkable
class GraphView(Protocol):
    """Read-only view of a labeled property graph.

    Node and edge identity is an ``int``. Properties follow the model in
    :mod:`repro.graphdb.properties`. Implementations must provide stable
    iteration order within one view instance (the query planner relies
    on this for deterministic results in tests).
    """

    # -- population --------------------------------------------------------

    def node_ids(self) -> Iterable[int]:
        """All live node ids."""
        ...

    def edge_ids(self) -> Iterable[int]:
        """All live edge ids."""
        ...

    def node_count(self) -> int:
        ...

    def edge_count(self) -> int:
        ...

    def has_node(self, node_id: int) -> bool:
        ...

    def has_edge(self, edge_id: int) -> bool:
        ...

    # -- nodes --------------------------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        ...

    def node_properties(self, node_id: int) -> dict[str, Any]:
        """A copy of the node's property map."""
        ...

    def node_property(self, node_id: int, key: str,
                      default: Any = None) -> Any:
        ...

    def nodes_with_label(self, label: str) -> Iterator[int]:
        ...

    # -- edges --------------------------------------------------------------

    def edge_source(self, edge_id: int) -> int:
        ...

    def edge_target(self, edge_id: int) -> int:
        ...

    def edge_type(self, edge_id: int) -> str:
        ...

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        ...

    def edge_property(self, edge_id: int, key: str,
                      default: Any = None) -> Any:
        ...

    # -- adjacency ----------------------------------------------------------

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        """Edge ids incident to *node_id*, filtered by direction/type."""
        ...

    def degree(self, node_id: int,
               direction: Direction = Direction.BOTH,
               types: Collection[str] | None = None) -> int:
        ...

    # -- indexes -------------------------------------------------------------

    @property
    def indexes(self) -> "IndexReader":
        ...


@runtime_checkable
class IndexReader(Protocol):
    """Read side of the index manager; see :mod:`repro.graphdb.indexes`."""

    def lookup(self, key: str, value: Any) -> Iterator[int]:
        ...

    def query(self, query_string: str) -> Iterator[int]:
        ...

    def label(self, label: str) -> Iterator[int]:
        ...


def other_end(view: GraphView, edge_id: int, node_id: int) -> int:
    """The endpoint of *edge_id* that is not *node_id* (self-loop safe)."""
    source = view.edge_source(edge_id)
    if source != node_id:
        return source
    return view.edge_target(edge_id)


def neighbors(view: GraphView, node_id: int,
              direction: Direction = Direction.BOTH,
              types: Collection[str] | None = None) -> Iterator[int]:
    """Neighbor node ids of *node_id* (with multiplicity, as Neo4j does)."""
    for edge_id in view.edges_of(node_id, direction, types):
        yield other_end(view, edge_id, node_id)


def resolve_neighbors(view: GraphView, node_id: int,
                      edge_ids: Collection[int],
                      ) -> list[tuple[int, int]]:
    """``(edge_id, other_end)`` pairs for a pre-fetched adjacency list.

    The batch executor resolves whole adjacency lists at once; graph
    implementations may expose a ``resolve_neighbors`` method with a
    bulk fast path over their own edge storage. This fallback is the
    reference semantics: :func:`other_end` applied edge by edge.
    """
    resolver = getattr(view, "resolve_neighbors", None)
    if resolver is not None:
        return resolver(node_id, edge_ids)
    pairs = []
    for edge_id in edge_ids:
        source = view.edge_source(edge_id)
        pairs.append((edge_id, source if source != node_id
                      else view.edge_target(edge_id)))
    return pairs
