"""Immutable epoch snapshots of the in-memory graph.

A :class:`GraphSnapshot` is a frozen :class:`~repro.graphdb.view.GraphView`
pinned at one statistics epoch. Taking one is O(1): the snapshot
*shares* the owning :class:`~repro.graphdb.graph.PropertyGraph`'s
internal structures, and the first mutation after a snapshot detaches
the graph onto fresh copies (copy-on-write), leaving the shared
originals to the snapshot — which therefore never observes the
mutation. Readers of a snapshot need no locks: every structure they
touch is written exactly never again.

This is what makes concurrent serving safe: the Cypher engine pins a
snapshot per query, so a bulk load running on another thread cannot
tear a ``MATCH`` mid-flight, and the plan cache's epoch key, the
planner's :class:`~repro.graphdb.stats.GraphStatistics` and the rows
the executor produces all agree on one graph state.
"""

from __future__ import annotations

from typing import Any, Collection, Iterable, Iterator

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graphdb.indexes import IndexManager
from repro.graphdb.stats import GraphStatistics
from repro.graphdb.view import Direction


class GraphSnapshot:
    """Read-only view of a PropertyGraph frozen at one epoch.

    Constructed by :meth:`~repro.graphdb.graph.PropertyGraph.snapshot`;
    not meant to be built directly. Implements the full
    :class:`~repro.graphdb.view.GraphView` protocol plus ``epoch`` and
    ``statistics`` (a frozen copy the planner costs against).
    """

    __slots__ = ("epoch", "statistics", "_node_labels", "_node_props",
                 "_edge_src", "_edge_dst", "_edge_type", "_edge_props",
                 "_out", "_in", "_indexes")

    def __init__(self, *, epoch: int, statistics: GraphStatistics,
                 node_labels: dict[int, frozenset[str]],
                 node_props: dict[int, dict[str, Any]],
                 edge_src: dict[int, int], edge_dst: dict[int, int],
                 edge_type: dict[int, str],
                 edge_props: dict[int, dict[str, Any]],
                 out: dict[int, dict[str, list[int]]],
                 in_: dict[int, dict[str, list[int]]],
                 indexes: IndexManager) -> None:
        self.epoch = epoch
        self.statistics = statistics
        self._node_labels = node_labels
        self._node_props = node_props
        self._edge_src = edge_src
        self._edge_dst = edge_dst
        self._edge_type = edge_type
        self._edge_props = edge_props
        self._out = out
        self._in = in_
        self._indexes = indexes

    def snapshot(self) -> "GraphSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    # -- GraphView: population ------------------------------------------

    def node_ids(self) -> Iterable[int]:
        return self._node_labels.keys()

    def edge_ids(self) -> Iterable[int]:
        return self._edge_type.keys()

    def node_count(self) -> int:
        return len(self._node_labels)

    def edge_count(self) -> int:
        return len(self._edge_type)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._node_labels

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edge_type

    # -- GraphView: nodes -----------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        self._require_node(node_id)
        return self._node_labels[node_id]

    def labels_of(self, node_ids: Collection[int],
                  ) -> list[frozenset[str]]:
        """Bulk :meth:`node_labels` for the batch executor's
        label-filtering expansion kernel."""
        labels = self._node_labels
        return [labels[node_id] for node_id in node_ids]

    def node_properties(self, node_id: int) -> dict[str, Any]:
        self._require_node(node_id)
        return dict(self._node_props[node_id])

    def node_property(self, node_id: int, key: str,
                      default: Any = None) -> Any:
        self._require_node(node_id)
        return self._node_props[node_id].get(key, default)

    def nodes_with_label(self, label: str) -> Iterator[int]:
        return self._indexes.label(label)

    # -- GraphView: edges -----------------------------------------------

    def edge_source(self, edge_id: int) -> int:
        self._require_edge(edge_id)
        return self._edge_src[edge_id]

    def edge_target(self, edge_id: int) -> int:
        self._require_edge(edge_id)
        return self._edge_dst[edge_id]

    def edge_type(self, edge_id: int) -> str:
        self._require_edge(edge_id)
        return self._edge_type[edge_id]

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        self._require_edge(edge_id)
        return dict(self._edge_props[edge_id])

    def edge_property(self, edge_id: int, key: str,
                      default: Any = None) -> Any:
        self._require_edge(edge_id)
        return self._edge_props[edge_id].get(key, default)

    # -- GraphView: adjacency -------------------------------------------

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        self._require_node(node_id)
        if direction in (Direction.OUT, Direction.BOTH):
            yield from self._iter_adjacency(self._out[node_id], types)
        if direction in (Direction.IN, Direction.BOTH):
            yield from self._iter_adjacency(self._in[node_id], types)

    def degree(self, node_id: int,
               direction: Direction = Direction.BOTH,
               types: Collection[str] | None = None) -> int:
        self._require_node(node_id)
        total = 0
        if direction in (Direction.OUT, Direction.BOTH):
            total += self._count_adjacency(self._out[node_id], types)
        if direction in (Direction.IN, Direction.BOTH):
            total += self._count_adjacency(self._in[node_id], types)
        return total

    def resolve_neighbors(self, node_id: int,
                          edge_ids: Collection[int],
                          ) -> list[tuple[int, int]]:
        """Bulk ``(edge_id, other_end)`` for edges from this
        snapshot's own adjacency lists (known live, checks skipped)."""
        src = self._edge_src
        dst = self._edge_dst
        return [(edge_id,
                 source if (source := src[edge_id]) != node_id
                 else dst[edge_id])
                for edge_id in edge_ids]

    @property
    def indexes(self) -> IndexManager:
        return self._indexes

    def __len__(self) -> int:
        return self.node_count()

    def __repr__(self) -> str:
        return (f"GraphSnapshot(epoch={self.epoch}, "
                f"nodes={self.node_count()}, "
                f"edges={self.edge_count()})")

    # -- internals ------------------------------------------------------

    @staticmethod
    def _iter_adjacency(by_type: dict[str, list[int]],
                        types: Collection[str] | None) -> Iterator[int]:
        if types is None:
            for edge_list in by_type.values():
                yield from edge_list
        else:
            for edge_type in types:
                yield from by_type.get(edge_type, ())

    @staticmethod
    def _count_adjacency(by_type: dict[str, list[int]],
                         types: Collection[str] | None) -> int:
        if types is None:
            return sum(len(edge_list) for edge_list in by_type.values())
        return sum(len(by_type.get(edge_type, ())) for edge_type in types)

    def _require_node(self, node_id: int) -> None:
        if node_id not in self._node_labels:
            raise NodeNotFoundError(node_id)

    def _require_edge(self, edge_id: int) -> None:
        if edge_id not in self._edge_type:
            raise EdgeNotFoundError(edge_id)


def pin_view(view: Any) -> Any:
    """The stable view to execute a query against.

    In-memory graphs (and snapshots themselves) answer ``snapshot()``;
    anything else — the immutable disk store, ad-hoc test doubles — is
    already safe to read and is returned unchanged.
    """
    take = getattr(view, "snapshot", None)
    if take is None:
        return view
    return take()
