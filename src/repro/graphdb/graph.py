"""In-memory mutable labeled property graph.

This is the build-side representation: the extractor and the workload
generators populate a :class:`PropertyGraph`, which can then be queried
directly or written to an on-disk store
(:mod:`repro.graphdb.storage.store`) and re-opened as a page-cached
read view.

Adjacency is kept per node, grouped by edge type, in insertion order —
the same access pattern Neo4j's relationship chains give you, and the
one the type-filtered expansions in Cypher patterns (``-[:calls]->``)
need to be cheap.

Concurrency model: all mutation runs under one re-entrant writer lock
(``write_lock``), and reads that must not tear pin an O(1)
copy-on-write :meth:`PropertyGraph.snapshot` — the first mutation
after a snapshot detaches the graph onto fresh copies of its internal
structures, so the snapshot's view is frozen forever. Reads against
the *live* graph from other threads remain unsynchronized by design;
the query engine always pins a snapshot.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Collection, Iterable, Iterator, Mapping

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphdb import properties as props
from repro.graphdb.indexes import IndexManager
from repro.graphdb.snapshot import GraphSnapshot
from repro.graphdb.stats import GraphStatistics
from repro.graphdb.view import Direction


class Node:
    """Lightweight handle to a node: a (graph, id) pair with accessors."""

    __slots__ = ("graph", "id")

    def __init__(self, graph: "PropertyGraph", node_id: int) -> None:
        self.graph = graph
        self.id = node_id

    @property
    def labels(self) -> frozenset[str]:
        return self.graph.node_labels(self.id)

    @property
    def properties(self) -> dict[str, Any]:
        return self.graph.node_properties(self.id)

    def get(self, key: str, default: Any = None) -> Any:
        return self.graph.node_property(self.id, key, default)

    def __getitem__(self, key: str) -> Any:
        value = self.graph.node_property(self.id, key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Node) and other.graph is self.graph
                and other.id == self.id)

    def __hash__(self) -> int:
        return hash((id(self.graph), self.id))

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        return f"Node({self.id}:{labels})"


class Edge:
    """Lightweight handle to an edge."""

    __slots__ = ("graph", "id")

    def __init__(self, graph: "PropertyGraph", edge_id: int) -> None:
        self.graph = graph
        self.id = edge_id

    @property
    def source(self) -> int:
        return self.graph.edge_source(self.id)

    @property
    def target(self) -> int:
        return self.graph.edge_target(self.id)

    @property
    def type(self) -> str:
        return self.graph.edge_type(self.id)

    @property
    def properties(self) -> dict[str, Any]:
        return self.graph.edge_properties(self.id)

    def get(self, key: str, default: Any = None) -> Any:
        return self.graph.edge_property(self.id, key, default)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Edge) and other.graph is self.graph
                and other.id == self.id)

    def __hash__(self) -> int:
        return hash((id(self.graph), self.id))

    def __repr__(self) -> str:
        return (f"Edge({self.source})-[{self.id}:{self.type}]->"
                f"({self.target})")


_MISSING = object()


def _mutator(fn):
    """Run a mutation under the writer lock, detaching any pinned
    snapshot onto copy-on-write copies first."""
    @functools.wraps(fn)
    def locked(self, *args, **kwargs):
        with self._write_lock:
            self._detach_snapshot()
            return fn(self, *args, **kwargs)
    return locked


class PropertyGraph:
    """Mutable labeled property multigraph with auto-maintained indexes.

    Parameters
    ----------
    auto_index_keys:
        Node property keys kept in the "lucene-style" auto index (what
        legacy Cypher's ``node:node_auto_index('short_name: x')``
        queries). Defaults to the Frappé model's name keys.
    """

    DEFAULT_AUTO_INDEX_KEYS = ("short_name", "name", "long_name", "type")

    def __init__(self, auto_index_keys: Iterable[str] | None = None) -> None:
        keys = tuple(auto_index_keys) if auto_index_keys is not None \
            else self.DEFAULT_AUTO_INDEX_KEYS
        self._next_node_id = 0
        self._next_edge_id = 0
        self._node_labels: dict[int, frozenset[str]] = {}
        self._node_props: dict[int, dict[str, Any]] = {}
        self._edge_src: dict[int, int] = {}
        self._edge_dst: dict[int, int] = {}
        self._edge_type: dict[int, str] = {}
        self._edge_props: dict[int, dict[str, Any]] = {}
        # adjacency: node id -> edge type -> list of edge ids
        self._out: dict[int, dict[str, list[int]]] = {}
        self._in: dict[int, dict[str, list[int]]] = {}
        self._indexes = IndexManager(auto_index_keys=keys)
        #: live planner statistics; every mutation below updates it and
        #: bumps its epoch (which stales compiled Cypher plans)
        self.statistics = GraphStatistics()
        self.metrics: Any | None = None
        self._write_lock = threading.RLock()
        # the snapshot currently sharing this graph's structures, if
        # any; cleared (after detaching onto copies) by the first
        # mutation that follows it
        self._cow_snapshot: GraphSnapshot | None = None

    def attach_metrics(self, registry: Any) -> None:
        """Bind index/traversal counters to a metrics registry."""
        self.metrics = registry
        self._indexes.attach_metrics(registry)

    # -- snapshots & locking ------------------------------------------------

    @property
    def write_lock(self) -> threading.RLock:
        """The re-entrant lock serializing mutation.

        Every mutator acquires it internally; bulk loaders hold it
        across a batch (``with graph.write_lock: ...``) to make the
        batch atomic with respect to :meth:`snapshot` — a snapshot can
        never be pinned between the batch's individual operations.
        """
        return self._write_lock

    def snapshot(self) -> GraphSnapshot:
        """Pin the current state as an immutable epoch snapshot, O(1).

        Snapshots taken at the same epoch are the same object. The
        next mutation pays one copy of the graph's internal structures
        (copy-on-write); until then the snapshot shares them.
        """
        with self._write_lock:
            if self._cow_snapshot is None:
                self._cow_snapshot = GraphSnapshot(
                    epoch=self.statistics.epoch,
                    statistics=self.statistics.clone(),
                    node_labels=self._node_labels,
                    node_props=self._node_props,
                    edge_src=self._edge_src,
                    edge_dst=self._edge_dst,
                    edge_type=self._edge_type,
                    edge_props=self._edge_props,
                    out=self._out,
                    in_=self._in,
                    indexes=self._indexes)
            return self._cow_snapshot

    def _detach_snapshot(self) -> None:
        """Copy-on-write: leave the shared structures to the pinned
        snapshot and continue mutating fresh copies. Called (under the
        writer lock) by every mutator before it touches anything."""
        if self._cow_snapshot is None:
            return
        self._node_labels = dict(self._node_labels)
        self._node_props = {node_id: dict(properties)
                            for node_id, properties
                            in self._node_props.items()}
        self._edge_src = dict(self._edge_src)
        self._edge_dst = dict(self._edge_dst)
        self._edge_type = dict(self._edge_type)
        self._edge_props = {edge_id: dict(properties)
                            for edge_id, properties
                            in self._edge_props.items()}
        self._out = {node_id: {etype: list(edges)
                               for etype, edges in by_type.items()}
                     for node_id, by_type in self._out.items()}
        self._in = {node_id: {etype: list(edges)
                              for etype, edges in by_type.items()}
                    for node_id, by_type in self._in.items()}
        self._indexes = self._indexes.clone()
        self._cow_snapshot = None

    # -- mutation: nodes ----------------------------------------------------

    @_mutator
    def add_node(self, *labels: str,
                 properties: Mapping[str, Any] | None = None,
                 **props_kw: Any) -> int:
        """Create a node; returns its id.

        Labels may be passed positionally; properties either as the
        ``properties`` mapping or as keyword arguments (not both for the
        same key).
        """
        merged = props.validate_properties(properties)
        for key, value in props.validate_properties(props_kw).items():
            if key in merged:
                raise GraphError(
                    f"property {key!r} given both in mapping and keyword")
            merged[key] = value
        node_id = self._next_node_id
        self._next_node_id += 1
        label_set = frozenset(labels)
        self._node_labels[node_id] = label_set
        self._node_props[node_id] = merged
        self._out[node_id] = {}
        self._in[node_id] = {}
        self._indexes.on_node_added(node_id, label_set, merged)
        self.statistics.node_added(tuple(label_set))
        return node_id

    @_mutator
    def add_node_with_id(self, node_id: int, labels: Iterable[str] = (),
                         properties: Mapping[str, Any] | None = None,
                         ) -> int:
        """Create a node with a caller-chosen id.

        Used when replaying deltas or materializing a disk store, where
        identity must be preserved. The id must not be live.
        """
        if node_id in self._node_labels:
            raise GraphError(f"node id {node_id} already exists")
        merged = props.validate_properties(properties)
        label_set = frozenset(labels)
        self._node_labels[node_id] = label_set
        self._node_props[node_id] = merged
        self._out[node_id] = {}
        self._in[node_id] = {}
        self._next_node_id = max(self._next_node_id, node_id + 1)
        self._indexes.on_node_added(node_id, label_set, merged)
        self.statistics.node_added(tuple(label_set))
        return node_id

    @_mutator
    def add_edge_with_id(self, edge_id: int, source: int, target: int,
                         edge_type: str,
                         properties: Mapping[str, Any] | None = None,
                         ) -> int:
        """Create an edge with a caller-chosen id (see add_node_with_id)."""
        if edge_id in self._edge_type:
            raise GraphError(f"edge id {edge_id} already exists")
        self._require_node(source)
        self._require_node(target)
        if not edge_type:
            raise GraphError("edge type must be a non-empty string")
        merged = props.validate_properties(properties)
        self._edge_src[edge_id] = source
        self._edge_dst[edge_id] = target
        self._edge_type[edge_id] = edge_type
        self._edge_props[edge_id] = merged
        self._out[source].setdefault(edge_type, []).append(edge_id)
        self._in[target].setdefault(edge_type, []).append(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        self.statistics.edge_added(edge_type)
        return edge_id

    @_mutator
    def remove_node(self, node_id: int) -> None:
        """Remove a node and all incident edges."""
        self._require_node(node_id)
        incident = [eid for by_type in self._out[node_id].values()
                    for eid in by_type]
        incident += [eid for by_type in self._in[node_id].values()
                     for eid in by_type]
        for edge_id in set(incident):
            self.remove_edge(edge_id)
        self._indexes.on_node_removed(node_id, self._node_labels[node_id],
                                      self._node_props[node_id])
        self.statistics.node_removed(tuple(self._node_labels[node_id]))
        del self._node_labels[node_id]
        del self._node_props[node_id]
        del self._out[node_id]
        del self._in[node_id]

    @_mutator
    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        self._require_node(node_id)
        value = props.validate_value(key, value)
        old = self._node_props[node_id].get(key, _MISSING)
        self._node_props[node_id][key] = value
        self._indexes.on_node_property_changed(
            node_id, key, None if old is _MISSING else old, value)
        self.statistics.bump()

    @_mutator
    def remove_node_property(self, node_id: int, key: str) -> None:
        self._require_node(node_id)
        old = self._node_props[node_id].pop(key, _MISSING)
        if old is not _MISSING:
            self._indexes.on_node_property_changed(node_id, key, old, None)
            self.statistics.bump()

    @_mutator
    def add_label(self, node_id: int, label: str) -> None:
        self._require_node(node_id)
        labels = self._node_labels[node_id]
        if label not in labels:
            self._node_labels[node_id] = labels | {label}
            self._indexes.on_label_added(node_id, label)
            self.statistics.label_added(label)

    @_mutator
    def remove_label(self, node_id: int, label: str) -> None:
        self._require_node(node_id)
        labels = self._node_labels[node_id]
        if label in labels:
            self._node_labels[node_id] = labels - {label}
            self._indexes.on_label_removed(node_id, label)
            self.statistics.label_removed(label)

    # -- mutation: edges ----------------------------------------------------

    @_mutator
    def add_edge(self, source: int, target: int, edge_type: str,
                 properties: Mapping[str, Any] | None = None,
                 **props_kw: Any) -> int:
        """Create a directed typed edge; returns its id."""
        self._require_node(source)
        self._require_node(target)
        if not edge_type:
            raise GraphError("edge type must be a non-empty string")
        merged = props.validate_properties(properties)
        for key, value in props.validate_properties(props_kw).items():
            if key in merged:
                raise GraphError(
                    f"property {key!r} given both in mapping and keyword")
            merged[key] = value
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        self._edge_src[edge_id] = source
        self._edge_dst[edge_id] = target
        self._edge_type[edge_id] = edge_type
        self._edge_props[edge_id] = merged
        self._out[source].setdefault(edge_type, []).append(edge_id)
        self._in[target].setdefault(edge_type, []).append(edge_id)
        self.statistics.edge_added(edge_type)
        return edge_id

    @_mutator
    def remove_edge(self, edge_id: int) -> None:
        self._require_edge(edge_id)
        source = self._edge_src.pop(edge_id)
        target = self._edge_dst.pop(edge_id)
        edge_type = self._edge_type.pop(edge_id)
        del self._edge_props[edge_id]
        self._out[source][edge_type].remove(edge_id)
        if not self._out[source][edge_type]:
            del self._out[source][edge_type]
        self._in[target][edge_type].remove(edge_id)
        if not self._in[target][edge_type]:
            del self._in[target][edge_type]
        self.statistics.edge_removed(edge_type)

    @_mutator
    def set_edge_property(self, edge_id: int, key: str, value: Any) -> None:
        self._require_edge(edge_id)
        self._edge_props[edge_id][key] = props.validate_value(key, value)
        self.statistics.bump()

    @_mutator
    def remove_edge_property(self, edge_id: int, key: str) -> None:
        self._require_edge(edge_id)
        self._edge_props[edge_id].pop(key, None)
        self.statistics.bump()

    # -- GraphView: population ----------------------------------------------

    def node_ids(self) -> Iterable[int]:
        return self._node_labels.keys()

    def edge_ids(self) -> Iterable[int]:
        return self._edge_type.keys()

    def node_count(self) -> int:
        return len(self._node_labels)

    def edge_count(self) -> int:
        return len(self._edge_type)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._node_labels

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edge_type

    # -- GraphView: nodes -----------------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        self._require_node(node_id)
        return self._node_labels[node_id]

    def labels_of(self, node_ids: Collection[int],
                  ) -> list[frozenset[str]]:
        """Bulk :meth:`node_labels` for the batch executor's
        label-filtering expansion kernel."""
        labels = self._node_labels
        return [labels[node_id] for node_id in node_ids]

    def node_properties(self, node_id: int) -> dict[str, Any]:
        self._require_node(node_id)
        return dict(self._node_props[node_id])

    def node_property(self, node_id: int, key: str, default: Any = None) -> Any:
        self._require_node(node_id)
        return self._node_props[node_id].get(key, default)

    def nodes_with_label(self, label: str) -> Iterator[int]:
        return self._indexes.label(label)

    # -- GraphView: edges -----------------------------------------------------

    def edge_source(self, edge_id: int) -> int:
        self._require_edge(edge_id)
        return self._edge_src[edge_id]

    def edge_target(self, edge_id: int) -> int:
        self._require_edge(edge_id)
        return self._edge_dst[edge_id]

    def edge_type(self, edge_id: int) -> str:
        self._require_edge(edge_id)
        return self._edge_type[edge_id]

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        self._require_edge(edge_id)
        return dict(self._edge_props[edge_id])

    def edge_property(self, edge_id: int, key: str, default: Any = None) -> Any:
        self._require_edge(edge_id)
        return self._edge_props[edge_id].get(key, default)

    # -- GraphView: adjacency --------------------------------------------------

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        self._require_node(node_id)
        if direction in (Direction.OUT, Direction.BOTH):
            yield from self._iter_adjacency(self._out[node_id], types)
        if direction in (Direction.IN, Direction.BOTH):
            yield from self._iter_adjacency(self._in[node_id], types)

    def degree(self, node_id: int,
               direction: Direction = Direction.BOTH,
               types: Collection[str] | None = None) -> int:
        self._require_node(node_id)
        total = 0
        if direction in (Direction.OUT, Direction.BOTH):
            total += self._count_adjacency(self._out[node_id], types)
        if direction in (Direction.IN, Direction.BOTH):
            total += self._count_adjacency(self._in[node_id], types)
        return total

    def resolve_neighbors(self, node_id: int,
                          edge_ids: Collection[int],
                          ) -> list[tuple[int, int]]:
        """Bulk ``(edge_id, other_end)`` for edges known to be live
        (they came from this graph's own adjacency lists), so the
        per-edge existence checks of ``edge_source``/``edge_target``
        are skipped."""
        src = self._edge_src
        dst = self._edge_dst
        return [(edge_id,
                 source if (source := src[edge_id]) != node_id
                 else dst[edge_id])
                for edge_id in edge_ids]

    @property
    def indexes(self) -> IndexManager:
        return self._indexes

    # -- handles & convenience ---------------------------------------------------

    def node(self, node_id: int) -> Node:
        self._require_node(node_id)
        return Node(self, node_id)

    def edge(self, edge_id: int) -> Edge:
        self._require_edge(edge_id)
        return Edge(self, edge_id)

    def find_nodes(self, **property_filters: Any) -> Iterator[int]:
        """Scan for nodes whose properties match all keyword filters."""
        for node_id, node_props in self._node_props.items():
            if all(node_props.get(key) == value
                   for key, value in property_filters.items()):
                yield node_id

    def __len__(self) -> int:
        return self.node_count()

    def __repr__(self) -> str:
        return (f"PropertyGraph(nodes={self.node_count()}, "
                f"edges={self.edge_count()})")

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _iter_adjacency(by_type: dict[str, list[int]],
                        types: Collection[str] | None) -> Iterator[int]:
        if types is None:
            for edge_list in by_type.values():
                yield from edge_list
        else:
            for edge_type in types:
                yield from by_type.get(edge_type, ())

    @staticmethod
    def _count_adjacency(by_type: dict[str, list[int]],
                         types: Collection[str] | None) -> int:
        if types is None:
            return sum(len(edge_list) for edge_list in by_type.values())
        return sum(len(by_type.get(edge_type, ())) for edge_type in types)

    def _require_node(self, node_id: int) -> None:
        if node_id not in self._node_labels:
            raise NodeNotFoundError(node_id)

    def _require_edge(self, edge_id: int) -> None:
        if edge_id not in self._edge_type:
            raise EdgeNotFoundError(edge_id)


def clone_graph(view, auto_index_keys: Iterable[str] | None = None,
                ) -> "PropertyGraph":
    """Materialize any GraphView into a fresh PropertyGraph.

    Node and edge ids are preserved, so cloning a disk store (or a
    versioned checkout) yields an identical, mutable graph.
    """
    if auto_index_keys is None:
        auto_index_keys = getattr(view.indexes, "auto_index_keys",
                                  PropertyGraph.DEFAULT_AUTO_INDEX_KEYS)
    clone = PropertyGraph(auto_index_keys=auto_index_keys)
    for node_id in view.node_ids():
        clone.add_node_with_id(node_id, view.node_labels(node_id),
                               view.node_properties(node_id))
    for edge_id in view.edge_ids():
        clone.add_edge_with_id(edge_id, view.edge_source(edge_id),
                               view.edge_target(edge_id),
                               view.edge_type(edge_id),
                               view.edge_properties(edge_id))
    return clone
