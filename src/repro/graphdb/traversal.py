"""Embedded traversal framework (the paper's Section 6.1 workaround).

The paper reports that Cypher's variable-length match made transitive
closure "unreasonable" and that the authors "instead implemented
transitive closure ourselves by traversing the graph directly via
Neo4j's Java embedded mode" to get sub-second answers. This module is
that embedded mode: a traversal description in the style of Neo4j's
``TraversalDescription`` — order, relationship filters, uniqueness,
depth bounds and evaluators — running directly against a
:class:`~repro.graphdb.view.GraphView`.

The crucial semantic difference from Cypher's ``-[:t*]->`` is
uniqueness: with ``Uniqueness.NODE_GLOBAL`` (the default) each node is
expanded once, so a closure costs O(V+E); Cypher's per-path
relationship uniqueness enumerates *paths* and explodes on dense call
graphs. Benchmark E8 measures exactly this gap.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Collection, Iterator

from repro.graphdb.view import Direction, GraphView, other_end


class Uniqueness(enum.Enum):
    """How often the same node/relationship may appear during traversal."""

    NODE_GLOBAL = "node_global"
    RELATIONSHIP_GLOBAL = "relationship_global"
    NODE_PATH = "node_path"
    RELATIONSHIP_PATH = "relationship_path"
    NONE = "none"


class Evaluation(enum.Enum):
    """Evaluator verdict for a path."""

    INCLUDE_AND_CONTINUE = (True, True)
    INCLUDE_AND_PRUNE = (True, False)
    EXCLUDE_AND_CONTINUE = (False, True)
    EXCLUDE_AND_PRUNE = (False, False)

    @property
    def include(self) -> bool:
        return self.value[0]

    @property
    def continue_(self) -> bool:
        return self.value[1]


class Path:
    """An alternating node/edge sequence rooted at a start node."""

    __slots__ = ("_nodes", "_edges")

    def __init__(self, nodes: tuple[int, ...],
                 edges: tuple[int, ...]) -> None:
        if len(nodes) != len(edges) + 1:
            raise ValueError("path must have one more node than edges")
        self._nodes = nodes
        self._edges = edges

    @property
    def nodes(self) -> tuple[int, ...]:
        return self._nodes

    @property
    def edges(self) -> tuple[int, ...]:
        return self._edges

    @property
    def start_node(self) -> int:
        return self._nodes[0]

    @property
    def end_node(self) -> int:
        return self._nodes[-1]

    @property
    def last_edge(self) -> int | None:
        return self._edges[-1] if self._edges else None

    @property
    def length(self) -> int:
        return len(self._edges)

    def extend(self, edge_id: int, node_id: int) -> "Path":
        return Path(self._nodes + (node_id,), self._edges + (edge_id,))

    def __repr__(self) -> str:
        return f"Path(nodes={self._nodes}, edges={self._edges})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Path) and other._nodes == self._nodes
                and other._edges == self._edges)

    def __hash__(self) -> int:
        return hash((self._nodes, self._edges))


Evaluator = Callable[[GraphView, Path], Evaluation]


class RelationshipFilter:
    """One (types, direction) expansion rule."""

    __slots__ = ("types", "direction")

    def __init__(self, types: Collection[str] | None,
                 direction: Direction) -> None:
        self.types = frozenset(types) if types is not None else None
        self.direction = direction


class TraversalDescription:
    """Immutable builder for graph traversals, Neo4j-style.

    Example (the paper's Figure 6 closure, done the fast way)::

        closure = (TraversalDescription()
                   .relationships("calls", Direction.OUT)
                   .traverse(graph, seed))
        reached = {path.end_node for path in closure if path.length > 0}
    """

    def __init__(self) -> None:
        self._filters: list[RelationshipFilter] = []
        self._uniqueness = Uniqueness.NODE_GLOBAL
        self._breadth_first = True
        self._max_depth: int | None = None
        self._min_depth = 0
        self._evaluators: list[Evaluator] = []

    # builder methods return modified copies so descriptions are reusable

    def _copy(self) -> "TraversalDescription":
        clone = TraversalDescription()
        clone._filters = list(self._filters)
        clone._uniqueness = self._uniqueness
        clone._breadth_first = self._breadth_first
        clone._max_depth = self._max_depth
        clone._min_depth = self._min_depth
        clone._evaluators = list(self._evaluators)
        return clone

    def relationships(self, types: str | Collection[str] | None,
                      direction: Direction = Direction.BOTH,
                      ) -> "TraversalDescription":
        """Add an expansion rule; multiple rules union."""
        clone = self._copy()
        if isinstance(types, str):
            types = (types,)
        clone._filters.append(RelationshipFilter(types, direction))
        return clone

    def uniqueness(self, uniqueness: Uniqueness) -> "TraversalDescription":
        clone = self._copy()
        clone._uniqueness = uniqueness
        return clone

    def breadth_first(self) -> "TraversalDescription":
        clone = self._copy()
        clone._breadth_first = True
        return clone

    def depth_first(self) -> "TraversalDescription":
        clone = self._copy()
        clone._breadth_first = False
        return clone

    def max_depth(self, depth: int) -> "TraversalDescription":
        clone = self._copy()
        clone._max_depth = depth
        return clone

    def min_depth(self, depth: int) -> "TraversalDescription":
        clone = self._copy()
        clone._min_depth = depth
        return clone

    def evaluator(self, evaluator: Evaluator) -> "TraversalDescription":
        clone = self._copy()
        clone._evaluators.append(evaluator)
        return clone

    # execution --------------------------------------------------------------

    def traverse(self, view: GraphView, *starts: int) -> Iterator[Path]:
        """Yield paths from the start nodes, per the description."""
        registry = getattr(view, "metrics", None)
        expansions = registry.counter("traversal.expansions") \
            if registry is not None else None
        paths_counter = registry.counter("traversal.paths") \
            if registry is not None else None
        frontier: deque[Path] = deque(Path((start,), ()) for start in starts)
        seen_nodes: set[int] = set(starts) \
            if self._uniqueness is Uniqueness.NODE_GLOBAL else set()
        seen_edges: set[int] = set()
        while frontier:
            path = frontier.popleft() if self._breadth_first \
                else frontier.pop()
            include, continue_ = self._judge(view, path)
            if include and path.length >= self._min_depth:
                if paths_counter is not None:
                    paths_counter.inc()
                yield path
            if not continue_:
                continue
            if self._max_depth is not None and path.length >= self._max_depth:
                continue
            for edge_id, next_node in self._expand(view, path.end_node):
                if expansions is not None:
                    expansions.inc()
                if not self._admit(path, edge_id, next_node,
                                   seen_nodes, seen_edges):
                    continue
                frontier.append(path.extend(edge_id, next_node))

    def _judge(self, view: GraphView, path: Path) -> tuple[bool, bool]:
        include = True
        continue_ = True
        for evaluator in self._evaluators:
            verdict = evaluator(view, path)
            include = include and verdict.include
            continue_ = continue_ and verdict.continue_
        return include, continue_

    def _expand(self, view: GraphView,
                node_id: int) -> Iterator[tuple[int, int]]:
        filters = self._filters or [RelationshipFilter(None, Direction.BOTH)]
        for rel_filter in filters:
            for edge_id in view.edges_of(node_id, rel_filter.direction,
                                         rel_filter.types):
                yield edge_id, other_end(view, edge_id, node_id)

    def _admit(self, path: Path, edge_id: int, next_node: int,
               seen_nodes: set[int], seen_edges: set[int]) -> bool:
        uniqueness = self._uniqueness
        if uniqueness is Uniqueness.NODE_GLOBAL:
            if next_node in seen_nodes:
                return False
            seen_nodes.add(next_node)
            return True
        if uniqueness is Uniqueness.RELATIONSHIP_GLOBAL:
            if edge_id in seen_edges:
                return False
            seen_edges.add(edge_id)
            return True
        if uniqueness is Uniqueness.NODE_PATH:
            return next_node not in path.nodes
        if uniqueness is Uniqueness.RELATIONSHIP_PATH:
            return edge_id not in path.edges
        return True  # Uniqueness.NONE
