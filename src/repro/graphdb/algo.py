"""Graph algorithms used by the Frappé use cases.

:func:`reachable_nodes` is the "~20ms via Neo4j's Java API" transitive
closure of the paper's Section 5.2 footnote — a plain visited-set BFS,
linear in the subgraph it touches. :func:`shortest_path` backs the
code-comprehension shortest-path use case of Section 4.4.
"""

from __future__ import annotations

from collections import deque
from typing import Collection, Iterator

from repro.graphdb.view import Direction, GraphView, neighbors, other_end


def reachable_nodes(view: GraphView, start: int,
                    types: Collection[str] | None = None,
                    direction: Direction = Direction.OUT,
                    max_depth: int | None = None,
                    include_start: bool = False) -> set[int]:
    """Transitive closure of *start* over the given edge types.

    A backward program slice over calls is
    ``reachable_nodes(g, seed, ("calls",), Direction.OUT)`` (everything
    the seed depends on); the forward slice flips the direction
    (paper Section 4.4).
    """
    registry = getattr(view, "metrics", None)
    expansions = registry.counter("traversal.expansions") \
        if registry is not None else None
    visited = {start}
    frontier = deque([(start, 0)])
    while frontier:
        node_id, depth = frontier.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge_id in view.edges_of(node_id, direction, types):
            if expansions is not None:
                expansions.inc()
            neighbor = other_end(view, edge_id, node_id)
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append((neighbor, depth + 1))
    if registry is not None:
        registry.counter("traversal.paths").inc(len(visited))
    if not include_start:
        visited.discard(start)
    return visited


def is_reachable(view: GraphView, source: int, target: int,
                 types: Collection[str] | None = None,
                 direction: Direction = Direction.OUT,
                 max_depth: int | None = None) -> bool:
    """Early-exit reachability check (used by WHERE pattern predicates)."""
    if source == target:
        return True
    visited = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node_id, depth = frontier.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge_id in view.edges_of(node_id, direction, types):
            neighbor = other_end(view, edge_id, node_id)
            if neighbor == target:
                return True
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return False


def shortest_path(view: GraphView, source: int, target: int,
                  types: Collection[str] | None = None,
                  direction: Direction = Direction.OUT,
                  ) -> list[int] | None:
    """Node ids of one shortest path source -> target, or None.

    Bidirectional BFS; with ``Direction.OUT`` the backward search
    expands incoming edges, so both frontiers meet in the middle.
    """
    if source == target:
        return [source]
    forward_parents: dict[int, tuple[int, int] | None] = {source: None}
    backward_parents: dict[int, tuple[int, int] | None] = {target: None}
    forward_frontier = [source]
    backward_frontier = [target]
    backward_direction = direction.reverse()

    while forward_frontier and backward_frontier:
        # expand the smaller frontier
        expand_forward = len(forward_frontier) <= len(backward_frontier)
        if expand_forward:
            frontier, parents, others = (forward_frontier, forward_parents,
                                         backward_parents)
            step_direction = direction
        else:
            frontier, parents, others = (backward_frontier, backward_parents,
                                         forward_parents)
            step_direction = backward_direction
        next_frontier = []
        meeting = None
        for node_id in frontier:
            for edge_id in view.edges_of(node_id, step_direction, types):
                neighbor = other_end(view, edge_id, node_id)
                if neighbor in parents:
                    continue
                parents[neighbor] = (node_id, edge_id)
                if neighbor in others:
                    meeting = neighbor
                    break
                next_frontier.append(neighbor)
            if meeting is not None:
                break
        if meeting is not None:
            return (_unwind(forward_parents, meeting)[::-1]
                    + _unwind(backward_parents, meeting)[1:])
        if expand_forward:
            forward_frontier = next_frontier
        else:
            backward_frontier = next_frontier
    return None


def _unwind(parents: dict[int, tuple[int, int] | None],
            node_id: int) -> list[int]:
    path = [node_id]
    step = parents[node_id]
    while step is not None:
        node_id = step[0]
        path.append(node_id)
        step = parents[node_id]
    return path


def shortest_path_with_edges(
        view: GraphView, source: int, target: int,
        types: Collection[str] | None = None,
        direction: Direction = Direction.OUT,
        edge_filter=None,
        ) -> tuple[list[int], list[int]] | None:
    """Like :func:`shortest_path` but also returns the edge ids.

    Plain forward BFS with parent-edge tracking (the Cypher
    ``shortestPath()`` backend needs the edges to bind the path
    variable). ``edge_filter(edge_id) -> bool`` restricts usable edges.
    """
    if source == target:
        return [source], []
    parents: dict[int, tuple[int, int]] = {}
    visited = {source}
    frontier = [source]
    while frontier:
        next_frontier = []
        for node_id in frontier:
            for edge_id in view.edges_of(node_id, direction, types):
                if edge_filter is not None and not edge_filter(edge_id):
                    continue
                neighbor = other_end(view, edge_id, node_id)
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = (node_id, edge_id)
                if neighbor == target:
                    nodes = [target]
                    edges = []
                    cursor = target
                    while cursor != source:
                        previous, via = parents[cursor]
                        edges.append(via)
                        nodes.append(previous)
                        cursor = previous
                    return nodes[::-1], edges[::-1]
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def all_shortest_paths(
        view: GraphView, source: int, target: int,
        types: Collection[str] | None = None,
        direction: Direction = Direction.OUT,
        edge_filter=None, limit: int = 64,
        ) -> list[tuple[list[int], list[int]]]:
    """Every minimum-length path (nodes, edges), up to *limit*.

    Level-synchronous BFS keeping all parent edges per node at its
    discovery depth, then backward enumeration.
    """
    if source == target:
        return [([source], [])]
    depth_of = {source: 0}
    parents: dict[int, list[tuple[int, int]]] = {}
    frontier = [source]
    depth = 0
    target_depth: int | None = None
    while frontier and target_depth is None:
        depth += 1
        next_frontier: list[int] = []
        for node_id in frontier:
            for edge_id in view.edges_of(node_id, direction, types):
                if edge_filter is not None and not edge_filter(edge_id):
                    continue
                neighbor = other_end(view, edge_id, node_id)
                known_depth = depth_of.get(neighbor)
                if known_depth is None:
                    depth_of[neighbor] = depth
                    parents[neighbor] = [(node_id, edge_id)]
                    next_frontier.append(neighbor)
                elif known_depth == depth:
                    parents[neighbor].append((node_id, edge_id))
                if neighbor == target:
                    target_depth = depth
        frontier = next_frontier
    if target_depth is None:
        return []
    results: list[tuple[list[int], list[int]]] = []

    def unwind(node_id: int, nodes: list[int], edges: list[int]) -> None:
        if len(results) >= limit:
            return
        if node_id == source:
            results.append(([source] + nodes[::-1], edges[::-1]))
            return
        for previous, via in parents[node_id]:
            if depth_of[previous] == depth_of[node_id] - 1:
                unwind(previous, nodes + [node_id], edges + [via])

    unwind(target, [], [])
    return results


def shortest_path_dag(
        view: GraphView, source: int,
        types: Collection[str] | None = None,
        direction: Direction = Direction.OUT,
        edge_filter=None, max_depth: int | None = None,
        ) -> tuple[dict[int, int], dict[int, list[tuple[int, int]]]]:
    """One BFS from *source* covering every reachable node.

    Returns ``(depth_of, parents)``: minimum hop counts and, per node,
    every ``(previous, edge)`` pair lying on some minimum-length path.
    This is the target-agnostic form of :func:`all_shortest_paths` —
    ``shortestPath`` matching runs it once per source and then answers
    all targets by membership, instead of a BFS per (source, target)
    pair.
    """
    depth_of = {source: 0}
    parents: dict[int, list[tuple[int, int]]] = {}
    frontier = [source]
    depth = 0
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        next_frontier: list[int] = []
        for node_id in frontier:
            for edge_id in view.edges_of(node_id, direction, types):
                if edge_filter is not None and not edge_filter(edge_id):
                    continue
                neighbor = other_end(view, edge_id, node_id)
                known_depth = depth_of.get(neighbor)
                if known_depth is None:
                    depth_of[neighbor] = depth
                    parents[neighbor] = [(node_id, edge_id)]
                    next_frontier.append(neighbor)
                elif known_depth == depth:
                    parents[neighbor].append((node_id, edge_id))
        frontier = next_frontier
    return depth_of, parents


def unwind_shortest_paths(
        source: int, target: int,
        depth_of: dict[int, int],
        parents: dict[int, list[tuple[int, int]]],
        limit: int = 64) -> list[tuple[list[int], list[int]]]:
    """All minimum-length (nodes, edges) paths from a BFS parents DAG."""
    if target == source:
        return [([source], [])]
    if target not in depth_of:
        return []
    results: list[tuple[list[int], list[int]]] = []

    def unwind(node_id: int, nodes: list[int], edges: list[int]) -> None:
        if len(results) >= limit:
            return
        if node_id == source:
            results.append(([source] + nodes[::-1], edges[::-1]))
            return
        for previous, via in parents[node_id]:
            if depth_of[previous] == depth_of[node_id] - 1:
                unwind(previous, nodes + [node_id], edges + [via])

    unwind(target, [], [])
    return results


def all_paths(view: GraphView, source: int, target: int,
              types: Collection[str] | None = None,
              direction: Direction = Direction.OUT,
              max_depth: int = 10,
              limit: int | None = None) -> Iterator[list[int]]:
    """Enumerate simple paths source -> target up to *max_depth* edges."""
    yielded = 0
    stack: list[tuple[int, list[int]]] = [(source, [source])]
    while stack:
        node_id, path = stack.pop()
        if node_id == target and len(path) > 1:
            yield path
            yielded += 1
            if limit is not None and yielded >= limit:
                return
            continue
        if len(path) > max_depth:
            continue
        for edge_id in view.edges_of(node_id, direction, types):
            neighbor = other_end(view, edge_id, node_id)
            if neighbor in path and neighbor != target:
                continue
            stack.append((neighbor, path + [neighbor]))


def strongly_connected_components(
        view: GraphView, types: Collection[str] | None = None,
        min_size: int = 2, include_self_loops: bool = True,
        ) -> list[list[int]]:
    """Dependency cycles: Tarjan's SCC, iterative.

    Returns components of ``min_size``+ nodes, plus single nodes with a
    self-loop when ``include_self_loops`` (a function calling itself is
    a cycle too). The paper's introduction names "searching for
    dependency cycles" as a core structured-result query.
    """
    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in view.node_ids():
        if root in index_of:
            continue
        # iterative Tarjan: (node, neighbor iterator) work stack
        work = [(root, iter(list(neighbors(view, root, Direction.OUT,
                                           types))))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node_id, neighbor_iter = work[-1]
            advanced = False
            for neighbor in neighbor_iter:
                if neighbor not in index_of:
                    index_of[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append(neighbor)
                    on_stack.add(neighbor)
                    work.append((neighbor, iter(list(
                        neighbors(view, neighbor, Direction.OUT,
                                  types)))))
                    advanced = True
                    break
                if neighbor in on_stack:
                    low[node_id] = min(low[node_id], index_of[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node_id])
            if low[node_id] == index_of[node_id]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node_id:
                        break
                if len(component) >= min_size:
                    components.append(sorted(component))
                elif include_self_loops and _has_self_loop(
                        view, component[0], types):
                    components.append(component)
    return components


def _has_self_loop(view: GraphView, node_id: int,
                   types: Collection[str] | None) -> bool:
    return any(other_end(view, edge_id, node_id) == node_id
               for edge_id in view.edges_of(node_id, Direction.OUT,
                                            types))


def weakly_connected_components(view: GraphView) -> list[set[int]]:
    """Weakly connected components (used by code-map sanity checks)."""
    remaining = set(view.node_ids())
    components = []
    while remaining:
        seed = next(iter(remaining))
        component = reachable_nodes(view, seed, None, Direction.BOTH,
                                    include_start=True)
        component &= remaining
        remaining -= component
        components.append(component)
    return components
