"""Property value model for nodes and edges.

The store supports the property types the paper's graph model needs
(Table 2): strings, integers, floats, booleans, and homogeneous lists of
those (``ARRAY_LENGTHS`` is an integer list). ``None`` is not a storable
value — absence of a key *is* the null, exactly as in Neo4j.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import PropertyTypeError

#: Python types storable as scalar property values.
SCALAR_TYPES = (str, int, float, bool)

PropertyValue = Any  # str | int | float | bool | list of those
PropertyMap = Mapping[str, PropertyValue]


def validate_value(key: str, value: PropertyValue) -> PropertyValue:
    """Validate *value* as storable; return it unchanged.

    Raises :class:`PropertyTypeError` for ``None``, unsupported types,
    and heterogeneous or nested lists.
    """
    if isinstance(value, bool) or isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        items = list(value)
        for item in items:
            if not isinstance(item, SCALAR_TYPES):
                raise PropertyTypeError(
                    f"property {key!r}: list elements must be scalars, "
                    f"got {type(item).__name__}")
        if items:
            first = _scalar_kind(items[0])
            for item in items[1:]:
                if _scalar_kind(item) is not first:
                    raise PropertyTypeError(
                        f"property {key!r}: list elements must share one "
                        f"type, got {first.__name__} and "
                        f"{type(item).__name__}")
        return items
    if value is None:
        raise PropertyTypeError(
            f"property {key!r}: None is not storable; delete the key "
            f"instead")
    raise PropertyTypeError(
        f"property {key!r}: unsupported type {type(value).__name__}")


def _scalar_kind(value: PropertyValue) -> type:
    """Collapse a scalar to its storage kind (bool is not an int here)."""
    if isinstance(value, bool):
        return bool
    for kind in (int, float, str):
        if isinstance(value, kind):
            return kind
    raise PropertyTypeError(f"unsupported scalar {type(value).__name__}")


def validate_properties(properties: PropertyMap | None) -> dict[str, Any]:
    """Validate a whole property map, returning a fresh plain dict."""
    if not properties:
        return {}
    validated = {}
    for key, value in properties.items():
        if not isinstance(key, str) or not key:
            raise PropertyTypeError(
                f"property keys must be non-empty strings, got {key!r}")
        validated[key] = validate_value(key, value)
    return validated


def properties_equal(left: PropertyMap, right: PropertyMap) -> bool:
    """Structural equality of two property maps (list order significant)."""
    if set(left) != set(right):
        return False
    for key, value in left.items():
        other = right[key]
        if isinstance(value, (list, tuple)) or isinstance(other, (list, tuple)):
            if list(value) != list(other):
                return False
        elif value != other or (isinstance(value, bool) is not
                                isinstance(other, bool)):
            return False
    return True


def estimate_value_bytes(value: PropertyValue) -> int:
    """Rough in-memory footprint of a property value, for statistics."""
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(estimate_value_bytes(item) for item in value) + 8
    return 8


def merge_properties(base: PropertyMap,
                     updates: PropertyMap | None) -> dict[str, Any]:
    """Return ``base`` overlaid with validated ``updates``."""
    merged = dict(base)
    merged.update(validate_properties(updates))
    return merged


def sorted_items(properties: PropertyMap) -> Iterable[tuple[str, Any]]:
    """Deterministically ordered items, for stable serialization."""
    return sorted(properties.items())
