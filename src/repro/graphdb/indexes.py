"""Label, property and lucene-style auto indexes.

Three index families back the query paths the paper exercises:

* **Label index** — node ids per label; serves Cypher 2.x label scans
  like ``MATCH (n:container:symbol ...)`` (paper Table 6).
* **Auto index** — a term dictionary per configured node property key
  (``short_name``, ``name``, ...), matching Neo4j 1.x's Lucene-backed
  ``node_auto_index``. Legacy ``START n=node:node_auto_index('...')``
  clauses evaluate here, including wildcard and fuzzy terms.
* **Exact property index** — the same term dictionaries answer exact
  ``lookup(key, value)`` probes used by planner seeks.

The :class:`IndexManager` is maintained incrementally by
:class:`~repro.graphdb.graph.PropertyGraph` mutation hooks and can also
be rebuilt wholesale (used when a disk store is opened).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.graphdb import luceneql


def _term(value: Any) -> str:
    """Normalize a property value to an index term (lowercased string)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value).lower()


class IndexManager:
    """Mutable index set over one graph's nodes.

    The manager is deliberately value-based (it stores node ids, not
    node handles) so the same class serves the in-memory graph and the
    store-backed graph after a rebuild.
    """

    def __init__(self, auto_index_keys: Iterable[str] = ()) -> None:
        self._auto_keys = tuple(key.lower() for key in auto_index_keys)
        # label -> set of node ids
        self._by_label: dict[str, set[int]] = {}
        # key -> term -> set of node ids
        self._by_term: dict[str, dict[str, set[int]]] = {
            key: {} for key in self._auto_keys}
        self._all_nodes: set[int] = set()
        self._lookup_counter: Any | None = None

    def attach_metrics(self, registry: Any) -> None:
        """Bind the ``index.lookups`` counter to a metrics registry."""
        self._lookup_counter = registry.counter("index.lookups")

    def _count_lookup(self) -> None:
        if self._lookup_counter is not None:
            self._lookup_counter.inc()

    @property
    def auto_index_keys(self) -> tuple[str, ...]:
        return self._auto_keys

    # -- maintenance hooks ---------------------------------------------------

    def on_node_added(self, node_id: int, labels: frozenset[str],
                      properties: dict[str, Any]) -> None:
        self._all_nodes.add(node_id)
        for label in labels:
            self._by_label.setdefault(label, set()).add(node_id)
        for key, value in properties.items():
            self._index_term(node_id, key, value)

    def on_node_removed(self, node_id: int, labels: frozenset[str],
                        properties: dict[str, Any]) -> None:
        self._all_nodes.discard(node_id)
        for label in labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._by_label[label]
        for key, value in properties.items():
            self._unindex_term(node_id, key, value)

    def on_node_property_changed(self, node_id: int, key: str,
                                 old: Any, new: Any) -> None:
        if old is not None:
            self._unindex_term(node_id, key, old)
        if new is not None:
            self._index_term(node_id, key, new)

    def on_label_added(self, node_id: int, label: str) -> None:
        self._by_label.setdefault(label, set()).add(node_id)

    def on_label_removed(self, node_id: int, label: str) -> None:
        bucket = self._by_label.get(label)
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._by_label[label]

    def clone(self) -> "IndexManager":
        """An independent copy with the same postings and metric
        binding; the copy-on-write detach hands the original to the
        pinned snapshot and mutates the clone."""
        twin = IndexManager(self._auto_keys)
        twin._by_label = {label: set(ids)
                         for label, ids in self._by_label.items()}
        twin._by_term = {key: {term: set(ids)
                               for term, ids in terms.items()}
                        for key, terms in self._by_term.items()}
        twin._all_nodes = set(self._all_nodes)
        twin._lookup_counter = self._lookup_counter
        return twin

    def rebuild(self, node_ids: Iterable[int],
                labels_of, properties_of) -> None:
        """Repopulate from scratch (used when opening a disk store)."""
        self._by_label.clear()
        for term_dict in self._by_term.values():
            term_dict.clear()
        self._all_nodes.clear()
        for node_id in node_ids:
            self.on_node_added(node_id, labels_of(node_id),
                               properties_of(node_id))

    # -- read side -------------------------------------------------------------

    def label(self, label: str) -> Iterator[int]:
        """Node ids carrying *label*, in ascending id order."""
        self._count_lookup()
        return iter(sorted(self._by_label.get(label, ())))

    def labels(self) -> Iterator[str]:
        return iter(sorted(self._by_label))

    def label_count(self, label: str) -> int:
        return len(self._by_label.get(label, ()))

    def lookup(self, key: str, value: Any) -> Iterator[int]:
        """Exact-term probe on an auto-indexed key."""
        self._count_lookup()
        term_dict = self._by_term.get(key.lower())
        if term_dict is None:
            return iter(())
        return iter(sorted(term_dict.get(_term(value), ())))

    def seek_count(self, key: str, value: Any) -> int:
        """Posting-list size for an exact term, without materializing it.

        The planner's index-selectivity estimate: how many candidates a
        ``NodeIndexSeek`` on ``key = value`` would produce. Not counted
        as a lookup — it reads only the bucket length.
        """
        term_dict = self._by_term.get(key.lower())
        if term_dict is None:
            return 0
        return len(term_dict.get(_term(value), ()))

    def query(self, query_string: str) -> Iterator[int]:
        """Evaluate a legacy lucene query string; yields node ids sorted."""
        self._count_lookup()
        ast = luceneql.parse_query(query_string)
        return iter(sorted(luceneql.evaluate(ast, self)))

    # -- luceneql.TermSource ---------------------------------------------------

    def all_ids(self) -> set[int]:
        return set(self._all_nodes)

    def terms(self, field: str) -> Iterable[str]:
        return self._by_term.get(field.lower(), {}).keys()

    def postings(self, field: str, term: str) -> set[int]:
        return set(self._by_term.get(field.lower(), {}).get(term, ()))

    def term_count(self, key: str) -> int:
        """Number of distinct terms indexed under *key* (for stats)."""
        return len(self._by_term.get(key.lower(), ()))

    def estimated_entry_count(self) -> int:
        """Total (term, node) postings across all keys (for Table 4)."""
        return sum(len(ids) for term_dict in self._by_term.values()
                   for ids in term_dict.values())

    # -- internals ---------------------------------------------------------------

    def _index_term(self, node_id: int, key: str, value: Any) -> None:
        key = key.lower()
        if key not in self._by_term:
            return
        self._by_term[key].setdefault(_term(value), set()).add(node_id)

    def _unindex_term(self, node_id: int, key: str, value: Any) -> None:
        key = key.lower()
        term_dict = self._by_term.get(key)
        if term_dict is None:
            return
        bucket = term_dict.get(_term(value))
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del term_dict[_term(value)]
