"""Compiled CSR adjacency segments: build-time-persisted neighbor lists.

The runtime CSR snapshot (PR 8) made the batch engine fast *once warm*
by decoding every adjacency block into Python dicts on first touch.
This module moves that work to build time: ``GraphStore.write`` (and
``frappe compact``) serialize one **CSR segment** per (direction,
edge-type) pair, and the reader serves neighbor lists straight off the
mmap with a varint decode of only the touched run.

On-disk layout — two flat files plus a JSON descriptor in
``metadata.json`` under the ``"csr"`` key:

``csr.db``
    Concatenated per-segment payloads.  A segment's payload is the
    concatenation of its nodes' *pair runs*
    (:func:`repro.graphdb.storage.records.encode_pair_run`): uvarint
    count, zigzag-varint edge-id deltas, zigzag-varint neighbor-id
    deltas — order-preserving, so a decoded run is byte-for-byte the
    (edge id, neighbor id) list the record path would produce.

``csr.offsets.db``
    Per-segment fixed-width ``u32`` offset arrays.  A segment covering
    node ids ``[base, base + span)`` stores ``span + 1`` offsets
    relative to its payload start; node ``n``'s run is
    ``payload[offsets[n - base]:offsets[n - base + 1]]`` and an empty
    run is two equal offsets.  The whole array is served as one
    zero-copy memoryview in mmap mode — locating a run is two ``u32``
    reads, no scan.

Descriptor (per segment): direction (0=out, 1=in), type token, base,
span, payload/offsets extents, CRC32 per region, and degree statistics
(edge count, max degree, log2-bucketed degree histogram) that the
planner picks up for free at open.

Segments are deterministic: ordered by (direction, token), runs in
ascending node-id order, pairs in adjacency-group order — the same
order the record-decode path yields, which is what makes the two
paths row-identical down to PROFILE trees.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Sequence

from repro.errors import StoreFormatError
from repro.graphdb.storage import records

#: direction codes used in segment descriptors
OUT = 0
IN = 1

CSR_DESCRIPTOR_VERSION = 1
OFFSET_WIDTH = 4
_U32_MAX = 0xFFFFFFFF
_UNPACK_BOUNDS = struct.Struct("<II").unpack_from

#: log2 degree-histogram buckets; bucket b counts nodes whose run
#: degree d satisfies 2**(b-1) <= d < 2**b (bucket 0 = degree 0)
DEGREE_BUCKETS = 16


class _Segment:
    """One (direction, token) segment being accumulated by the writer."""

    __slots__ = ("direction", "token", "base", "payload", "offsets",
                 "edges", "max_degree", "degree_hist")

    def __init__(self, direction: int, token: int, base: int) -> None:
        self.direction = direction
        self.token = token
        self.base = base
        self.payload = bytearray()
        self.offsets = [0]
        self.edges = 0
        self.max_degree = 0
        self.degree_hist = [0] * DEGREE_BUCKETS


class CsrBuilder:
    """Accumulates per-node pair runs; nodes must arrive in ascending
    id order (the store writer's natural iteration order)."""

    def __init__(self) -> None:
        self._segments: dict[tuple[int, int], _Segment] = {}

    def add(self, node_id: int, direction: int, token: int,
            pairs: Sequence[tuple[int, int]]) -> None:
        """Append node *node_id*'s (edge id, neighbor id) run."""
        if not pairs:
            return
        key = (direction, token)
        segment = self._segments.get(key)
        if segment is None:
            segment = self._segments[key] = _Segment(direction, token,
                                                     node_id)
        covered = segment.base + len(segment.offsets) - 1
        if node_id < covered:
            raise ValueError(
                f"CSR runs must arrive in ascending node order "
                f"(got {node_id} after {covered - 1})")
        size = len(segment.payload)
        # empty runs for the node ids skipped since the last add
        segment.offsets.extend([size] * (node_id - covered))
        segment.payload += records.encode_pair_run(pairs)
        segment.offsets.append(len(segment.payload))
        degree = len(pairs)
        segment.edges += degree
        if degree > segment.max_degree:
            segment.max_degree = degree
        segment.degree_hist[min(degree.bit_length(),
                                DEGREE_BUCKETS - 1)] += 1

    def finish(self) -> tuple[bytes, bytes, dict[str, Any]]:
        """Serialize to (payload file, offsets file, descriptor)."""
        payload_parts: list[bytes] = []
        offsets_parts: list[bytes] = []
        segments: list[dict[str, Any]] = []
        payload_at = 0
        offsets_at = 0
        for key in sorted(self._segments):
            segment = self._segments[key]
            payload = bytes(segment.payload)
            if len(payload) > _U32_MAX:
                raise StoreFormatError(
                    f"CSR segment {key} exceeds the u32 offset range")
            offsets = struct.pack(f"<{len(segment.offsets)}I",
                                  *segment.offsets)
            segments.append({
                "direction": segment.direction,
                "token": segment.token,
                "base": segment.base,
                "span": len(segment.offsets) - 1,
                "payload_offset": payload_at,
                "payload_bytes": len(payload),
                "payload_crc32": zlib.crc32(payload) & _U32_MAX,
                "offsets_offset": offsets_at,
                "offsets_bytes": len(offsets),
                "offsets_crc32": zlib.crc32(offsets) & _U32_MAX,
                "edges": segment.edges,
                "max_degree": segment.max_degree,
                "degree_hist": list(segment.degree_hist),
            })
            payload_parts.append(payload)
            offsets_parts.append(offsets)
            payload_at += len(payload)
            offsets_at += len(offsets)
        descriptor = {
            "version": CSR_DESCRIPTOR_VERSION,
            "offset_width": OFFSET_WIDTH,
            "payload_bytes": payload_at,
            "offsets_bytes": offsets_at,
            "segments": segments,
        }
        return b"".join(payload_parts), b"".join(offsets_parts), descriptor


class CsrReader:
    """Serves neighbor runs from the compiled CSR files.

    Offset arrays are read once per segment through the page cache —
    a zero-copy memoryview in mmap mode — and cached until
    :meth:`evict`.  Payload reads touch only the queried run.
    """

    def __init__(self, payload_file: Any, offsets_file: Any,
                 descriptor: dict[str, Any]) -> None:
        self._payload = payload_file
        self._offsets = offsets_file
        self._segments: dict[tuple[int, int], dict[str, Any]] = {}
        self._by_direction: dict[int, list[dict[str, Any]]] = {OUT: [],
                                                               IN: []}
        for entry in descriptor.get("segments", ()):
            key = (entry["direction"], entry["token"])
            self._segments[key] = entry
            self._by_direction.setdefault(entry["direction"],
                                          []).append(entry)
        for entries in self._by_direction.values():
            entries.sort(key=lambda entry: entry["token"])
        # flat per-direction scan tables: plain int tuples so groups()
        # can reject a non-covering segment with two comparisons, no
        # dict subscripts or method calls
        self._flat: dict[int, tuple[tuple, ...]] = {
            direction: tuple(
                (entry["token"], entry["base"], entry["span"],
                 entry["payload_offset"], entry["payload_bytes"],
                 entry["offsets_offset"], (direction, entry["token"]))
                for entry in entries)
            for direction, entries in self._by_direction.items()}
        self._views: dict[tuple[int, int], Any] = {}
        #: whole-payload memoryview, mmap mode only: runs are sliced
        #: zero-copy with no per-run page-cache round trip
        self._buffer: Any = None

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def tokens(self, direction: int) -> list[int]:
        """Type tokens with a segment in *direction*, ascending."""
        return [entry["token"]
                for entry in self._by_direction.get(direction, ())]

    def evict(self) -> None:
        """Drop the cached offset-array views and the payload buffer
        (cold-start emulation; also releases exported mmap views so
        the underlying files can close)."""
        self._views.clear()
        self._buffer = None

    def _payload_buffer(self) -> Any:
        """The whole payload as one zero-copy view (mmap mode), else
        None — the buffered path reads runs individually so a store
        larger than memory never gets pinned wholesale."""
        buffer = self._buffer
        if buffer is None and getattr(self._payload, "mapped", False):
            size = self._payload.size
            if size:
                buffer = self._payload.read(0, size)
                self._buffer = buffer
        return buffer

    def _offsets_view(self, key: tuple[int, int],
                      entry: dict[str, Any]) -> Any:
        view = self._views.get(key)
        if view is None:
            view = self._offsets.read(entry["offsets_offset"],
                                      4 * (entry["span"] + 1))
            self._views[key] = view
        return view

    def _run(self, key: tuple[int, int], entry: dict[str, Any],
             node_id: int) -> list[tuple[int, int]]:
        index = node_id - entry["base"]
        if index < 0 or index >= entry["span"]:
            return []
        view = self._offsets_view(key, entry)
        start, end = struct.unpack_from("<II", view, 4 * index)
        if start == end:
            return []
        if end < start or end > entry["payload_bytes"]:
            raise StoreFormatError(
                f"CSR offsets corrupt for node {node_id} in segment "
                f"{key}: [{start}, {end})")
        run = self._payload.read(entry["payload_offset"] + start,
                                 end - start)
        if type(run) is not bytes:  # memoryview from the mmap path
            run = bytes(run)
        pairs, _consumed = records.decode_pair_run(run)
        return pairs

    def pairs(self, node_id: int, direction: int,
              token: int) -> list[tuple[int, int]]:
        """(edge id, neighbor id) run for one (node, direction, type)."""
        key = (direction, token)
        entry = self._segments.get(key)
        if entry is None:
            return []
        return self._run(key, entry, node_id)

    def groups(self, node_id: int, direction: int,
               wanted: "set[int] | frozenset[int] | None" = None,
               ) -> list[tuple[int, list[tuple[int, int]]]]:
        """Non-empty (token, pairs) groups for *node_id*, token-ascending
        — the exact group order of a decoded adjacency block, whatever
        order *wanted* came in."""
        out: list[tuple[int, list[tuple[int, int]]]] = []
        views = self._views
        offsets_read = self._offsets.read
        buffer = self._payload_buffer()
        payload_read = self._payload.read
        unpack_bounds = _UNPACK_BOUNDS
        decode_run = records.decode_pair_run
        for (token, base, span, payload_offset, payload_bytes,
             offsets_offset, key) in self._flat.get(direction, ()):
            index = node_id - base
            if index < 0 or index >= span:
                continue
            if wanted is not None and token not in wanted:
                continue
            view = views.get(key)
            if view is None:
                view = offsets_read(offsets_offset, 4 * (span + 1))
                views[key] = view
            start, end = unpack_bounds(view, 4 * index)
            if start == end:
                continue
            if end < start or end > payload_bytes:
                raise StoreFormatError(
                    f"CSR offsets corrupt for node {node_id} in segment "
                    f"{key}: [{start}, {end})")
            if buffer is not None:
                at = payload_offset + start
                run = buffer[at:at + (end - start)]  # zero-copy slice
            else:
                run = payload_read(payload_offset + start, end - start)
            pairs, _consumed = decode_run(run)
            out.append((token, pairs))
        return out


def verify_descriptor(descriptor: dict[str, Any], payload: bytes,
                      offsets: bytes, high_node: int,
                      rel_high: int) -> list[tuple[str, str]]:
    """Structural fsck of the CSR files against their descriptor.

    Returns (file-kind, message) problems; file-kind is ``"payload"``
    or ``"offsets"``.  Every run of every segment is decoded, so a
    clean verdict means the whole compiled adjacency is readable and
    every edge/neighbor id is in range.
    """
    problems: list[tuple[str, str]] = []
    if descriptor.get("offset_width") != OFFSET_WIDTH:
        problems.append(("offsets", "unsupported CSR offset width "
                         f"{descriptor.get('offset_width')!r}"))
        return problems
    if descriptor.get("payload_bytes") != len(payload):
        problems.append(
            ("payload", f"csr payload is {len(payload)} bytes, "
             f"descriptor says {descriptor.get('payload_bytes')}"))
        return problems
    if descriptor.get("offsets_bytes") != len(offsets):
        problems.append(
            ("offsets", f"csr offsets file is {len(offsets)} bytes, "
             f"descriptor says {descriptor.get('offsets_bytes')}"))
        return problems
    for entry in descriptor.get("segments", ()):
        name = f"segment (dir={entry['direction']}, token={entry['token']})"
        segment_payload = payload[
            entry["payload_offset"]:
            entry["payload_offset"] + entry["payload_bytes"]]
        if zlib.crc32(segment_payload) & _U32_MAX != \
                entry.get("payload_crc32"):
            problems.append(("payload", f"{name}: payload CRC mismatch"))
            continue
        segment_offsets = offsets[
            entry["offsets_offset"]:
            entry["offsets_offset"] + entry["offsets_bytes"]]
        if zlib.crc32(segment_offsets) & _U32_MAX != \
                entry.get("offsets_crc32"):
            problems.append(("offsets", f"{name}: offsets CRC mismatch"))
            continue
        span = entry["span"]
        if len(segment_offsets) != 4 * (span + 1):
            problems.append(("offsets",
                             f"{name}: offsets array truncated"))
            continue
        if entry["base"] + span > high_node:
            problems.append(("offsets",
                             f"{name}: covers node ids past the node "
                             f"store ({entry['base'] + span} > "
                             f"{high_node})"))
            continue
        bounds = struct.unpack_from(f"<{span + 1}I", segment_offsets)
        if bounds[-1] != entry["payload_bytes"]:
            problems.append(("offsets",
                             f"{name}: final offset {bounds[-1]} != "
                             f"payload extent {entry['payload_bytes']}"))
            continue
        edges = 0
        previous = 0
        for index in range(span):
            start, end = bounds[index], bounds[index + 1]
            if start < previous or end < start:
                problems.append(("offsets",
                                 f"{name}: offsets not monotonic at "
                                 f"node {entry['base'] + index}"))
                break
            previous = start
            if start == end:
                continue
            try:
                pairs, consumed = records.decode_pair_run(
                    segment_payload[start:end])
            except StoreFormatError as error:
                problems.append(("payload",
                                 f"{name}: node {entry['base'] + index} "
                                 f"run undecodable: {error}"))
                break
            if consumed != end - start:
                problems.append(("payload",
                                 f"{name}: node {entry['base'] + index} "
                                 "run has trailing bytes"))
                break
            edges += len(pairs)
            for edge_id, neighbor in pairs:
                if not 0 <= edge_id < rel_high:
                    problems.append(
                        ("payload", f"{name}: edge id {edge_id} out of "
                         f"range at node {entry['base'] + index}"))
                    break
                if not 0 <= neighbor < high_node:
                    problems.append(
                        ("payload", f"{name}: neighbor id {neighbor} "
                         f"out of range at node "
                         f"{entry['base'] + index}"))
                    break
            else:
                continue
            break
        else:
            if edges != entry.get("edges"):
                problems.append(
                    ("payload", f"{name}: {edges} edges decoded, "
                     f"descriptor says {entry.get('edges')}"))
    return problems


__all__ = ["CSR_DESCRIPTOR_VERSION", "CsrBuilder", "CsrReader",
           "DEGREE_BUCKETS", "IN", "OFFSET_WIDTH", "OUT",
           "verify_descriptor"]
