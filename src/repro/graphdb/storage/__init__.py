"""Record-oriented on-disk store behind a page cache.

The layout mirrors Neo4j's store decomposition, which is what paper
Table 4 measures: separate files for node records, relationship
records, property records, the string dictionary, and the indexes. All
reads go through an LRU page cache plus a decoded-object cache (Neo4j
2.x's file-buffer + object cache pair); evicting both is what "cold
cache" means in the Table 5 benchmark protocol.
"""

from repro.graphdb.storage.csr import CsrBuilder, CsrReader
from repro.graphdb.storage.pagecache import PageCache, PagedFile
from repro.graphdb.storage.store import (CLEAN, CORRUPT, REPAIRABLE,
                                         GraphStore, StoreGraph,
                                         StoreProblem, StoreVerification,
                                         compact_store)
# imported after store on purpose: sharding pulls in repro.core.model,
# whose package init re-enters this package for GraphStore/StoreGraph
from repro.graphdb.storage.sharding import (ShardedStore, ShardView,
                                            assign_subtrees,
                                            compact_shard_root,
                                            frontier_exchange,
                                            is_shard_root, split_store,
                                            verify_shard_root)

__all__ = ["CLEAN", "CORRUPT", "CsrBuilder", "CsrReader", "GraphStore",
           "PageCache", "PagedFile", "REPAIRABLE", "ShardView",
           "ShardedStore", "StoreGraph", "StoreProblem",
           "StoreVerification", "assign_subtrees", "compact_shard_root",
           "compact_store", "frontier_exchange", "is_shard_root",
           "split_store", "verify_shard_root"]
