"""LRU page cache over store files, with an optional mmap mode.

Every byte read from a store file passes through one shared
:class:`PageCache`. The cache records hit/miss/eviction counts so the
benchmark harness can verify a "cold" run really started from an empty
cache and a "warm" run really stayed resident — the distinction paper
Table 5 is built on.

Two modes:

* ``"buffered"`` (default): pages are ``read()`` into an LRU
  ``OrderedDict`` and byte ranges are assembled by copying page
  slices.
* ``"mmap"``: each file is memory-mapped once and ``read()`` returns a
  zero-copy ``memoryview`` slice of the mapping; the OS page cache
  does the caching. Hit/miss accounting is preserved by tracking which
  pages have been touched since the last :meth:`PageCache.clear` —
  first touch counts as a miss (and re-checks the on-disk size, so a
  file truncated underneath us still raises
  :class:`~repro.errors.StoreCorruptionError` exactly when the
  buffered path would detect it: on a page miss), later touches count
  as hits. Files that cannot be mapped (zero length, exotic
  filesystems) fall back to the buffered path per file.
"""

from __future__ import annotations

import dataclasses
import mmap
import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, BinaryIO

from repro.errors import StoreCorruptionError

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

DEFAULT_PAGE_SIZE = 8192
DEFAULT_CAPACITY_PAGES = 4096  # 32 MiB at the default page size


@dataclasses.dataclass
class CacheStats:
    """Counters accumulated since construction or the last reset."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: reads that came back shorter than requested — a store file
    #: truncated underneath a live reader; always paired with a
    #: StoreCorruptionError, never with silently short data
    short_reads: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.short_reads = 0


class PageCache:
    """Shared LRU cache of (file id, page number) -> page bytes.

    Counters are kept twice on purpose: :attr:`stats` is the local
    :class:`CacheStats` the ablation benchmarks poke directly, and the
    same events are mirrored into a
    :class:`~repro.obs.metrics.MetricsRegistry` (``pagecache.*``) so
    one ``Frappe.counters()`` snapshot covers the whole read path.
    """

    def __init__(self, capacity_pages: int = DEFAULT_CAPACITY_PAGES,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 registry: "MetricsRegistry | None" = None,
                 mode: str = "buffered") -> None:
        if capacity_pages < 1:
            raise ValueError("page cache needs at least one page")
        if page_size < 64:
            raise ValueError("page size below 64 bytes is not sensible")
        if mode not in ("buffered", "mmap"):
            raise ValueError("mode must be 'buffered' or 'mmap'")
        self.page_size = page_size
        self.capacity_pages = capacity_pages
        self.mode = mode
        self.stats = CacheStats()
        self._pages: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        #: mmap mode: pages touched since the last clear(), per file —
        #: the cold/warm distinction the buffered LRU gives for free
        self._touched: dict[int, set[int]] = {}
        self._next_file_id = 0
        # one cache serves every worker thread of an Executor: the
        # LRU OrderedDict and the seek+read pair on a shared file
        # handle must not interleave across threads
        self._lock = threading.Lock()
        if registry is None:
            from repro.obs import MetricsRegistry
            registry = MetricsRegistry()
        self.attach_metrics(registry)

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """(Re)bind the cache's counters to a metrics registry."""
        self.metrics = registry
        self._hit_counter = registry.counter("pagecache.hits")
        self._miss_counter = registry.counter("pagecache.misses")
        self._eviction_counter = registry.counter("pagecache.evictions")
        self._read_bytes_counter = registry.counter(
            "pagecache.read_bytes")
        self._short_read_counter = registry.counter(
            "pagecache.short_reads")
        self._resident_gauge = registry.gauge("pagecache.resident_pages")

    def register_file(self) -> int:
        """Hand out a unique id for a participating file."""
        with self._lock:
            file_id = self._next_file_id
            self._next_file_id += 1
            return file_id

    def get_page(self, file_id: int, page_no: int,
                 handle: BinaryIO) -> bytes:
        """Return the page, loading from *handle* on a miss."""
        key = (file_id, page_no)
        with self._lock:
            page = self._pages.get(key)
            if page is not None:
                self.stats.hits += 1
                self._hit_counter.inc()
                self._pages.move_to_end(key)
                return page
            self.stats.misses += 1
            self._miss_counter.inc()
            handle.seek(page_no * self.page_size)
            page = handle.read(self.page_size)
            self._read_bytes_counter.inc(len(page))
            self._pages[key] = page
            if len(self._pages) > self.capacity_pages:
                self._pages.popitem(last=False)
                self.stats.evictions += 1
                self._eviction_counter.inc()
            self._resident_gauge.set(len(self._pages))
            return page

    def record_mapped_pages(self, file_id: int, first_page: int,
                            last_page: int, file_size: int) -> int:
        """Account an mmap-mode access to ``[first_page, last_page]``.

        Pages touched for the first time since the last :meth:`clear`
        count as misses (with their backed bytes added to
        ``pagecache.read_bytes``); pages seen before count as hits.
        Returns the number of first-touch pages so the caller can
        re-validate the on-disk size exactly when the buffered path
        would have gone to disk.
        """
        with self._lock:
            touched = self._touched.setdefault(file_id, set())
            fresh = 0
            for page_no in range(first_page, last_page + 1):
                if page_no in touched:
                    self.stats.hits += 1
                    self._hit_counter.inc()
                else:
                    touched.add(page_no)
                    fresh += 1
                    self.stats.misses += 1
                    self._miss_counter.inc()
                    backed = min(self.page_size,
                                 file_size - page_no * self.page_size)
                    if backed > 0:
                        self._read_bytes_counter.inc(backed)
            return fresh

    def note_short_read(self) -> None:
        """Record a truncated-underneath-us read (PagedFile)."""
        self.stats.short_reads += 1
        self._short_read_counter.inc()

    def invalidate_file(self, file_id: int) -> None:
        """Drop all cached pages of one file (after a rewrite)."""
        with self._lock:
            stale = [key for key in self._pages if key[0] == file_id]
            for key in stale:
                del self._pages[key]
            self._touched.pop(file_id, None)

    def clear(self) -> None:
        """Evict everything — the 'cold cache' lever of the benchmarks."""
        with self._lock:
            self._pages.clear()
            for touched in self._touched.values():
                touched.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(len(page) for page in self._pages.values())


class PagedFile:
    """Read-only view of one store file through a shared page cache.

    In a cache's ``"mmap"`` mode the file is memory-mapped at open and
    :meth:`read` returns zero-copy ``memoryview`` slices; when the
    mapping cannot be created (empty file, mmap-hostile filesystem)
    the file silently uses the buffered LRU path instead —
    :attr:`mapped` tells which one is active.
    """

    def __init__(self, path: str, cache: PageCache) -> None:
        self.path = path
        self._cache = cache
        self._file_id = cache.register_file()
        self._handle: BinaryIO = open(path, "rb")
        self._size = os.fstat(self._handle.fileno()).st_size
        self._closed = False
        self._map: mmap.mmap | None = None
        self._view: memoryview | None = None
        if cache.mode == "mmap" and self._size > 0:
            try:
                self._map = mmap.mmap(self._handle.fileno(), 0,
                                      access=mmap.ACCESS_READ)
            except (OSError, ValueError):
                self._map = None  # graceful fallback to buffered reads
            else:
                self._view = memoryview(self._map)

    @property
    def mapped(self) -> bool:
        """True when reads are zero-copy mmap slices."""
        return self._map is not None

    @property
    def size(self) -> int:
        return self._size

    @property
    def cache(self) -> PageCache:
        return self._cache

    @property
    def closed(self) -> bool:
        return self._closed

    def read(self, offset: int, length: int) -> "bytes | memoryview":
        """Read *length* bytes at *offset* through the cache.

        Buffered mode assembles the range page by page; mmap mode
        returns a zero-copy ``memoryview`` slice (both satisfy the
        buffer protocol, and record decoding accepts either).

        Raises :class:`StoreCorruptionError` (a ``ValueError``) when the
        request lands outside the file, and on *short reads*: the file
        advertised enough bytes at open time but a page came back short
        — the signature of a store file truncated underneath us.
        """
        if length <= 0:
            return b""
        if offset < 0 or offset + length > self._size:
            raise StoreCorruptionError(
                f"read [{offset}, {offset + length}) outside file "
                f"of size {self._size}", file=self.path, offset=offset)
        page_size = self._cache.page_size
        first_page = offset // page_size
        last_page = (offset + length - 1) // page_size
        if self._map is not None:
            fresh = self._cache.record_mapped_pages(
                self._file_id, first_page, last_page, self._size)
            if fresh and \
                    os.fstat(self._handle.fileno()).st_size < self._size:
                # the file shrank after open: surface it on the first
                # touch of a page, exactly when a buffered read would
                # have come back short
                self._cache.note_short_read()
                raise StoreCorruptionError(
                    f"short read: wanted {length} bytes, file (size "
                    f"{self._size} at open) truncated after open",
                    file=self.path, offset=offset)
            return self._view[offset:offset + length]
        if first_page == last_page:
            page = self._cache.get_page(self._file_id, first_page,
                                        self._handle)
            start = offset - first_page * page_size
            data = page[start:start + length]
        else:
            chunks = []
            remaining = length
            position = offset
            for page_no in range(first_page, last_page + 1):
                page = self._cache.get_page(self._file_id, page_no,
                                            self._handle)
                start = position - page_no * page_size
                take = min(remaining, page_size - start)
                chunks.append(page[start:start + take])
                position += take
                remaining -= take
            data = b"".join(chunks)
        if len(data) != length:
            self._cache.note_short_read()
            raise StoreCorruptionError(
                f"short read: wanted {length} bytes, file (size "
                f"{self._size} at open) yielded {len(data)} — "
                "truncated after open", file=self.path, offset=offset)
        return data

    def close(self) -> None:
        """Release the handle and cached pages; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        self._cache.invalidate_file(self._file_id)
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # a caller still holds an exported slice; the mapping
                # is released when the last slice is garbage-collected
                pass
            self._map = None
        self._handle.close()

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
