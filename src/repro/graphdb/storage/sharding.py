"""Subtree sharding of an immutable store.

``split_store`` partitions one store directory into N per-subtree
shard stores under a *shard root*::

    <root>/shard_manifest.json     sharding metadata + source stats
    <root>/shard-000/ ...          ordinary graph store directories
    <root>/boundary-000.json ...   per-shard boundary-edge tables

The shard key is the kernel's natural one — the top-level directory
subtree (``drivers/``, ``fs/``, ...): every node is owned by exactly
one shard, assigned by a first-wins containment walk from each
top-level directory and greedy bin packing of the subtrees. Nodes that
belong to no subtree (primitives, modules, the root directories — the
graph's reference hubs) ride on shard 0.

Global node/edge record ids are preserved: a shard store encodes the
unowned id range as holes, so any row a shard produces is bit-for-bit
the row the unsharded store would produce. Two replication mechanisms
keep shard-local execution honest:

* **Ghost nodes** — every boundary neighbor (a node of another shard
  touching an edge this shard holds) is written into the shard with
  its real labels and properties, but excluded from the shard's
  indexes and counts (see :meth:`GraphStore.write`'s ``ghost_nodes``).
  One-hop expansions therefore resolve locally, while label scans and
  index seeks return only owned nodes — scattered partial results are
  disjoint by construction.
* **Boundary-edge tables** — every edge whose endpoints live in
  different shards is recorded in *both* shards' tables with its
  owner-shard tag, so the scatter/gather router and ``fsck`` can
  reason about the cut without opening other shards.

``ShardedStore`` reassembles the shards into one composite
:class:`~repro.graphdb.view.GraphView` that is indistinguishable from
the source store (same ids, same iteration orders, same statistics),
which is what makes the router's gateway path provably
result-identical. ``frontier_exchange`` is the level-synchronous BFS
primitive for var-length traversals that cross shard boundaries.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import re
import zlib
from collections import deque
from typing import Any, Collection, Iterable, Iterator

from repro.core import model
from repro.errors import StoreError, StoreFormatError
from repro.graphdb import luceneql
from repro.graphdb.stats import GraphStatistics
from repro.graphdb.storage.pagecache import PageCache
from repro.graphdb.storage.store import (CLEAN, CORRUPT, METADATA_FILE,
                                         REPAIRABLE, GraphStore,
                                         StoreGraph, StoreProblem,
                                         StoreVerification, compact_store)
from repro.graphdb.view import Direction, GraphView

SHARD_MAGIC = "frappe-shard-root"
SHARD_MANIFEST_FILE = "shard_manifest.json"
SHARD_FORMAT_VERSION = 1

#: containment edge types that define subtree membership; parameters
#: and locals are only reachable through their function, so the walk
#: keeps whole functions (the unit Table 5 queries traverse) intact
CONTAINMENT_TYPES = (model.DIR_CONTAINS, model.FILE_CONTAINS,
                     model.CONTAINS, model.HAS_PARAM, model.HAS_LOCAL)


def shard_directory_name(shard: int) -> str:
    return f"shard-{shard:03d}"


def boundary_file_name(shard: int) -> str:
    return f"boundary-{shard:03d}.json"


# --------------------------------------------------------------------------
# Subtree assignment
# --------------------------------------------------------------------------

@dataclasses.dataclass
class SubtreeAssignment:
    """The partitioning decision: node -> shard, plus provenance."""

    shard_count: int
    owner: dict[int, int]
    #: per shard, the short names of the subtree roots it carries
    #: (the router's path-prefix pruning statistics)
    path_prefixes: list[list[str]]


def assign_subtrees(view: GraphView, shard_count: int) -> SubtreeAssignment:
    """Partition every node of *view* across ``shard_count`` shards.

    Deterministic for a given graph: subtrees are claimed first-wins
    in ascending root-id order, then greedily bin-packed (largest
    first, ties by root id, onto the least-loaded shard). Residual
    nodes — anything no top-level subtree contains — go to shard 0,
    which the packing pre-loads so the result stays balanced.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    directories = set()
    for node_id in view.node_ids():
        if model.DIRECTORY in view.node_labels(node_id):
            directories.add(node_id)
    roots = []
    for node_id in sorted(directories):
        has_parent_dir = any(
            view.edge_source(edge) in directories
            for edge in view.edges_of(node_id, Direction.IN,
                                      (model.DIR_CONTAINS,)))
        if not has_parent_dir:
            roots.append(node_id)
    subtree_roots: list[int] = []
    for root in roots:
        for edge in view.edges_of(root, Direction.OUT,
                                  (model.DIR_CONTAINS,)):
            child = view.edge_target(edge)
            if child in directories:
                subtree_roots.append(child)
    subtree_roots = sorted(set(subtree_roots))

    claimed: dict[int, int] = {}
    members: dict[int, list[int]] = {}
    for subtree in subtree_roots:
        if subtree in claimed:
            members[subtree] = []
            continue
        claimed[subtree] = subtree
        found = [subtree]
        queue = deque((subtree,))
        while queue:
            node = queue.popleft()
            for edge in view.edges_of(node, Direction.OUT,
                                      CONTAINMENT_TYPES):
                child = view.edge_target(edge)
                if child not in claimed:
                    claimed[child] = subtree
                    found.append(child)
                    queue.append(child)
        members[subtree] = found

    residual = [node_id for node_id in view.node_ids()
                if node_id not in claimed]

    # greedy bin packing: shard 0 starts pre-loaded with the residual
    loads = [0] * shard_count
    loads[0] = len(residual)
    owner: dict[int, int] = {node_id: 0 for node_id in residual}
    prefixes: list[list[str]] = [[] for _ in range(shard_count)]
    ordered = sorted(subtree_roots,
                     key=lambda root: (-len(members[root]), root))
    for root in ordered:
        shard = min(range(shard_count), key=lambda index: loads[index])
        loads[shard] += len(members[root])
        for node_id in members[root]:
            owner[node_id] = shard
        name = view.node_property(root, model.P_SHORT_NAME)
        if name is not None and members[root]:
            prefixes[shard].append(str(name))
    return SubtreeAssignment(shard_count, owner,
                             [sorted(names) for names in prefixes])


# --------------------------------------------------------------------------
# The restricted write view
# --------------------------------------------------------------------------

class _AutoKeysShim:
    """Just enough of an index reader for :meth:`GraphStore.write`."""

    def __init__(self, auto_index_keys: tuple[str, ...]) -> None:
        self.auto_index_keys = auto_index_keys


class ShardView:
    """A :class:`GraphView` over one shard's slice of the source store.

    Nodes are the shard's owned nodes plus its ghost replicas; edges
    are every edge with at least one owned endpoint. All reads
    delegate to the source store, and ``edges_of`` filters the
    source's adjacency *in source order*, so the shard writer
    serializes the exact groups the source store would iterate.
    """

    def __init__(self, source: GraphView, node_ids: Collection[int],
                 edge_ids: Collection[int],
                 auto_index_keys: tuple[str, ...]) -> None:
        self._source = source
        self._node_ids = sorted(node_ids)
        self._node_set = frozenset(node_ids)
        self._edge_ids = sorted(edge_ids)
        self._edge_set = frozenset(edge_ids)
        self.indexes = _AutoKeysShim(auto_index_keys)

    def node_ids(self) -> list[int]:
        return self._node_ids

    def edge_ids(self) -> list[int]:
        return self._edge_ids

    def node_count(self) -> int:
        return len(self._node_ids)

    def edge_count(self) -> int:
        return len(self._edge_ids)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._node_set

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edge_set

    def node_labels(self, node_id: int) -> frozenset[str]:
        return self._source.node_labels(node_id)

    def node_properties(self, node_id: int) -> dict[str, Any]:
        return self._source.node_properties(node_id)

    def node_property(self, node_id: int, key: str,
                      default: Any = None) -> Any:
        return self._source.node_property(node_id, key, default)

    def edge_source(self, edge_id: int) -> int:
        return self._source.edge_source(edge_id)

    def edge_target(self, edge_id: int) -> int:
        return self._source.edge_target(edge_id)

    def edge_type(self, edge_id: int) -> str:
        return self._source.edge_type(edge_id)

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        return self._source.edge_properties(edge_id)

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        for edge_id in self._source.edges_of(node_id, direction, types):
            if edge_id in self._edge_set:
                yield edge_id


# --------------------------------------------------------------------------
# The splitter
# --------------------------------------------------------------------------

def split_store(source_dir: str, out_dir: str, shards: int, *,
                by: str = "subtree") -> dict[str, Any]:
    """Split a store directory into a shard root; returns the manifest.

    Only ``by="subtree"`` is implemented (the CLI's ``--by-subtree``).
    The source store is untouched; shard stores are written with the
    source's token vocabulary pre-seeded so adjacency iteration order
    matches the source byte for byte.
    """
    if by != "subtree":
        raise ValueError(f"unknown shard strategy {by!r}")
    if shards < 1:
        raise ValueError("need at least one shard")
    with open(os.path.join(source_dir, METADATA_FILE),
              encoding="utf-8") as handle:
        source_metadata = json.load(handle)
    vocabulary = {
        "key_tokens": source_metadata.get("key_tokens", []),
        "type_tokens": source_metadata.get("type_tokens", []),
        "label_tokens": source_metadata.get("label_tokens", []),
    }
    source = GraphStore.open(source_dir)
    try:
        assignment = assign_subtrees(source, shards)
        owner = assignment.owner
        auto_keys = tuple(source.indexes.auto_index_keys)

        shard_edges: list[set[int]] = [set() for _ in range(shards)]
        boundary: list[list[list[int]]] = [[] for _ in range(shards)]
        for edge_id in source.edge_ids():
            source_node = source.edge_source(edge_id)
            target_node = source.edge_target(edge_id)
            source_shard = owner[source_node]
            target_shard = owner[target_node]
            shard_edges[source_shard].add(edge_id)
            shard_edges[target_shard].add(edge_id)
            if source_shard != target_shard:
                row = [edge_id, source_node, target_node,
                       source_shard, target_shard]
                boundary[source_shard].append(row)
                boundary[target_shard].append(row)

        os.makedirs(out_dir, exist_ok=True)
        manifest_shards: list[dict[str, Any]] = []
        for shard in range(shards):
            owned = {node_id for node_id, node_shard in owner.items()
                     if node_shard == shard}
            ghosts: set[int] = set()
            for edge_id in shard_edges[shard]:
                for endpoint in (source.edge_source(edge_id),
                                 source.edge_target(edge_id)):
                    if endpoint not in owned:
                        ghosts.add(endpoint)
            view = ShardView(source, owned | ghosts, shard_edges[shard],
                             auto_keys)
            directory = os.path.join(out_dir, shard_directory_name(shard))
            GraphStore.write(view, directory, ghost_nodes=ghosts,
                             vocabulary=vocabulary)

            table = {"version": SHARD_FORMAT_VERSION, "shard": shard,
                     "edges": sorted(boundary[shard])}
            table_bytes = json.dumps(table).encode("utf-8")
            boundary_path = os.path.join(out_dir,
                                         boundary_file_name(shard))
            with open(boundary_path, "wb") as handle:
                handle.write(table_bytes)
            with open(os.path.join(directory, METADATA_FILE),
                      encoding="utf-8") as handle:
                shard_metadata = json.load(handle)
            manifest_shards.append({
                "directory": shard_directory_name(shard),
                "nodes": shard_metadata["node_count"],
                "edges": shard_metadata["edge_count"],
                "ghosts": len(ghosts),
                "label_counts": shard_metadata.get("label_counts", {}),
                "path_prefixes": assignment.path_prefixes[shard],
                "boundary_file": boundary_file_name(shard),
                "boundary_crc32": zlib.crc32(table_bytes) & 0xFFFFFFFF,
                "boundary_edges": len(boundary[shard]),
            })

        manifest = {
            "magic": SHARD_MAGIC,
            "version": SHARD_FORMAT_VERSION,
            "strategy": by,
            "shard_count": shards,
            "source": {
                "node_count": source_metadata["node_count"],
                "edge_count": source_metadata["edge_count"],
                "label_counts": source_metadata.get("label_counts", {}),
                "edge_type_counts":
                    source_metadata.get("edge_type_counts", {}),
                "auto_index_keys": list(auto_keys),
            },
            "shards": manifest_shards,
        }
        with open(os.path.join(out_dir, SHARD_MANIFEST_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle)
        return manifest
    finally:
        source.close()


def is_shard_root(directory: str) -> bool:
    """Does *directory* look like a shard root (vs a plain store)?"""
    return os.path.exists(os.path.join(directory, SHARD_MANIFEST_FILE))


def load_shard_manifest(directory: str) -> dict[str, Any]:
    path = os.path.join(directory, SHARD_MANIFEST_FILE)
    if not os.path.exists(path):
        raise StoreError(f"not a shard root: {directory!r}")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("magic") != SHARD_MAGIC:
        raise StoreFormatError(f"bad magic in {path!r}")
    if manifest.get("version") != SHARD_FORMAT_VERSION:
        raise StoreFormatError(
            f"shard root version {manifest.get('version')!r} "
            f"unsupported (expected {SHARD_FORMAT_VERSION})")
    return manifest


def verify_shard_root(directory: str) -> StoreVerification:
    """``frappe fsck`` for a shard root.

    Verifies every shard store plus the boundary tables. Boundary
    damage is classified under its own ``boundary`` category and — like
    index damage — is *repairable*: the tables are derivable from the
    shard stores' relationship records.
    """
    problems: list[StoreProblem] = []
    try:
        manifest = load_shard_manifest(directory)
    except (StoreError, OSError, ValueError) as error:
        problems.append(StoreProblem(SHARD_MANIFEST_FILE, "metadata",
                                     f"unreadable: {error}"))
        return StoreVerification(directory, CORRUPT, problems)
    files: dict[str, dict[str, Any]] = {}
    for entry in manifest.get("shards", ()):
        shard_dir = entry.get("directory", "")
        verification = GraphStore.verify(
            os.path.join(directory, shard_dir))
        for problem in verification.problems:
            problems.append(StoreProblem(
                f"{shard_dir}/{problem.file}", problem.category,
                problem.message, offset=problem.offset))
        for name, report in verification.files.items():
            files[f"{shard_dir}/{name}"] = report
        boundary_name = entry.get("boundary_file", "")
        boundary_path = os.path.join(directory, boundary_name)
        if not os.path.exists(boundary_path):
            problems.append(StoreProblem(boundary_name, "boundary",
                                         "boundary table missing"))
            continue
        with open(boundary_path, "rb") as handle:
            raw = handle.read()
        crc = zlib.crc32(raw) & 0xFFFFFFFF
        if crc != entry.get("boundary_crc32"):
            problems.append(StoreProblem(
                boundary_name, "boundary",
                f"CRC32 {crc} != manifest {entry.get('boundary_crc32')}"))
            continue
        try:
            table = json.loads(raw)
            edges = table["edges"]
            if not isinstance(edges, list):
                raise ValueError("edges is not a list")
        except (ValueError, KeyError, TypeError) as error:
            problems.append(StoreProblem(
                boundary_name, "boundary", f"unparseable: {error}"))
            continue
        if len(edges) != entry.get("boundary_edges"):
            problems.append(StoreProblem(
                boundary_name, "boundary",
                f"{len(edges)} edges != manifest "
                f"{entry.get('boundary_edges')}"))
    if not problems:
        status = CLEAN
    elif {p.category for p in problems} <= {"indexes", "boundary", "csr"}:
        status = REPAIRABLE
    else:
        status = CORRUPT
    return StoreVerification(directory, status, problems, files)


def compact_shard_root(directory: str) -> dict[str, dict[str, int]]:
    """Compact every shard store of a shard root in place.

    Each shard is rewritten through :func:`compact_store` (per-shard
    compiled CSR and dictionary pages, boundary-aware: ghost replicas
    and the pre-seeded vocabulary survive, so post-compaction shard
    results remain bit-identical to the source store's).  Boundary
    tables and the root manifest are untouched — record ids do not
    change.  Returns per-shard size breakdowns keyed by shard
    directory name.
    """
    manifest = load_shard_manifest(directory)
    breakdowns: dict[str, dict[str, int]] = {}
    for entry in manifest.get("shards", ()):
        shard_dir = entry.get("directory", "")
        breakdowns[shard_dir] = compact_store(
            os.path.join(directory, shard_dir))
    return breakdowns


# --------------------------------------------------------------------------
# The composite read view
# --------------------------------------------------------------------------

class ShardedIndexes:
    """Index reader over all shards' disjoint per-shard indexes.

    Ghost replicas are excluded from every shard's postings, so the
    per-shard lists partition the source store's: a k-way sorted merge
    reproduces the single-store posting order exactly.
    """

    def __init__(self, shards: list[StoreGraph],
                 auto_index_keys: tuple[str, ...]) -> None:
        self._shards = shards
        self.auto_index_keys = auto_index_keys
        self._lookup_counter = None

    def attach_metrics(self, registry: Any) -> None:
        self._lookup_counter = registry.counter("index.lookups")
        for shard in self._shards:
            shard.indexes.attach_metrics(registry)

    def close(self) -> None:
        for shard in self._shards:
            shard.indexes.close()

    def _count(self) -> None:
        if self._lookup_counter is not None:
            self._lookup_counter.inc()

    def lookup(self, key: str, value: Any) -> Iterator[int]:
        self._count()
        return heapq.merge(*(shard.indexes.lookup(key, value)
                             for shard in self._shards))

    def query(self, query_string: str) -> Iterator[int]:
        self._count()
        ast = luceneql.parse_query(query_string)
        return iter(sorted(luceneql.evaluate(ast, self)))

    def label(self, label: str) -> Iterator[int]:
        self._count()
        return heapq.merge(*(shard.indexes.label(label)
                             for shard in self._shards))

    def label_count(self, label: str) -> int:
        return sum(shard.indexes.label_count(label)
                   for shard in self._shards)

    def seek_count(self, key: str, value: Any) -> int:
        return sum(shard.indexes.seek_count(key, value)
                   for shard in self._shards)

    def labels(self) -> Iterator[str]:
        names: set[str] = set()
        for shard in self._shards:
            names.update(shard.indexes.labels())
        return iter(sorted(names))

    # -- luceneql.TermSource -------------------------------------------

    def all_ids(self) -> set[int]:
        ids: set[int] = set()
        for shard in self._shards:
            ids.update(shard.indexes.all_ids())
        return ids

    def terms(self, field: str) -> Iterable[str]:
        names: set[str] = set()
        for shard in self._shards:
            names.update(shard.indexes.terms(field))
        return names

    def postings(self, field: str, term: str) -> set[int]:
        ids: set[int] = set()
        for shard in self._shards:
            ids.update(shard.indexes.postings(field, term))
        return ids


class ShardedStore:
    """All shards of a shard root, reassembled into one
    :class:`GraphView`.

    Reads route to the *owner* shard: the shard that owns a node holds
    every one of its incident edges (boundary edges are replicated to
    both sides), labels and properties, in source-store order. The
    planner statistics come from the manifest's source-store counts,
    so plans — and therefore db-hit accounting and PROFILE trees — are
    identical to the unsharded store's.
    """

    def __init__(self, root: str, page_cache: PageCache | None = None,
                 use_compiled_csr: bool = True) -> None:
        self.root = root
        self.manifest = load_shard_manifest(root)
        self.page_cache = page_cache or PageCache()
        self.shards: list[StoreGraph] = []
        for entry in self.manifest["shards"]:
            self.shards.append(GraphStore.open(
                os.path.join(root, entry["directory"]),
                self.page_cache, use_compiled_csr=use_compiled_csr))
        self._node_owner: dict[int, int] = {}
        owned_lists: list[list[int]] = []
        for index, shard in enumerate(self.shards):
            owned = sorted(set(shard.node_ids()) - shard.ghost_nodes)
            owned_lists.append(owned)
            for node_id in owned:
                self._node_owner[node_id] = index
        self._all_nodes = sorted(self._node_owner)
        edge_owner: dict[int, int] = {}
        for index, shard in enumerate(self.shards):
            for edge_id in shard.edge_ids():
                if self._node_owner[shard.edge_source(edge_id)] == index:
                    edge_owner[edge_id] = index
        self._edge_owner = edge_owner
        self._all_edges = sorted(edge_owner)
        source = self.manifest["source"]
        self.statistics = GraphStatistics.from_counts(
            source["node_count"], source["edge_count"],
            source.get("label_counts"), source.get("edge_type_counts"))
        self._indexes = ShardedIndexes(
            self.shards, tuple(source.get("auto_index_keys", ())))
        self.attach_metrics(self.page_cache.metrics)

    # -- sharding introspection (the router's pruning statistics) ------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def node_owner(self, node_id: int) -> int:
        """The shard that owns *node_id* (raises KeyError if dead)."""
        return self._node_owner[node_id]

    def shard_seek_counts(self, key: str, value: Any) -> list[int]:
        """Per-shard index selectivity of one exact-term seek."""
        return [shard.indexes.seek_count(key, value)
                for shard in self.shards]

    def shard_label_counts(self, label: str) -> list[int]:
        return [shard.indexes.label_count(label)
                for shard in self.shards]

    def path_prefixes(self) -> list[list[str]]:
        return [list(entry.get("path_prefixes", ()))
                for entry in self.manifest["shards"]]

    # -- metrics / lifecycle -------------------------------------------

    def attach_metrics(self, registry: Any) -> None:
        self.metrics = registry
        self.page_cache.attach_metrics(registry)
        for shard in self.shards:
            shard.attach_metrics(registry)
        self._indexes.attach_metrics(registry)

    def evict_caches(self) -> None:
        self.page_cache.clear()
        for shard in self.shards:
            shard.evict_caches()

    def snapshot_adjacency(self) -> None:
        for shard in self.shards:
            shard.snapshot_adjacency()

    def enable_csr(self) -> None:
        for shard in self.shards:
            shard.enable_csr()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedStore({self.root!r}, "
                f"shards={len(self.shards)}, "
                f"nodes={len(self._all_nodes)})")

    # -- GraphView: population -----------------------------------------

    def node_ids(self) -> list[int]:
        return self._all_nodes

    def edge_ids(self) -> list[int]:
        return self._all_edges

    def node_count(self) -> int:
        return self.statistics.node_count

    def edge_count(self) -> int:
        return self.statistics.edge_count

    def has_node(self, node_id: int) -> bool:
        return node_id in self._node_owner

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edge_owner

    # -- GraphView: nodes ----------------------------------------------

    def _node_shard(self, node_id: int) -> StoreGraph:
        shard = self._node_owner.get(node_id)
        if shard is None:
            # delegate to shard 0 for the canonical NodeNotFoundError
            return self.shards[0]
        return self.shards[shard]

    def node_labels(self, node_id: int) -> frozenset[str]:
        return self._node_shard(node_id).node_labels(node_id)

    def labels_of(self, node_ids: Collection[int],
                  ) -> list[frozenset[str]]:
        ordered = list(node_ids)
        out: list[Any] = [None] * len(ordered)
        groups: dict[int, list[int]] = {}
        for position, node_id in enumerate(ordered):
            shard = self._node_owner.get(node_id, 0)
            groups.setdefault(shard, []).append(position)
        for shard, positions in groups.items():
            resolved = self.shards[shard].labels_of(
                [ordered[position] for position in positions])
            for position, labels in zip(positions, resolved):
                out[position] = labels
        return out

    def node_properties(self, node_id: int) -> dict[str, Any]:
        return self._node_shard(node_id).node_properties(node_id)

    def node_property(self, node_id: int, key: str,
                      default: Any = None) -> Any:
        return self._node_shard(node_id).node_property(node_id, key,
                                                       default)

    def nodes_with_label(self, label: str) -> Iterator[int]:
        return self._indexes.label(label)

    # -- GraphView: edges ----------------------------------------------

    def _edge_shard(self, edge_id: int) -> StoreGraph:
        shard = self._edge_owner.get(edge_id)
        if shard is None:
            return self.shards[0]
        return self.shards[shard]

    def edge_source(self, edge_id: int) -> int:
        return self._edge_shard(edge_id).edge_source(edge_id)

    def edge_target(self, edge_id: int) -> int:
        return self._edge_shard(edge_id).edge_target(edge_id)

    def edge_type(self, edge_id: int) -> str:
        return self._edge_shard(edge_id).edge_type(edge_id)

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        return self._edge_shard(edge_id).edge_properties(edge_id)

    def edge_property(self, edge_id: int, key: str,
                      default: Any = None) -> Any:
        return self._edge_shard(edge_id).edge_property(edge_id, key,
                                                       default)

    # -- GraphView: adjacency ------------------------------------------
    # A node's owner shard holds every one of its incident edges, so
    # adjacency is a single-shard read and the group order (seeded
    # vocabulary) matches the source store exactly.

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        return self._node_shard(node_id).edges_of(node_id, direction,
                                                  types)

    def degree(self, node_id: int,
               direction: Direction = Direction.BOTH,
               types: Collection[str] | None = None) -> int:
        return self._node_shard(node_id).degree(node_id, direction,
                                                types)

    def resolve_neighbors(self, node_id: int,
                          edge_ids: Collection[int],
                          ) -> list[tuple[int, int]]:
        return self._node_shard(node_id).resolve_neighbors(node_id,
                                                           edge_ids)

    def neighbors_of(self, node_id: int,
                     direction: Direction = Direction.BOTH,
                     types: Collection[str] | None = None,
                     ) -> list[tuple[int, int]]:
        return self._node_shard(node_id).neighbors_of(node_id,
                                                      direction, types)

    @property
    def indexes(self) -> ShardedIndexes:
        return self._indexes


# --------------------------------------------------------------------------
# Frontier exchange
# --------------------------------------------------------------------------

@dataclasses.dataclass
class ExchangeRound:
    """One level-synchronous round of a cross-shard traversal."""

    depth: int
    frontier: int      # nodes expanded this round
    shipped: int       # frontier ids that crossed a shard boundary
    db_hits: int       # adjacency reads charged this round


@dataclasses.dataclass
class ExchangeStats:
    """Per-round accounting the router folds into PROFILE arguments."""

    rounds: list[ExchangeRound] = dataclasses.field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_shipped(self) -> int:
        return sum(entry.shipped for entry in self.rounds)

    @property
    def total_db_hits(self) -> int:
        return sum(entry.db_hits for entry in self.rounds)

    def to_dict(self) -> dict[str, Any]:
        return {"rounds": self.total_rounds,
                "shipped_ids": self.total_shipped,
                "db_hits": self.total_db_hits}


def frontier_exchange(store: ShardedStore, sources: Iterable[int],
                      types: Collection[str] | None = None,
                      direction: Direction = Direction.OUT,
                      min_hops: int = 1,
                      max_hops: int | None = None,
                      ) -> tuple[dict[int, int], ExchangeStats]:
    """Iterative frontier exchange: sharded var-length reachability.

    Level-synchronous BFS from *sources*: each round partitions the
    frontier by owning shard, reads adjacency only on owners, and
    "ships" the next frontier's foreign node ids to their owning
    shards for the following round. A visited set guarantees fixpoint
    termination on cyclic graphs and dedups boundary edges (replicated
    in both side shards) to exactly one traversal — adjacency is only
    ever read from a node's owner shard.

    Returns ``(first-visit depth by node, stats)``, with the depth map
    filtered to ``min_hops <= depth <= max_hops``.
    """
    if min_hops < 0:
        raise ValueError("min_hops must be >= 0")
    if max_hops is not None and max_hops < min_hops:
        raise ValueError("max_hops must be >= min_hops")
    visited: dict[int, int] = {}
    frontier: list[int] = []
    for node_id in sources:
        if node_id not in visited and store.has_node(node_id):
            visited[node_id] = 0
            frontier.append(node_id)
    stats = ExchangeStats()
    depth = 0
    while frontier and (max_hops is None or depth < max_hops):
        depth += 1
        db_hits = 0
        shipped = 0
        next_frontier: list[int] = []
        by_shard: dict[int, list[int]] = {}
        for node_id in frontier:
            by_shard.setdefault(store.node_owner(node_id),
                                []).append(node_id)
        for shard, nodes in sorted(by_shard.items()):
            for node_id in nodes:
                db_hits += 1
                for _edge, neighbor in store.neighbors_of(
                        node_id, direction, types):
                    if neighbor in visited:
                        continue
                    visited[neighbor] = depth
                    next_frontier.append(neighbor)
                    if store.node_owner(neighbor) != shard:
                        shipped += 1
        stats.rounds.append(ExchangeRound(depth, len(frontier),
                                          shipped, db_hits))
        frontier = next_frontier
    reachable = {node_id: node_depth
                 for node_id, node_depth in visited.items()
                 if node_depth >= min_hops
                 and (max_hops is None or node_depth <= max_hops)}
    return reachable, stats


_PREFIX_PATTERN = re.compile(r"^\s*([\w.]+)\s*:\s*([\w./\-]+)\s*$")


def parse_exact_seek(query_string: str) -> tuple[str, str] | None:
    """``key:value`` (no wildcards/operators) from a START index query,
    or None — the shape the router can prune with per-shard
    seek counts."""
    match = _PREFIX_PATTERN.match(query_string)
    if match is None or "*" in query_string or "?" in query_string:
        return None
    return match.group(1), match.group(2)


__all__ = [
    "CONTAINMENT_TYPES", "ExchangeRound", "ExchangeStats",
    "SHARD_MAGIC", "SHARD_MANIFEST_FILE", "ShardView", "ShardedIndexes",
    "ShardedStore", "SubtreeAssignment", "assign_subtrees",
    "boundary_file_name", "frontier_exchange", "is_shard_root",
    "load_shard_manifest", "parse_exact_seek", "shard_directory_name",
    "split_store", "verify_shard_root",
]
