"""Fault injection for the store's crash-consistency proofs.

Two cooperating pieces:

* :class:`FaultInjector` — handed to ``GraphStore.write(...,
  injector=...)``.  The writer calls :meth:`FaultInjector.checkpoint`
  at every durability-relevant step and opens every output file
  through :meth:`FaultInjector.open`; the injector can then crash the
  writer at an exact step (:class:`InjectedCrash`) or hand back a
  :class:`FaultyFile` that tears, flips, truncates or EIO-fails the
  write stream.
* on-disk helpers (:func:`flip_byte`, :func:`truncate_file`) — damage
  finished stores for ``GraphStore.verify`` / ``frappe fsck`` tests.

The crash-at-every-step protocol: run one write with a plain injector
(it records the checkpoint labels it saw), then re-run once per label
with ``crash_at=label`` and assert the invariant — ``GraphStore.open``
afterwards yields either the complete old store or the complete new
store, never a hybrid.

Faults raise :class:`InjectedCrash` (deriving ``BaseException``-side
``RuntimeError``, *not* ``FrappeError``) so no library ``except``
clause can accidentally swallow a simulated crash.
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from typing import Any, Iterable

#: Fault kinds understood by :class:`FaultyFile`.
TORN_WRITE = "torn"        # silently stop persisting at the Nth byte
BIT_FLIP = "bitflip"       # flip bits of one written byte at close
TRUNCATE = "truncate"      # cut the file to N bytes at close
EIO = "eio"                # raise InjectedIOError at the Nth byte

FAULT_KINDS = (TORN_WRITE, BIT_FLIP, TRUNCATE, EIO)


class InjectedCrash(RuntimeError):
    """The injector's simulated process death at a checkpoint."""

    def __init__(self, label: str) -> None:
        super().__init__(f"injected crash at checkpoint {label!r}")
        self.label = label


class InjectedIOError(OSError):
    """The injector's simulated EIO from the kernel."""

    def __init__(self, path: str, position: int) -> None:
        super().__init__(5, f"injected I/O error on {path!r} at byte "
                            f"{position}")
        self.path = path
        self.position = position


@dataclasses.dataclass
class FileFault:
    """One fault armed against a file name.

    ``at_byte`` means: for :data:`TORN_WRITE`/:data:`EIO` the stream
    position at which the fault fires, for :data:`BIT_FLIP` the offset
    of the byte to corrupt, for :data:`TRUNCATE` the final file size.
    """

    kind: str
    at_byte: int = 0
    xor_mask: int = 0xFF

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultyFile:
    """A write-mode file wrapper that misbehaves on command.

    Supports both binary and text writers (text is encoded UTF-8 before
    the fault logic, so a torn write tears mid-JSON exactly like a torn
    page would).
    """

    def __init__(self, path: str, mode: str, fault: FileFault,
                 injector: "FaultInjector | None" = None) -> None:
        self.path = path
        self.fault = fault
        self._injector = injector
        # w+b so close-time faults (bit flip) can read back what was
        # written before corrupting it
        self._handle = open(path, "w+b")
        self._position = 0
        self._tripped = False

    # -- file protocol ---------------------------------------------------------

    def write(self, data: "bytes | str") -> int:
        raw = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        claimed = len(data)  # callers see a healthy write
        fault = self.fault
        if fault.kind == EIO:
            if self._position + len(raw) > fault.at_byte and \
                    not self._tripped:
                keep = max(0, fault.at_byte - self._position)
                self._handle.write(raw[:keep])
                self._position += keep
                self._trip()
                raise InjectedIOError(self.path, fault.at_byte)
        elif fault.kind == TORN_WRITE:
            if self._tripped:
                return claimed  # everything after the tear is lost
            if self._position + len(raw) > fault.at_byte:
                keep = max(0, fault.at_byte - self._position)
                self._handle.write(raw[:keep])
                self._position += keep
                self._trip()
                return claimed
        self._handle.write(raw)
        self._position += len(raw)
        return claimed

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def tell(self) -> int:
        return self._position

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        fault = self.fault
        if fault.kind == BIT_FLIP:
            size = self._handle.tell()
            if size:
                target = min(fault.at_byte, size - 1)
                self._handle.seek(target)
                original = self._handle.read(1)
                self._handle.seek(target)
                self._handle.write(bytes(
                    [original[0] ^ (fault.xor_mask & 0xFF)]))
                self._trip()
        elif fault.kind == TRUNCATE:
            self._handle.truncate(fault.at_byte)
            self._trip()
        self._handle.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _trip(self) -> None:
        self._tripped = True
        if self._injector is not None:
            self._injector.fired.append((os.path.basename(self.path),
                                         self.fault.kind))


class FaultInjector:
    """Programmable failure source for ``GraphStore.write``.

    * ``crash_at=label`` raises :class:`InjectedCrash` when the writer
      reaches that checkpoint (labels are discovered by a fault-free
      recording run: ``injector.checkpoints`` afterwards lists every
      step in order).
    * :meth:`inject` arms a :class:`FileFault` against a file name;
      the writer's :meth:`open` calls return a :class:`FaultyFile` for
      matching paths.
    """

    def __init__(self, crash_at: str | None = None) -> None:
        self.crash_at = crash_at
        self.checkpoints: list[str] = []        # labels seen, in order
        self.fired: list[tuple[str, str]] = []  # (file name, fault kind)
        self._file_faults: dict[str, FileFault] = {}

    def inject(self, file_name: str, kind: str, at_byte: int = 0,
               xor_mask: int = 0xFF) -> "FaultInjector":
        """Arm a fault against ``file_name`` (basename match)."""
        self._file_faults[file_name] = FileFault(kind, at_byte, xor_mask)
        return self

    # -- hooks the writer calls ------------------------------------------------

    def checkpoint(self, label: str) -> None:
        self.checkpoints.append(label)
        if label == self.crash_at:
            raise InjectedCrash(label)

    def open(self, path: str, mode: str = "wb",
             **kwargs: Any) -> Any:
        fault = self._file_faults.get(os.path.basename(path))
        if fault is None or "r" in mode:
            return open(path, mode, **kwargs)
        return FaultyFile(path, mode, fault, injector=self)


# --------------------------------------------------------------------------
# on-disk damage helpers (for fsck / verify tests)
# --------------------------------------------------------------------------

def flip_byte(path: str, offset: int, xor_mask: int = 0xFF) -> int:
    """XOR one byte of an existing file; returns the offset flipped."""
    size = os.path.getsize(path)
    if not size:
        raise ValueError(f"cannot flip a byte of empty file {path!r}")
    offset = min(offset, size - 1)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ (xor_mask & 0xFF)]))
    return offset


def truncate_file(path: str, keep_bytes: int) -> int:
    """Cut a file down to ``keep_bytes``; returns the bytes removed."""
    size = os.path.getsize(path)
    keep_bytes = max(0, min(keep_bytes, size))
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return size - keep_bytes


def crc32_of(path: str, chunk_size: int = 1 << 20) -> int:
    """Streaming CRC32 of a whole file (manifest checksum helper)."""
    crc = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(chunk_size), b""):
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def corrupt_boundary_table(shard_root: str, shard: int = 0,
                           offset: int = 0, xor_mask: int = 0xFF) -> str:
    """Flip a byte of one shard's boundary-edge table.

    Damages ``boundary-NNN.json`` inside a shard root produced by
    ``frappe shard-split``; ``verify_shard_root`` must flag the store
    as *repairable* (the table is derivable from the shard stores'
    relationship records). Returns the path that was damaged.
    """
    path = os.path.join(shard_root, f"boundary-{shard:03d}.json")
    flip_byte(path, offset, xor_mask)
    return path


def checkpoint_labels(run: Iterable[str]) -> list[str]:
    """De-duplicate a recorded checkpoint stream, preserving order."""
    seen: set[str] = set()
    ordered: list[str] = []
    for label in run:
        if label not in seen:
            seen.add(label)
            ordered.append(label)
    return ordered
