"""Writing and opening the on-disk graph store.

:func:`GraphStore.write` serializes a populated
:class:`~repro.graphdb.graph.PropertyGraph` into a store directory whose
file decomposition mirrors Neo4j's (this is what paper Table 4's
per-category size breakdown measures):

====================  =======================================  ==========
file                  contents                                 Table 4 row
====================  =======================================  ==========
nodestore.db          fixed node records                       Nodes
relationshipstore.db  fixed relationship records               Relationships
adjacencystore.db     per-node, per-type edge-id groups        Relationships
propertystore.db      property blocks                          Properties
stringstore.db        interned strings and list blobs          Properties
stringstore.offsets   flat u64 offset table                    Properties
index.postings.db     auto-index and label postings            Indexes
index.dict.json       term dictionaries (term -> postings)     Indexes
metadata.json         tokens, labelsets, counts                (overhead)
====================  =======================================  ==========

:func:`GraphStore.open` returns a :class:`StoreGraph`: a read-only
:class:`~repro.graphdb.view.GraphView` whose every record access goes
through the shared page cache plus a decoded-object cache, so
``StoreGraph.evict_caches()`` produces a genuine cold start for the
Table 5 benchmark protocol.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import struct
import sys
import zlib
from typing import Any, Callable, Collection, Iterable, Iterator

from repro.errors import (EdgeNotFoundError, NodeNotFoundError,
                          StoreCorruptionError, StoreError,
                          StoreFormatError)
from repro.graphdb import luceneql
from repro.graphdb.stats import GraphStatistics
from repro.graphdb.storage import csr as csr_mod
from repro.graphdb.storage import records
from repro.graphdb.storage.pagecache import PageCache, PagedFile
from repro.graphdb.view import Direction, GraphView

MAGIC = "frappe-graph-store"
#: Format 3 added the compiled CSR adjacency segments and the string
#: dictionary page. Version-2 stores still open: they simply have no
#: compiled structures, so reads fall back to record decoding.
FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (2, FORMAT_VERSION)

METADATA_FILE = "metadata.json"
NODE_FILE = "nodestore.db"
REL_FILE = "relationshipstore.db"
ADJ_FILE = "adjacencystore.db"
PROP_FILE = "propertystore.db"
STRING_FILE = "stringstore.db"
STRING_OFFSETS_FILE = "stringstore.offsets.db"
INDEX_POSTINGS_FILE = "index.postings.db"
INDEX_DICT_FILE = "index.dict.json"
#: format >= 3: compiled CSR adjacency payloads and offset arrays
CSR_FILE = "csr.db"
CSR_OFFSETS_FILE = "csr.offsets.db"
#: format >= 3: the string dictionary page (labels, edge types,
#: property keys, high-frequency property values)
DICT_FILE = "dictionary.db"

#: Written last during a commit; its presence marks a complete store.
MANIFEST_FILE = "manifest.json"

ALL_FILES = (METADATA_FILE, NODE_FILE, REL_FILE, ADJ_FILE, PROP_FILE,
             STRING_FILE, STRING_OFFSETS_FILE, INDEX_POSTINGS_FILE,
             INDEX_DICT_FILE, CSR_FILE, CSR_OFFSETS_FILE, DICT_FILE)

#: files a version-2 (pre-compiled) store commits
LEGACY_FILES = (METADATA_FILE, NODE_FILE, REL_FILE, ADJ_FILE, PROP_FILE,
                STRING_FILE, STRING_OFFSETS_FILE, INDEX_POSTINGS_FILE,
                INDEX_DICT_FILE)

#: maximum dictionary-page entries; beyond the token vocabularies only
#: the highest-frequency property values make the cut
DICTIONARY_CAPACITY = 65536
#: a property value must repeat at least this often to be dictionarized
DICTIONARY_MIN_FREQUENCY = 2

#: Table 4 category -> store files whose sizes sum into it.
SIZE_CATEGORIES = {
    "nodes": (NODE_FILE,),
    "relationships": (REL_FILE, ADJ_FILE),
    "properties": (PROP_FILE, STRING_FILE, STRING_OFFSETS_FILE),
    "indexes": (INDEX_POSTINGS_FILE, INDEX_DICT_FILE),
    "csr": (CSR_FILE, CSR_OFFSETS_FILE),
    "dictionary": (DICT_FILE,),
}

#: fsck categories whose damage is derivable from the record stores —
#: the store still answers correctly without them ("repairable").
#: Compiled CSR segments are a projection of the adjacency +
#: relationship stores (rebuild with ``frappe compact``); the
#: dictionary page is NOT here: it holds the only copy of
#: dict-encoded property values.
DERIVABLE_CATEGORIES = frozenset({"indexes", "csr"})

#: file name -> fsck category ("metadata" for the bookkeeping files).
CATEGORY_BY_FILE = {name: category
                    for category, names in SIZE_CATEGORIES.items()
                    for name in names}
CATEGORY_BY_FILE[METADATA_FILE] = "metadata"
CATEGORY_BY_FILE[MANIFEST_FILE] = "metadata"

#: :meth:`GraphStore.verify` statuses.
CLEAN = "clean"
REPAIRABLE = "repairable"
CORRUPT = "corrupt"


@dataclasses.dataclass
class StoreProblem:
    """One defect :meth:`GraphStore.verify` found, located precisely."""

    file: str                  # store file name, e.g. nodestore.db
    category: str              # nodes|relationships|properties|indexes|metadata
    message: str
    offset: int | None = None  # byte offset when known

    def __str__(self) -> str:
        location = f" @ byte {self.offset}" if self.offset is not None \
            else ""
        return f"[{self.category}] {self.file}{location}: {self.message}"


@dataclasses.dataclass
class StoreVerification:
    """The fsck verdict for one store directory.

    ``status`` is :data:`CLEAN` (no problems), :data:`REPAIRABLE`
    (damage confined to the index files, which are derivable from the
    record stores), or :data:`CORRUPT` (primary data damaged).
    """

    directory: str
    status: str
    problems: list[StoreProblem] = dataclasses.field(default_factory=list)
    #: per-file report gathered during verification (one pass):
    #: ``{file: {"category", "bytes", "records"}}`` where ``records``
    #: is the live record/entry count when the file has one — the
    #: Table-4-style breakdown ``frappe fsck`` prints.
    files: dict[str, dict[str, Any]] = dataclasses.field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == CLEAN

    def problems_in(self, category: str) -> list[StoreProblem]:
        return [p for p in self.problems if p.category == category]

    def corrupt_files(self) -> list[str]:
        return sorted({p.file for p in self.problems})

    def summary(self) -> str:
        if not self.problems:
            return f"{self.directory}: clean"
        return (f"{self.directory}: {self.status} — "
                f"{len(self.problems)} problem(s) in "
                f"{', '.join(self.corrupt_files())}")


class _TokenTable:
    """String -> dense int token mapping, write side."""

    def __init__(self) -> None:
        self._tokens: dict[str, int] = {}

    def token(self, text: str) -> int:
        existing = self._tokens.get(text)
        if existing is not None:
            return existing
        token = len(self._tokens)
        self._tokens[text] = token
        return token

    def to_list(self) -> list[str]:
        ordered = [""] * len(self._tokens)
        for text, token in self._tokens.items():
            ordered[token] = text
        return ordered


class _StringStoreWriter:
    """Appends interned strings/blobs; produces the offsets table."""

    def __init__(self, path: str, opener: Callable[..., Any] = open) -> None:
        self._opener = opener
        self._handle = opener(path, "wb")
        self._offsets: list[int] = []
        self._position = 0
        self._interned: dict[bytes, int] = {}

    def put_bytes(self, data: bytes) -> int:
        existing = self._interned.get(data)
        if existing is not None:
            return existing
        string_id = len(self._offsets)
        run = records.encode_string_run(data)
        self._handle.write(run)
        self._offsets.append(self._position)
        self._position += len(run)
        self._interned[data] = string_id
        return string_id

    def put_string(self, text: str) -> int:
        return self.put_bytes(text.encode("utf-8"))

    def finish(self, offsets_path: str) -> None:
        self._handle.close()
        with self._opener(offsets_path, "wb") as handle:
            handle.write(struct.pack(f"<{len(self._offsets)}Q",
                                     *self._offsets))


class GraphStore:
    """Namespace for store write/open/size operations."""

    @staticmethod
    def write(graph: GraphView, directory: str, *,
              injector: Any = None,
              ghost_nodes: Collection[int] | None = None,
              vocabulary: dict[str, list[str]] | None = None,
              compiled: bool = True,
              ) -> dict[str, int]:
        """Serialize *graph* into *directory*; returns the size breakdown.

        The graph's node/edge ids become the store's record ids, so ids
        are stable across a write/open round trip.

        ``ghost_nodes`` (keyword-only, used by the shard-split writer)
        names node ids of *graph* that are boundary replicas owned by
        another shard: they are written with their full labels and
        properties so cross-boundary expansions resolve locally, but
        they are **excluded** from the index postings, the label
        counts and the metadata ``node_count`` — a shard-local label
        scan or index seek therefore yields only nodes this store
        owns, which is what keeps scattered results disjoint across
        shards.  The ids are recorded under metadata ``ghost_nodes``.

        ``vocabulary`` (keyword-only) pre-seeds the key/type/label
        token tables from a source store's metadata (``key_tokens``,
        ``type_tokens``, ``label_tokens`` lists).  Adjacency groups
        are ordered by type token, so shard stores seeded with the
        source vocabulary reproduce the source store's exact
        ``edges_of`` iteration order — the bedrock of the sharded
        result-equivalence guarantee.

        The write is **atomic at the directory level**: everything goes
        to a ``<directory>.tmp`` sibling first, every file is fsynced,
        a CRC32 :data:`MANIFEST_FILE` seals the staging directory, and
        only then is the old store displaced (``<directory>.old``) and
        the staging directory renamed into place.  A crash at any step
        leaves either the complete old store or the complete new store
        on disk — :meth:`open` runs :meth:`recover` to finish or roll
        back an interrupted swap.

        ``injector`` (keyword-only, used by the fault-injection tests)
        is a :class:`repro.graphdb.storage.faults.FaultInjector`-shaped
        object: its ``checkpoint(label)`` is called at every durability
        step and its ``open(path, mode)`` supplies the output streams.

        ``compiled`` (keyword-only) controls the format-3 compiled
        structures (CSR adjacency segments + dictionary page); pass
        ``False`` to write a legacy version-2 store — the ablation
        baseline and the compatibility-test fixture.
        """
        directory = directory.rstrip("/\\") or directory
        staging = directory + ".tmp"
        previous = directory + ".old"
        opener: Callable[..., Any] = \
            injector.open if injector is not None else open

        def checkpoint(label: str) -> None:
            if injector is not None:
                injector.checkpoint(label)

        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        GraphStore._write_contents(graph, staging, opener, checkpoint,
                                   ghost_nodes=ghost_nodes,
                                   vocabulary=vocabulary,
                                   compiled=compiled)

        written = ALL_FILES if compiled else LEGACY_FILES
        for name in written:
            _fsync_file(os.path.join(staging, name))
        checkpoint("files_synced")

        manifest: dict[str, Any] = {"version": 1, "files": {}}
        for name in written:
            path = os.path.join(staging, name)
            manifest["files"][name] = {"size": os.path.getsize(path),
                                       "crc32": _crc32_file(path)}
        manifest_path = os.path.join(staging, MANIFEST_FILE)
        with opener(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        _fsync_file(manifest_path)
        _fsync_dir(staging)
        checkpoint("manifest_written")

        if os.path.exists(previous):
            shutil.rmtree(previous)
        if os.path.exists(directory):
            os.rename(directory, previous)
            checkpoint("old_store_displaced")
        os.rename(staging, directory)
        _fsync_dir(os.path.dirname(directory) or ".")
        checkpoint("new_store_committed")
        if os.path.exists(previous):
            shutil.rmtree(previous)
        checkpoint("old_store_removed")
        return GraphStore.size_breakdown(directory)

    @staticmethod
    def _write_contents(graph: GraphView, directory: str,
                        opener: Callable[..., Any],
                        checkpoint: Callable[[str], None],
                        ghost_nodes: Collection[int] | None = None,
                        vocabulary: dict[str, list[str]] | None = None,
                        compiled: bool = True,
                        ) -> None:
        """Serialize every store file of *graph* into *directory*."""
        ghosts = frozenset(ghost_nodes or ())
        key_tokens = _TokenTable()
        type_tokens = _TokenTable()
        label_tokens = _TokenTable()
        if vocabulary is not None:
            for text in vocabulary.get("key_tokens", ()):
                key_tokens.token(text)
            for text in vocabulary.get("type_tokens", ()):
                type_tokens.token(text)
            for text in vocabulary.get("label_tokens", ()):
                label_tokens.token(text)
        labelsets: dict[frozenset[str], int] = {}
        labelset_rows: list[list[int]] = []

        # dictionary page (format 3) -----------------------------------
        # One pre-pass over properties to find the strings worth a
        # small dict id instead of a string-store run: every label,
        # edge type and property key (they repeat per record by
        # construction), plus property values that repeat at least
        # DICTIONARY_MIN_FREQUENCY times. Deterministic order: names
        # first (first-seen order of the iteration), then values by
        # descending frequency with a lexicographic tiebreak.
        dictionary_ids: dict[str, int] | None = None
        if compiled:
            names: dict[str, None] = {}
            frequencies: dict[str, int] = {}
            live_count = 0
            for node_id in graph.node_ids():
                live_count += 1
                for label in graph.node_labels(node_id):
                    names.setdefault(label, None)
                for key, value in graph.node_properties(node_id).items():
                    names.setdefault(key, None)
                    if isinstance(value, str):
                        frequencies[value] = frequencies.get(value, 0) + 1
            for edge_id in graph.edge_ids():
                names.setdefault(graph.edge_type(edge_id), None)
                for key, value in graph.edge_properties(edge_id).items():
                    names.setdefault(key, None)
                    if isinstance(value, str):
                        frequencies[value] = frequencies.get(value, 0) + 1
            dictionary_ids = {text: index
                              for index, text in enumerate(names)}
            hot = sorted(
                ((count, value) for value, count in frequencies.items()
                 if count >= DICTIONARY_MIN_FREQUENCY
                 and value not in dictionary_ids),
                key=lambda item: (-item[0], item[1]))
            for _count, value in hot:
                if len(dictionary_ids) >= DICTIONARY_CAPACITY:
                    break
                dictionary_ids[value] = len(dictionary_ids)
            dict_path = os.path.join(directory, DICT_FILE)
            with opener(dict_path, "wb") as handle:
                handle.write(records.encode_dictionary(
                    list(dictionary_ids)))
            checkpoint("dictionary_written")
        else:
            live_count = sum(1 for _ in graph.node_ids())

        strings = _StringStoreWriter(os.path.join(directory, STRING_FILE),
                                     opener)

        # property store ---------------------------------------------------
        prop_path = os.path.join(directory, PROP_FILE)
        prop_offsets_nodes: dict[int, int] = {}
        prop_offsets_edges: dict[int, int] = {}
        with opener(prop_path, "wb") as prop_handle:
            position = 0

            def write_props(properties: dict[str, Any]) -> int:
                nonlocal position
                if not properties:
                    return records.NO_OFFSET
                entries = []
                for key in sorted(properties):
                    value = properties[key]
                    key_token = key_tokens.token(key)
                    tag, payload = _encode_value(value, strings,
                                                 dictionary_ids)
                    entries.append((key_token, tag, payload))
                block = records.encode_property_block(entries)
                offset = position
                prop_handle.write(block)
                position += len(block)
                return offset

            for node_id in graph.node_ids():
                prop_offsets_nodes[node_id] = write_props(
                    graph.node_properties(node_id))
            for edge_id in graph.edge_ids():
                prop_offsets_edges[edge_id] = write_props(
                    graph.edge_properties(edge_id))

        checkpoint("properties_written")

        # adjacency store + compiled CSR segments ------------------------
        # Node ids ascend, so the same pass that serializes each node's
        # adjacency block appends its (edge id, neighbor id) runs to
        # the per-(direction, type) CSR segments — ghost replicas
        # included, exactly like their adjacency blocks, which is what
        # keeps shard-local one-hop expansion on the compiled path.
        adj_path = os.path.join(directory, ADJ_FILE)
        adjacency: dict[int, tuple[int, int]] = {}
        csr_builder = csr_mod.CsrBuilder() if compiled else None
        with opener(adj_path, "wb") as adj_handle:
            position = 0
            for node_id in graph.node_ids():
                out_groups = _group_edges(graph, node_id, Direction.OUT,
                                          type_tokens)
                in_groups = _group_edges(graph, node_id, Direction.IN,
                                         type_tokens)
                block = records.encode_adjacency(out_groups, in_groups)
                adj_handle.write(block)
                adjacency[node_id] = (position, len(block))
                position += len(block)
                if csr_builder is None:
                    continue
                for direction, groups in ((csr_mod.OUT, out_groups),
                                          (csr_mod.IN, in_groups)):
                    for token, edge_ids in groups:
                        pairs = []
                        for edge_id in edge_ids:
                            source = graph.edge_source(edge_id)
                            pairs.append(
                                (edge_id, source if source != node_id
                                 else graph.edge_target(edge_id)))
                        csr_builder.add(node_id, direction, token, pairs)

        checkpoint("adjacency_written")

        csr_descriptor = None
        if csr_builder is not None:
            csr_payload, csr_offsets, csr_descriptor = csr_builder.finish()
            with opener(os.path.join(directory, CSR_FILE), "wb") as handle:
                handle.write(csr_payload)
            with opener(os.path.join(directory, CSR_OFFSETS_FILE),
                        "wb") as handle:
                handle.write(csr_offsets)
            checkpoint("csr_written")

        # node store -----------------------------------------------------------
        high_node = max(graph.node_ids(), default=-1) + 1
        node_path = os.path.join(directory, NODE_FILE)
        with opener(node_path, "wb") as node_handle:
            hole = records.encode_node(False, 0, records.NO_OFFSET, 0, 0)
            for node_id in range(high_node):
                if not graph.has_node(node_id):
                    node_handle.write(hole)
                    continue
                labels = graph.node_labels(node_id)
                labelset_id = labelsets.get(labels)
                if labelset_id is None:
                    labelset_id = len(labelset_rows)
                    labelsets[labels] = labelset_id
                    labelset_rows.append(
                        sorted(label_tokens.token(lbl) for lbl in labels))
                adj_offset, adj_length = adjacency[node_id]
                node_handle.write(records.encode_node(
                    True, labelset_id, prop_offsets_nodes[node_id],
                    adj_offset, adj_length))

        checkpoint("nodes_written")

        # relationship store -------------------------------------------------------
        high_edge = max(graph.edge_ids(), default=-1) + 1
        rel_path = os.path.join(directory, REL_FILE)
        with opener(rel_path, "wb") as rel_handle:
            hole = records.encode_rel(False, 0, 0, 0, records.NO_OFFSET)
            for edge_id in range(high_edge):
                if not graph.has_edge(edge_id):
                    rel_handle.write(hole)
                    continue
                rel_handle.write(records.encode_rel(
                    True,
                    type_tokens.token(graph.edge_type(edge_id)),
                    graph.edge_source(edge_id),
                    graph.edge_target(edge_id),
                    prop_offsets_edges[edge_id]))

        checkpoint("relationships_written")

        strings.finish(os.path.join(directory, STRING_OFFSETS_FILE))
        checkpoint("strings_written")

        # index files ------------------------------------------------------------
        auto_keys = tuple(getattr(graph.indexes, "auto_index_keys", ()))
        _write_index_files(graph, directory, auto_keys, opener,
                           skip_nodes=ghosts)
        checkpoint("indexes_written")

        # planner statistics: cheap O(V+E) counts the reader exposes as
        # a GraphStatistics without re-scanning the store. Optional keys
        # (same format version) — older stores fall back to estimates.
        # Ghost replicas are invisible here too: a shard's label counts
        # describe only the nodes it owns.
        label_counts: dict[str, int] = {}
        for node_id in graph.node_ids():
            if node_id in ghosts:
                continue
            for label in graph.node_labels(node_id):
                label_counts[label] = label_counts.get(label, 0) + 1
        edge_type_counts: dict[str, int] = {}
        for edge_id in graph.edge_ids():
            name = graph.edge_type(edge_id)
            edge_type_counts[name] = edge_type_counts.get(name, 0) + 1

        # metadata ------------------------------------------------------------------
        metadata = {
            "magic": MAGIC,
            "version": FORMAT_VERSION if compiled else 2,
            # Count what was actually serialized rather than trusting
            # graph.node_count(): a StoreGraph source already excludes
            # its ghosts there, so compacting a shard must not subtract
            # them twice.
            "node_count": live_count - len(ghosts),
            "edge_count": graph.edge_count(),
            "high_node_id": high_node,
            "high_edge_id": high_edge,
            "key_tokens": key_tokens.to_list(),
            "type_tokens": type_tokens.to_list(),
            "label_tokens": label_tokens.to_list(),
            "labelsets": labelset_rows,
            "auto_index_keys": list(auto_keys),
            "label_counts": label_counts,
            "edge_type_counts": edge_type_counts,
        }
        if ghosts:
            metadata["ghost_nodes"] = sorted(ghosts)
        if compiled:
            metadata["csr"] = csr_descriptor
            metadata["dictionary_count"] = len(dictionary_ids or ())
        with opener(os.path.join(directory, METADATA_FILE), "w",
                    encoding="utf-8") as handle:
            json.dump(metadata, handle)
        checkpoint("metadata_written")

    @staticmethod
    def open(directory: str,
             page_cache: PageCache | None = None,
             record_cache_capacity: int | None = None,
             use_compiled_csr: bool = True) -> "StoreGraph":
        """Open a store directory as a read-only graph view.

        Runs best-effort crash :meth:`recover` first, so a directory
        left mid-swap by a crashed :meth:`write` opens as either the
        complete old or the complete new store.  Checksums are *not*
        verified here (that is :meth:`verify` / ``frappe fsck``) — open
        stays O(metadata), corruption surfaces as precise
        :class:`StoreCorruptionError`\\ s on access.
        """
        GraphStore.recover(directory)
        metadata_path = os.path.join(directory, METADATA_FILE)
        if not os.path.exists(metadata_path):
            raise StoreError(f"not a graph store: {directory!r}")
        with open(metadata_path, encoding="utf-8") as handle:
            metadata = json.load(handle)
        if metadata.get("magic") != MAGIC:
            raise StoreFormatError(f"bad magic in {metadata_path!r}")
        if metadata.get("version") not in SUPPORTED_VERSIONS:
            raise StoreFormatError(
                f"store version {metadata.get('version')} unsupported "
                f"(expected one of {SUPPORTED_VERSIONS})")
        return StoreGraph(directory, metadata,
                          page_cache or PageCache(),
                          record_cache_capacity=record_cache_capacity,
                          use_compiled_csr=use_compiled_csr)

    @staticmethod
    def recover(directory: str) -> str | None:
        """Finish or roll back an interrupted :meth:`write` swap.

        Returns ``"rolled_forward"`` (the sealed staging directory
        became the store), ``"rolled_back"`` (the displaced old store
        was restored), or ``None`` (nothing to do).  Stale siblings of
        a complete store are removed either way.  Never raises for an
        ordinary non-store directory.
        """
        directory = directory.rstrip("/\\") or directory
        staging = directory + ".tmp"
        previous = directory + ".old"
        action = None
        if not GraphStore._commit_complete(directory):
            if GraphStore._commit_complete(staging):
                # crash after the manifest sealed staging: roll forward
                if os.path.exists(directory):
                    shutil.rmtree(directory)
                os.rename(staging, directory)
                action = "rolled_forward"
            elif GraphStore._commit_complete(previous):
                # crash before staging was sealed: roll back
                if os.path.exists(directory):
                    shutil.rmtree(directory)
                os.rename(previous, directory)
                action = "rolled_back"
        if GraphStore._commit_complete(directory):
            for leftover in (staging, previous):
                if os.path.exists(leftover):
                    shutil.rmtree(leftover, ignore_errors=True)
        return action

    @staticmethod
    def _commit_complete(directory: str) -> bool:
        """Did a write commit fully here?

        The manifest is written last, so its presence seals the commit
        — but a torn manifest write must not count, so it also has to
        parse.  (Its checksums are *not* validated here; that is
        :meth:`verify`'s job.)
        """
        if not (os.path.isdir(directory) and os.path.exists(
                os.path.join(directory, METADATA_FILE))):
            return False
        try:
            with open(os.path.join(directory, MANIFEST_FILE),
                      encoding="utf-8") as handle:
                return isinstance(json.load(handle), dict)
        except (OSError, ValueError):
            return False

    @staticmethod
    def verify(directory: str) -> StoreVerification:
        """Full integrity check: checksums plus record-level validation.

        Classifies the store as :data:`CLEAN`, :data:`REPAIRABLE`
        (problems confined to the derivable index files) or
        :data:`CORRUPT`, with one :class:`StoreProblem` per defect
        naming the exact file, Table 4 category and (where known) byte
        offset.  This is the engine behind ``frappe fsck``.
        """
        problems: list[StoreProblem] = []
        metadata_path = os.path.join(directory, METADATA_FILE)
        if not os.path.exists(metadata_path):
            problems.append(StoreProblem(
                METADATA_FILE, "metadata",
                "missing metadata — not a graph store"))
            return StoreVerification(directory, CORRUPT, problems)
        try:
            with open(metadata_path, encoding="utf-8") as handle:
                metadata = json.load(handle)
            if not isinstance(metadata, dict):
                raise ValueError("metadata is not a JSON object")
        except (OSError, ValueError) as error:
            problems.append(StoreProblem(
                METADATA_FILE, "metadata", f"unreadable: {error}"))
            return StoreVerification(directory, CORRUPT, problems)
        if metadata.get("magic") != MAGIC:
            problems.append(StoreProblem(METADATA_FILE, "metadata",
                                         "bad magic"))
        if metadata.get("version") not in SUPPORTED_VERSIONS:
            problems.append(StoreProblem(
                METADATA_FILE, "metadata",
                f"unsupported version {metadata.get('version')!r}"))
        if problems:
            return StoreVerification(directory, CORRUPT, problems)

        problems.extend(GraphStore._verify_checksums(directory))
        record_problems, files = GraphStore._verify_records(
            directory, metadata)
        problems.extend(record_problems)

        # only problems confined to files rebuildable from the primary
        # records (indexes, compiled CSR segments) are repairable
        if not problems:
            status = CLEAN
        elif {p.category for p in problems} <= DERIVABLE_CATEGORIES:
            status = REPAIRABLE
        else:
            status = CORRUPT
        return StoreVerification(directory, status, problems, files)

    @staticmethod
    def _verify_checksums(directory: str) -> list[StoreProblem]:
        """Compare every store file against the CRC32 manifest."""
        problems: list[StoreProblem] = []
        manifest_path = os.path.join(directory, MANIFEST_FILE)
        if not os.path.exists(manifest_path):
            problems.append(StoreProblem(
                MANIFEST_FILE, "metadata", "missing checksum manifest "
                "(store was not committed by an atomic write)"))
            return problems
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            files = dict(manifest["files"])
        except (OSError, ValueError, KeyError, TypeError) as error:
            problems.append(StoreProblem(
                MANIFEST_FILE, "metadata",
                f"unreadable manifest: {error}"))
            return problems
        for name, entry in sorted(files.items()):
            category = CATEGORY_BY_FILE.get(name, "metadata")
            path = os.path.join(directory, name)
            if not os.path.exists(path):
                problems.append(StoreProblem(
                    name, category, "file missing"))
                continue
            size = os.path.getsize(path)
            if size != entry.get("size"):
                problems.append(StoreProblem(
                    name, category,
                    f"size {size} != manifest size {entry.get('size')}",
                    offset=min(size, entry.get("size") or 0)))
            elif _crc32_file(path) != entry.get("crc32"):
                problems.append(StoreProblem(
                    name, category, "CRC32 checksum mismatch"))
        return problems

    @staticmethod
    def _verify_records(directory: str, metadata: dict[str, Any],
                        ) -> tuple[list[StoreProblem],
                                   dict[str, dict[str, Any]]]:
        """Record-level validation of every store file's structure.

        Returns (problems, per-file report); the report carries each
        file's Table 4 category, on-disk byte size and — where the
        format defines one — live record/entry count, all gathered in
        the same pass the validation makes anyway.
        """
        problems: list[StoreProblem] = []
        files: dict[str, dict[str, Any]] = {}

        def report(name: str, record_count: int | None = None) -> None:
            path = os.path.join(directory, name)
            if not os.path.exists(path):
                return
            files[name] = {
                "category": CATEGORY_BY_FILE.get(name, "metadata"),
                "bytes": os.path.getsize(path),
                "records": record_count,
            }

        def load(name: str) -> bytes | None:
            path = os.path.join(directory, name)
            try:
                with open(path, "rb") as handle:
                    return handle.read()
            except OSError as error:
                problems.append(StoreProblem(
                    name, CATEGORY_BY_FILE.get(name, "metadata"),
                    f"unreadable: {error}"))
                return None

        try:
            high_node = int(metadata["high_node_id"])
            high_edge = int(metadata["high_edge_id"])
            labelset_count = len(metadata["labelsets"])
            key_count = len(metadata["key_tokens"])
            type_count = len(metadata["type_tokens"])
        except (KeyError, TypeError, ValueError) as error:
            problems.append(StoreProblem(
                METADATA_FILE, "metadata", f"malformed metadata: {error}"))
            return problems, files

        nodes_raw = load(NODE_FILE)
        rels_raw = load(REL_FILE)
        adj_raw = load(ADJ_FILE)
        props_raw = load(PROP_FILE)
        strings_raw = load(STRING_FILE)
        offsets_raw = load(STRING_OFFSETS_FILE)

        # string dictionary page (format 3): primary data — every
        # TAG_DICT_STRING payload resolves here, so structural damage
        # is CORRUPT, not repairable
        dict_count = None
        if metadata.get("version", FORMAT_VERSION) >= 3 or \
                os.path.exists(os.path.join(directory, DICT_FILE)):
            dict_raw = load(DICT_FILE)
            if dict_raw is not None:
                try:
                    dict_count = len(records.decode_dictionary(dict_raw))
                except StoreFormatError as error:
                    problems.append(StoreProblem(
                        DICT_FILE, "dictionary", str(error)))
            declared = metadata.get("dictionary_count")
            if dict_count is not None and declared is not None and \
                    dict_count != declared:
                problems.append(StoreProblem(
                    DICT_FILE, "dictionary",
                    f"{dict_count} entries on disk, metadata says "
                    f"{declared}"))

        string_count = None
        if offsets_raw is not None:
            if len(offsets_raw) % 8:
                problems.append(StoreProblem(
                    STRING_OFFSETS_FILE, "properties",
                    f"size {len(offsets_raw)} not a u64 multiple",
                    offset=len(offsets_raw) - len(offsets_raw) % 8))
            else:
                string_count = len(offsets_raw) // 8
                offsets = struct.unpack(f"<{string_count}Q", offsets_raw)
                if strings_raw is not None:
                    for index, offset in enumerate(offsets):
                        if offset + 4 > len(strings_raw):
                            problems.append(StoreProblem(
                                STRING_FILE, "properties",
                                f"string {index} starts past EOF",
                                offset=offset))
                            continue
                        length = records.decode_string_run_length(
                            strings_raw[offset:offset + 4])
                        if offset + 4 + length > len(strings_raw):
                            problems.append(StoreProblem(
                                STRING_FILE, "properties",
                                f"string {index} run truncated",
                                offset=offset))

        checked_blocks: set[int] = set()

        def check_props(offset: int, owner: str) -> None:
            if offset == records.NO_OFFSET or props_raw is None or \
                    offset in checked_blocks:
                return
            checked_blocks.add(offset)
            if offset + 2 > len(props_raw):
                problems.append(StoreProblem(
                    PROP_FILE, "properties",
                    f"property block of {owner} starts past EOF",
                    offset=offset))
                return
            count = records.decode_property_block_header(
                props_raw[offset:offset + 2])
            end = offset + records.property_block_size(count)
            if end > len(props_raw):
                problems.append(StoreProblem(
                    PROP_FILE, "properties",
                    f"property block of {owner} truncated "
                    f"(needs {end - len(props_raw)} more bytes)",
                    offset=offset))
                return
            for key_token, tag, payload in records.decode_property_entries(
                    props_raw[offset:end], count):
                if key_token >= key_count:
                    problems.append(StoreProblem(
                        PROP_FILE, "properties",
                        f"unknown key token {key_token} in block of "
                        f"{owner}", offset=offset))
                if tag in (records.TAG_STRING, records.TAG_LIST,
                           records.TAG_BIGINT):
                    if string_count is not None and payload >= string_count:
                        problems.append(StoreProblem(
                            PROP_FILE, "properties",
                            f"bad string id {payload} in block of "
                            f"{owner}", offset=offset))
                elif tag == records.TAG_DICT_STRING:
                    if dict_count is not None and payload >= dict_count:
                        problems.append(StoreProblem(
                            PROP_FILE, "properties",
                            f"bad dictionary id {payload} in block of "
                            f"{owner}", offset=offset))
                elif tag not in (records.TAG_INT, records.TAG_FLOAT,
                                 records.TAG_BOOL):
                    problems.append(StoreProblem(
                        PROP_FILE, "properties",
                        f"unknown property tag {tag} in block of "
                        f"{owner}", offset=offset))

        live_nodes = 0
        if nodes_raw is not None:
            expected = high_node * records.NODE_RECORD_SIZE
            if len(nodes_raw) != expected:
                problems.append(StoreProblem(
                    NODE_FILE, "nodes",
                    f"size {len(nodes_raw)} != {expected} "
                    f"({high_node} records)",
                    offset=min(len(nodes_raw), expected)))
            for node_id in range(
                    min(high_node,
                        len(nodes_raw) // records.NODE_RECORD_SIZE)):
                at = node_id * records.NODE_RECORD_SIZE
                record = records.decode_node(
                    nodes_raw[at:at + records.NODE_RECORD_SIZE])
                if not record[0]:
                    continue
                live_nodes += 1
                if record[1] >= labelset_count:
                    problems.append(StoreProblem(
                        NODE_FILE, "nodes",
                        f"node {node_id} has unknown labelset "
                        f"{record[1]}", offset=at))
                check_props(record[2], f"node {node_id}")
                if adj_raw is not None and \
                        record[3] + record[4] > len(adj_raw):
                    problems.append(StoreProblem(
                        ADJ_FILE, "relationships",
                        f"adjacency block of node {node_id} past EOF",
                        offset=record[3]))
            # ghost replicas (shard stores) are live records that do
            # not count toward the owned node_count
            expected_live = (metadata.get("node_count") or 0) + \
                len(metadata.get("ghost_nodes", ()))
            if len(nodes_raw) == expected and live_nodes != expected_live:
                problems.append(StoreProblem(
                    METADATA_FILE, "metadata",
                    f"metadata node_count {metadata.get('node_count')} "
                    f"(+{len(metadata.get('ghost_nodes', ()))} ghosts) "
                    f"!= {live_nodes} live records"))

        live_edges = 0
        if rels_raw is not None:
            expected = high_edge * records.REL_RECORD_SIZE
            if len(rels_raw) != expected:
                problems.append(StoreProblem(
                    REL_FILE, "relationships",
                    f"size {len(rels_raw)} != {expected} "
                    f"({high_edge} records)",
                    offset=min(len(rels_raw), expected)))
            for edge_id in range(
                    min(high_edge,
                        len(rels_raw) // records.REL_RECORD_SIZE)):
                at = edge_id * records.REL_RECORD_SIZE
                record = records.decode_rel(
                    rels_raw[at:at + records.REL_RECORD_SIZE])
                if not record[0]:
                    continue
                live_edges += 1
                if record[1] >= type_count:
                    problems.append(StoreProblem(
                        REL_FILE, "relationships",
                        f"edge {edge_id} has unknown type token "
                        f"{record[1]}", offset=at))
                if record[2] >= high_node or record[3] >= high_node:
                    problems.append(StoreProblem(
                        REL_FILE, "relationships",
                        f"edge {edge_id} endpoints ({record[2]}, "
                        f"{record[3]}) outside node space", offset=at))
                check_props(record[4], f"edge {edge_id}")
            if len(rels_raw) == expected and \
                    live_edges != metadata.get("edge_count"):
                problems.append(StoreProblem(
                    METADATA_FILE, "metadata",
                    f"metadata edge_count {metadata.get('edge_count')} "
                    f"!= {live_edges} live records"))

        # index files: dictionary must parse, postings must be in range
        postings_size = None
        postings_path = os.path.join(directory, INDEX_POSTINGS_FILE)
        if os.path.exists(postings_path):
            postings_size = os.path.getsize(postings_path)
        else:
            problems.append(StoreProblem(INDEX_POSTINGS_FILE, "indexes",
                                         "file missing"))
        dict_path = os.path.join(directory, INDEX_DICT_FILE)
        try:
            with open(dict_path, encoding="utf-8") as handle:
                dictionary = json.load(handle)
            entries: list[tuple[int, int]] = []
            for terms in dictionary.get("auto", {}).values():
                entries.extend(tuple(entry) for entry in terms.values())
            entries.extend(tuple(entry) for entry in
                           dictionary.get("labels", {}).values())
            if postings_size is not None:
                for offset, count in entries:
                    if offset + 8 * count > postings_size:
                        problems.append(StoreProblem(
                            INDEX_POSTINGS_FILE, "indexes",
                            f"postings run of {count} ids past EOF",
                            offset=offset))
        except (OSError, ValueError, TypeError) as error:
            problems.append(StoreProblem(
                INDEX_DICT_FILE, "indexes",
                f"unreadable dictionary: {error}"))
            entries = []

        # compiled CSR segments (format 3): fully derivable from the
        # record stores, so damage here is REPAIRABLE (frappe compact
        # rebuilds them)
        csr_descriptor = metadata.get("csr")
        csr_edges = None
        csr_segments = None
        if csr_descriptor is not None:
            if not isinstance(csr_descriptor, dict):
                problems.append(StoreProblem(
                    CSR_FILE, "csr", "malformed CSR descriptor"))
            else:
                csr_payload = load(CSR_FILE)
                csr_offsets = load(CSR_OFFSETS_FILE)
                if csr_payload is not None and csr_offsets is not None:
                    try:
                        for kind, message in csr_mod.verify_descriptor(
                                csr_descriptor, csr_payload, csr_offsets,
                                high_node, high_edge):
                            problems.append(StoreProblem(
                                CSR_FILE if kind == "payload"
                                else CSR_OFFSETS_FILE, "csr", message))
                    except (KeyError, TypeError, ValueError) as error:
                        problems.append(StoreProblem(
                            CSR_FILE, "csr",
                            f"malformed CSR descriptor: {error}"))
                segments = csr_descriptor.get("segments")
                if isinstance(segments, list):
                    csr_segments = len(segments)
                    try:
                        csr_edges = sum(entry["edges"]
                                        for entry in segments)
                    except (KeyError, TypeError):
                        csr_edges = None

        report(NODE_FILE, live_nodes if nodes_raw is not None else None)
        report(REL_FILE, live_edges if rels_raw is not None else None)
        report(ADJ_FILE, live_nodes if nodes_raw is not None else None)
        report(PROP_FILE, len(checked_blocks))
        report(STRING_FILE, string_count)
        report(STRING_OFFSETS_FILE, string_count)
        report(INDEX_DICT_FILE, len(entries))
        report(INDEX_POSTINGS_FILE,
               sum(count for _offset, count in entries))
        report(DICT_FILE, dict_count)
        report(CSR_FILE, csr_edges)
        report(CSR_OFFSETS_FILE, csr_segments)
        report(METADATA_FILE)
        report(MANIFEST_FILE)
        return problems, files

    @staticmethod
    def size_breakdown(directory: str) -> dict[str, int]:
        """Per-category byte sizes (the Table 4 rows) plus ``total``."""
        breakdown = {}
        for category, files in SIZE_CATEGORIES.items():
            breakdown[category] = sum(
                os.path.getsize(os.path.join(directory, name))
                for name in files if os.path.exists(
                    os.path.join(directory, name)))
        breakdown["total"] = sum(
            os.path.getsize(os.path.join(directory, name))
            for name in ALL_FILES
            if os.path.exists(os.path.join(directory, name)))
        return breakdown


def compact_store(directory: str,
                  page_cache: PageCache | None = None) -> dict[str, int]:
    """Rewrite *directory* in the current compiled store format.

    Opens the store through the record-decode path (never trusting any
    existing compiled segments — this is also the ``fsck`` repair for
    damaged CSR files), then rewrites it in place with the same atomic
    staging/rename protocol as any other :meth:`GraphStore.write`.
    Token tables are re-seeded from the source metadata so record ids,
    token ids and iteration order all survive the round trip.  Works on
    both legacy (format 2) and already-compiled stores; shard stores
    keep their ghost replicas.  Returns the post-compaction size
    breakdown.
    """
    store = GraphStore.open(directory, page_cache=page_cache,
                            use_compiled_csr=False)
    try:
        GraphStore.write(store, directory,
                         ghost_nodes=store.ghost_nodes,
                         vocabulary={
                             "key_tokens": store._key_tokens,
                             "type_tokens": store._type_tokens,
                             "label_tokens": store._label_tokens,
                         },
                         compiled=True)
    finally:
        store.close()
    return GraphStore.size_breakdown(directory)


def _group_edges(graph: GraphView, node_id: int, direction: Direction,
                 type_tokens: _TokenTable) -> list[tuple[int, list[int]]]:
    groups: dict[int, list[int]] = {}
    for edge_id in graph.edges_of(node_id, direction):
        token = type_tokens.token(graph.edge_type(edge_id))
        groups.setdefault(token, []).append(edge_id)
    return sorted(groups.items())


def _encode_value(value: Any,
                  strings: _StringStoreWriter,
                  dictionary: dict[str, int] | None = None,
                  ) -> tuple[int, int]:
    if isinstance(value, bool):
        return records.TAG_BOOL, 1 if value else 0
    if isinstance(value, int):
        if records.fits_inline_int(value):
            return records.TAG_INT, records.pack_int(value)
        return records.TAG_BIGINT, strings.put_string(str(value))
    if isinstance(value, float):
        return records.TAG_FLOAT, records.pack_float(value)
    if isinstance(value, str):
        if dictionary is not None:
            dict_id = dictionary.get(value)
            if dict_id is not None:
                return records.TAG_DICT_STRING, dict_id
        return records.TAG_STRING, strings.put_string(value)
    if isinstance(value, (list, tuple)):
        return records.TAG_LIST, strings.put_bytes(
            records.encode_list_blob(list(value)))
    raise StoreFormatError(f"unstorable property value {value!r}")


def _fsync_file(path: str) -> None:
    """Force one file's contents to stable storage."""
    descriptor = os.open(path, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def _fsync_dir(path: str) -> None:
    """Force a directory entry to stable storage (best effort)."""
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass  # some filesystems refuse directory fsync
    finally:
        os.close(descriptor)


def _crc32_file(path: str, chunk_size: int = 1 << 20) -> int:
    """Streaming CRC32 of a whole file (for the manifest)."""
    crc = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(chunk_size), b""):
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _write_index_files(graph: GraphView, directory: str,
                       auto_keys: tuple[str, ...],
                       opener: Callable[..., Any] = open,
                       skip_nodes: frozenset[int] = frozenset()) -> None:
    """Serialize auto-index and label postings.

    Dictionary (term -> postings offset/count) goes to JSON and is
    loaded eagerly at open; the postings themselves are read through
    the page cache, so cold index lookups fault pages like Lucene
    segment reads would.

    ``skip_nodes`` (the shard writer's ghost replicas) are left out of
    every posting list, so index seeks and label scans return only the
    nodes this store owns.
    """
    postings_path = os.path.join(directory, INDEX_POSTINGS_FILE)
    dictionary: dict[str, Any] = {"auto": {}, "labels": {}}
    with opener(postings_path, "wb") as handle:
        position = 0

        def write_postings(ids: list[int]) -> tuple[int, int]:
            nonlocal position
            ids = sorted(ids)
            handle.write(struct.pack(f"<{len(ids)}Q", *ids))
            entry = (position, len(ids))
            position += 8 * len(ids)
            return entry

        auto_terms: dict[str, dict[str, list[int]]] = {
            key: {} for key in auto_keys}
        labels: dict[str, list[int]] = {}
        for node_id in graph.node_ids():
            if node_id in skip_nodes:
                continue
            for label in graph.node_labels(node_id):
                labels.setdefault(label, []).append(node_id)
            properties = graph.node_properties(node_id)
            for key in auto_keys:
                value = properties.get(key)
                if value is None:
                    continue
                term = _index_term(value)
                auto_terms[key].setdefault(term, []).append(node_id)
        for key, term_dict in auto_terms.items():
            dictionary["auto"][key] = {
                term: write_postings(ids)
                for term, ids in sorted(term_dict.items())}
        dictionary["labels"] = {
            label: write_postings(ids)
            for label, ids in sorted(labels.items())}
    with opener(os.path.join(directory, INDEX_DICT_FILE), "w",
                encoding="utf-8") as handle:
        json.dump(dictionary, handle)


def _index_term(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value).lower()


class StoreIndexes:
    """Disk-backed index reader (implements the IndexReader protocol)."""

    def __init__(self, dictionary: dict[str, Any],
                 postings: PagedFile, node_universe_size: int) -> None:
        self._auto: dict[str, dict[str, tuple[int, int]]] = {
            key: {term: tuple(entry) for term, entry in terms.items()}
            for key, terms in dictionary.get("auto", {}).items()}
        self._labels: dict[str, tuple[int, int]] = {
            label: tuple(entry)
            for label, entry in dictionary.get("labels", {}).items()}
        self._postings = postings
        self._universe_size = node_universe_size
        self._all_ids_cache: set[int] | None = None
        self.attach_metrics(postings.cache.metrics)

    def attach_metrics(self, registry: Any) -> None:
        """(Re)bind index counters to a metrics registry."""
        self._lookup_counter = registry.counter("index.lookups")
        self._postings_counter = registry.counter(
            "index.postings_read")

    @property
    def auto_index_keys(self) -> tuple[str, ...]:
        return tuple(self._auto)

    @property
    def postings_file(self) -> PagedFile:
        """The paged postings file (owned by these indexes)."""
        return self._postings

    def close(self) -> None:
        """Release the postings file; safe to call twice."""
        self._postings.close()

    def evict_caches(self) -> None:
        """Drop the memoized all-ids universe so the next full-index
        scan re-reads postings (keeps cold runs honest)."""
        self._all_ids_cache = None

    def lookup(self, key: str, value: Any) -> Iterator[int]:
        self._lookup_counter.inc()
        entry = self._auto.get(key.lower(), {}).get(_index_term(value))
        if entry is None:
            return iter(())
        return iter(self._read_postings(entry))

    def query(self, query_string: str) -> Iterator[int]:
        self._lookup_counter.inc()
        ast = luceneql.parse_query(query_string)
        return iter(sorted(luceneql.evaluate(ast, self)))

    def label(self, label: str) -> Iterator[int]:
        self._lookup_counter.inc()
        entry = self._labels.get(label)
        if entry is None:
            return iter(())
        return iter(self._read_postings(entry))

    def label_count(self, label: str) -> int:
        entry = self._labels.get(label)
        return entry[1] if entry else 0

    def seek_count(self, key: str, value: Any) -> int:
        """Posting-list length for an exact term — the planner's index
        selectivity estimate. Reads only the dictionary entry, never
        the postings file."""
        entry = self._auto.get(key.lower(), {}).get(_index_term(value))
        return entry[1] if entry else 0

    def labels(self) -> Iterator[str]:
        return iter(sorted(self._labels))

    # -- luceneql.TermSource -------------------------------------------------

    def all_ids(self) -> set[int]:
        if self._all_ids_cache is None:
            ids: set[int] = set()
            for entry in self._labels.values():
                ids.update(self._read_postings(entry))
            self._all_ids_cache = ids
        return set(self._all_ids_cache)

    def terms(self, field: str) -> Iterable[str]:
        return self._auto.get(field.lower(), {}).keys()

    def postings(self, field: str, term: str) -> set[int]:
        entry = self._auto.get(field.lower(), {}).get(term)
        if entry is None:
            return set()
        return set(self._read_postings(entry))

    # -- internals ----------------------------------------------------------------

    def _read_postings(self, entry: tuple[int, int]) -> tuple[int, ...]:
        offset, count = entry
        if not count:
            return ()
        self._postings_counter.inc(count)
        raw = self._postings.read(offset, 8 * count)
        return struct.unpack(f"<{count}Q", raw)


#: default per-cache bound of the decoded-object caches (entries, not
#: bytes): five caches × 256 Ki entries keeps whole-graph scans of the
#: evaluation kernels resident while bounding worst-case memory
DEFAULT_RECORD_CACHE_CAPACITY = 262_144


class _FIFOCache(dict):
    """Insertion-order-bounded dict for decoded records.

    FIFO rather than LRU on purpose: get stays a plain dict lookup (no
    move-to-end bookkeeping on the hottest path in the codebase), and
    sequential scans — the access pattern that overflows the cache in
    the first place — gain nothing from recency ordering. A dict
    subclass so existing callers (and benchmarks that poke
    ``_node_cache`` directly) keep their ``clear()``/``len()`` idioms.
    """

    __slots__ = ("capacity",)

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self.capacity = capacity

    def __setitem__(self, key: Any, value: Any) -> None:
        if key not in self and len(self) >= self.capacity:
            del self[next(iter(self))]
        super().__setitem__(key, value)


class StoreGraph:
    """Read-only :class:`GraphView` over a store directory.

    Two cache layers sit between queries and the files:

    * the shared :class:`PageCache` (raw 8 KiB pages), and
    * per-record decoded-object caches (Neo4j 2.x's "object cache").

    :meth:`evict_caches` clears both, which is the cold-cache lever the
    Table 5 protocol pulls between runs.
    """

    def __init__(self, directory: str, metadata: dict[str, Any],
                 page_cache: PageCache,
                 record_cache_capacity: int | None = None,
                 use_compiled_csr: bool = True) -> None:
        if record_cache_capacity is None:
            record_cache_capacity = DEFAULT_RECORD_CACHE_CAPACITY
        if record_cache_capacity < 1:
            raise ValueError("record cache needs at least one entry")
        self.directory = directory
        self.page_cache = page_cache
        self._node_count = metadata["node_count"]
        self._edge_count = metadata["edge_count"]
        self._high_node = metadata["high_node_id"]
        self._high_edge = metadata["high_edge_id"]
        # intern the token tables once at open: every decoded record
        # resolves its key/type/label tokens to these exact string
        # objects, so equality checks on the hot path are pointer
        # comparisons and repeated decodes share one string each
        self._key_tokens: list[str] = [
            sys.intern(token) for token in metadata["key_tokens"]]
        self._type_tokens: list[str] = [
            sys.intern(token) for token in metadata["type_tokens"]]
        self._label_tokens: list[str] = [
            sys.intern(token) for token in metadata["label_tokens"]]
        self._labelsets = [
            frozenset(self._label_tokens[token] for token in row)
            for row in metadata["labelsets"]]
        self._type_token_by_name = {
            name: token for token, name in enumerate(self._type_tokens)}
        #: boundary replicas owned by another shard (empty for a
        #: normal store); live records excluded from indexes/counts
        self.ghost_nodes: frozenset[int] = frozenset(
            metadata.get("ghost_nodes", ()))

        def paged(name: str) -> PagedFile:
            return PagedFile(os.path.join(directory, name), page_cache)

        self._nodes = paged(NODE_FILE)
        self._rels = paged(REL_FILE)
        self._adj = paged(ADJ_FILE)
        self._props = paged(PROP_FILE)
        self._strings = paged(STRING_FILE)
        with open(os.path.join(directory, STRING_OFFSETS_FILE),
                  "rb") as handle:
            raw = handle.read()
        self._string_offsets = struct.unpack(f"<{len(raw) // 8}Q", raw)
        with open(os.path.join(directory, INDEX_DICT_FILE),
                  encoding="utf-8") as handle:
            dictionary = json.load(handle)
        self._indexes = StoreIndexes(dictionary, paged(INDEX_POSTINGS_FILE),
                                     self._node_count)
        # compiled read structures (format 3): per-(direction, type)
        # CSR adjacency segments and the string dictionary page.
        # Anything short of a fully consistent descriptor/file pair
        # falls back to the record-decode path silently — a damaged or
        # absent compiled layer costs speed, never answers.
        self.format_version: int = metadata.get("version", FORMAT_VERSION)
        self._csr_reader: csr_mod.CsrReader | None = None
        self._csr_payload_file: PagedFile | None = None
        self._csr_offsets_file: PagedFile | None = None
        csr_descriptor = metadata.get("csr")
        if use_compiled_csr and csr_descriptor is not None:
            payload_path = os.path.join(directory, CSR_FILE)
            offsets_path = os.path.join(directory, CSR_OFFSETS_FILE)
            try:
                sizes_ok = (
                    os.path.getsize(payload_path)
                    == csr_descriptor["payload_bytes"]
                    and os.path.getsize(offsets_path)
                    == csr_descriptor["offsets_bytes"])
            except (OSError, KeyError, TypeError):
                sizes_ok = False
            if sizes_ok:
                self._csr_payload_file = paged(CSR_FILE)
                self._csr_offsets_file = paged(CSR_OFFSETS_FILE)
                self._csr_reader = csr_mod.CsrReader(
                    self._csr_payload_file, self._csr_offsets_file,
                    csr_descriptor)
        self._dict_file: PagedFile | None = None
        self._dict_buffer: Any = None
        self._dict_values: list[str | None] | None = None
        self._dictionary_count = int(metadata.get("dictionary_count", 0))
        if os.path.exists(os.path.join(directory, DICT_FILE)):
            self._dict_file = paged(DICT_FILE)
        # decoded-object caches, bounded so a scan of a store larger
        # than memory cannot pin every decoded record at once
        capacity = record_cache_capacity
        self._node_cache: dict[int, tuple[bool, int, int, int, int]] = \
            _FIFOCache(capacity)
        self._rel_cache: dict[int, tuple[bool, int, int, int, int]] = \
            _FIFOCache(capacity)
        self._adj_cache: dict[int, tuple[Any, Any]] = _FIFOCache(capacity)
        self._node_prop_cache: dict[int, dict[str, Any]] = \
            _FIFOCache(capacity)
        self._edge_prop_cache: dict[int, dict[str, Any]] = \
            _FIFOCache(capacity)
        # resolved (edge, other_end) adjacency lists keyed on
        # (node, direction, types); the store is immutable once open,
        # so these survive across queries (the batch executor's
        # expansion kernels are pure lookups on a warm store)
        self._neighbor_pair_cache: dict[
            tuple[int, Any, tuple[str, ...] | None],
            list[tuple[int, int]]] = _FIFOCache(capacity)
        # (source, target, type token) per edge, filled as a side
        # effect of compiled CSR run decodes: an OUT run pins the edge
        # as (node, neighbor), an IN run as (neighbor, node), so
        # other_end/edge_type resolution never touches the rel record
        # for edges reached through compiled adjacency.  Strictly a
        # fast path — a miss falls through to _live_rel, and the
        # record path never writes it, so the two paths stay
        # row-identical.
        self._endpoint_memo: dict[int, tuple[int, int, int]] = \
            _FIFOCache(capacity)
        #: CSR-style adjacency snapshot (see snapshot_adjacency /
        #: enable_csr); _csr_complete marks an eager full build, where
        #: a missing key means a dead node rather than not-yet-decoded
        self._csr: dict[int, tuple[Any, Any]] | None = None
        self._csr_complete = False
        # planner statistics: exact counts when the writer recorded
        # them, estimates (uniform edge-type split) for older stores.
        label_counts = metadata.get("label_counts")
        if label_counts is None:
            label_counts = {label: self._indexes.label_count(label)
                            for label in self._indexes.labels()}
        edge_type_counts = metadata.get("edge_type_counts")
        if edge_type_counts is None and self._type_tokens:
            uniform = self._edge_count / len(self._type_tokens)
            edge_type_counts = {name: int(uniform)
                                for name in self._type_tokens}
        self.statistics = GraphStatistics.from_counts(
            self._node_count, self._edge_count,
            label_counts, edge_type_counts)
        # degree summaries fall out of the CSR segment descriptors for
        # free (valid regardless of whether the compiled reader is in
        # use — they describe the same adjacency either way)
        if isinstance(csr_descriptor, dict):
            for entry in csr_descriptor.get("segments", ()):
                try:
                    self.statistics.set_degree_stats(
                        "out" if entry["direction"] == csr_mod.OUT
                        else "in",
                        self._type_tokens[entry["token"]],
                        entry["edges"], entry["max_degree"],
                        entry["degree_hist"])
                except (KeyError, TypeError, IndexError):
                    continue
        self.attach_metrics(page_cache.metrics)

    def attach_metrics(self, registry: Any) -> None:
        """(Re)bind the whole read path — page cache, index reader and
        the decoded-object caches — to one metrics registry, so a
        single snapshot covers every layer (``Frappe.counters()``)."""
        self.metrics = registry
        self.page_cache.attach_metrics(registry)
        self._indexes.attach_metrics(registry)
        self._object_hit_counter = registry.counter(
            "store.object_cache.hits")
        self._fault_counter = registry.counter("store.record_faults")

    # -- cache control ----------------------------------------------------------

    def evict_caches(self) -> None:
        """Drop pages and decoded objects: the next access is cold."""
        self.page_cache.clear()
        self._node_cache.clear()
        self._rel_cache.clear()
        self._adj_cache.clear()
        self._node_prop_cache.clear()
        self._edge_prop_cache.clear()
        self._neighbor_pair_cache.clear()
        self._endpoint_memo.clear()
        # a lazily-enabled CSR empties but stays enabled (entries are
        # rebuilt on access, so cold runs stay honest); an eager
        # snapshot drops entirely, as it always did
        self._csr = {} if self._csr is not None \
            and not self._csr_complete else None
        self._csr_complete = False
        # compiled-layer caches: memoized index universe, CSR offset
        # views, decoded dictionary entries
        self._indexes.evict_caches()
        if self._csr_reader is not None:
            self._csr_reader.evict()
        self._dict_buffer = None
        self._dict_values = None

    def snapshot_adjacency(self) -> None:
        """Materialize the whole adjacency store into one in-memory
        snapshot (Neo4j would call this a relationship-group cache;
        the layout is CSR in spirit: every node's typed edge groups,
        decoded once, contiguous per node).

        Subsequent ``edges_of``/``degree`` calls skip the record and
        page layers entirely. :meth:`evict_caches` drops the snapshot,
        so cold-run measurements stay honest. Opt-in because it holds
        O(E) memory.
        """
        snapshot: dict[int, tuple[Any, Any]] = {}
        for node_id in range(self._high_node):
            record = self._node_record(node_id)
            if not record[0]:
                continue
            block = self._adj.read(record[3], record[4])
            snapshot[node_id] = records.decode_adjacency(block)
        self._csr = snapshot
        self._csr_complete = True

    def enable_csr(self) -> None:
        """Promote the CSR snapshot to the default adjacency format,
        built *lazily*: each node's edge groups are decoded on first
        access and kept for the store's lifetime (unbounded, unlike
        the FIFO ``_adj_cache``), so batch execution gets
        snapshot-speed adjacency on warm nodes without
        :meth:`snapshot_adjacency`'s eager full scan on cold stores.

        Idempotent; a no-op when an eager snapshot is already in
        place. The engine calls this per batch query (cheap after the
        first), so eviction for a cold benchmark run re-enables on the
        next query.
        """
        if self._csr is None:
            self._csr = {}
            self._csr_complete = False

    def close(self) -> None:
        """Release every underlying file; safe to call twice."""
        for paged_file in (self._nodes, self._rels, self._adj,
                           self._props, self._strings,
                           self._csr_payload_file,
                           self._csr_offsets_file, self._dict_file):
            if paged_file is not None:
                paged_file.close()
        if self._csr_reader is not None:
            self._csr_reader.evict()
        self._dict_buffer = None
        self._dict_values = None
        self._indexes.close()

    def __enter__(self) -> "StoreGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- GraphView: population ----------------------------------------------------

    def node_ids(self) -> Iterable[int]:
        for node_id in range(self._high_node):
            if self._node_record(node_id)[0]:
                yield node_id

    def edge_ids(self) -> Iterable[int]:
        for edge_id in range(self._high_edge):
            if self._rel_record(edge_id)[0]:
                yield edge_id

    def node_count(self) -> int:
        return self._node_count

    def edge_count(self) -> int:
        return self._edge_count

    def has_node(self, node_id: int) -> bool:
        if not 0 <= node_id < self._high_node:
            return False
        return self._node_record(node_id)[0]

    def has_edge(self, edge_id: int) -> bool:
        if not 0 <= edge_id < self._high_edge:
            return False
        return self._rel_record(edge_id)[0]

    # -- GraphView: nodes -----------------------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        record = self._live_node(node_id)
        return self._labelsets[record[1]]

    def labels_of(self, node_ids: Collection[int],
                  ) -> list[frozenset[str]]:
        """Bulk :meth:`node_labels` over the node-record cache: one
        dict probe per node and a single counter update per run,
        instead of the three-deep call chain per node. Used by the
        batch executor's label-filtering expansion kernel."""
        cache = self._node_cache
        labelsets = self._labelsets
        out = []
        hits = 0
        for node_id in node_ids:
            record = cache.get(node_id)
            if record is None:
                record = self._live_node(node_id)  # counts its fault
            else:
                hits += 1
                if not record[0]:
                    raise NodeNotFoundError(node_id)
            out.append(labelsets[record[1]])
        if hits:
            self._object_hit_counter.inc(hits)
        return out

    def node_properties(self, node_id: int) -> dict[str, Any]:
        cached = self._node_prop_cache.get(node_id)
        if cached is None:
            self._fault_counter.inc()
            record = self._live_node(node_id)
            cached = self._read_props(self._props, record[2])
            self._node_prop_cache[node_id] = cached
        else:
            self._object_hit_counter.inc()
        return dict(cached)

    def node_property(self, node_id: int, key: str,
                      default: Any = None) -> Any:
        cached = self._node_prop_cache.get(node_id)
        if cached is None:
            self._fault_counter.inc()
            record = self._live_node(node_id)
            cached = self._read_props(self._props, record[2])
            self._node_prop_cache[node_id] = cached
        else:
            self._object_hit_counter.inc()
        return cached.get(key, default)

    def nodes_with_label(self, label: str) -> Iterator[int]:
        return self._indexes.label(label)

    # -- GraphView: edges -------------------------------------------------------------

    def edge_source(self, edge_id: int) -> int:
        ends = self._endpoint_memo.get(edge_id)
        if ends is not None:
            return ends[0]
        return self._live_rel(edge_id)[2]

    def edge_target(self, edge_id: int) -> int:
        ends = self._endpoint_memo.get(edge_id)
        if ends is not None:
            return ends[1]
        return self._live_rel(edge_id)[3]

    def edge_type(self, edge_id: int) -> str:
        ends = self._endpoint_memo.get(edge_id)
        if ends is not None:
            return self._type_tokens[ends[2]]
        return self._type_tokens[self._live_rel(edge_id)[1]]

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        cached = self._edge_prop_cache.get(edge_id)
        if cached is None:
            self._fault_counter.inc()
            record = self._live_rel(edge_id)
            cached = self._read_props(self._props, record[4])
            self._edge_prop_cache[edge_id] = cached
        else:
            self._object_hit_counter.inc()
        return dict(cached)

    def edge_property(self, edge_id: int, key: str,
                      default: Any = None) -> Any:
        cached = self._edge_prop_cache.get(edge_id)
        if cached is None:
            self._fault_counter.inc()
            record = self._live_rel(edge_id)
            cached = self._read_props(self._props, record[4])
            self._edge_prop_cache[edge_id] = cached
        else:
            self._object_hit_counter.inc()
        return cached.get(key, default)

    # -- GraphView: adjacency ------------------------------------------------------------

    def edges_of(self, node_id: int,
                 direction: Direction = Direction.BOTH,
                 types: Collection[str] | None = None) -> Iterator[int]:
        if types is not None and self._csr_reader is not None:
            # typed scan over a compiled store: only the wanted
            # (direction, type) CSR runs are decoded — the full
            # adjacency block is never assembled.  neighbors_of yields
            # pairs in exactly this method's group order (out then in,
            # tokens ascending), so the edge-id sequence is identical.
            for edge_id, _neighbor in self.neighbors_of(
                    node_id, direction, types):
                yield edge_id
            return
        out_groups, in_groups = self._adjacency(node_id)
        wanted = None
        if types is not None:
            wanted = {self._type_token_by_name[name] for name in types
                      if name in self._type_token_by_name}
        if direction in (Direction.OUT, Direction.BOTH):
            for token, edge_ids in out_groups:
                if wanted is None or token in wanted:
                    yield from edge_ids
        if direction in (Direction.IN, Direction.BOTH):
            for token, edge_ids in in_groups:
                if wanted is None or token in wanted:
                    yield from edge_ids

    def degree(self, node_id: int,
               direction: Direction = Direction.BOTH,
               types: Collection[str] | None = None) -> int:
        if types is not None and self._csr_reader is not None:
            return len(self.neighbors_of(node_id, direction, types))
        out_groups, in_groups = self._adjacency(node_id)
        wanted = None
        if types is not None:
            wanted = {self._type_token_by_name[name] for name in types
                      if name in self._type_token_by_name}
        total = 0
        if direction in (Direction.OUT, Direction.BOTH):
            total += sum(len(edge_ids) for token, edge_ids in out_groups
                         if wanted is None or token in wanted)
        if direction in (Direction.IN, Direction.BOTH):
            total += sum(len(edge_ids) for token, edge_ids in in_groups
                         if wanted is None or token in wanted)
        return total

    def resolve_neighbors(self, node_id: int,
                          edge_ids: Collection[int],
                          ) -> list[tuple[int, int]]:
        """Bulk ``(edge_id, other_end)`` over the rel-record cache.

        The batch executor hands back whole adjacency lists, so the
        common case is every record already decoded: one cache lookup
        per edge and a single counter update for the run, instead of
        the ``edge_source``/``edge_target`` call pair (each a
        ``_live_rel`` liveness re-check) per edge. Edges are known
        live — they came from this store's own adjacency groups."""
        cache = self._rel_cache
        pairs = []
        hits = 0
        for edge_id in edge_ids:
            record = cache.get(edge_id)
            if record is None:
                record = self._rel_record(edge_id)  # counts its fault
            else:
                hits += 1
            source = record[2]
            pairs.append((edge_id,
                          source if source != node_id else record[3]))
        if hits:
            self._object_hit_counter.inc(hits)
        return pairs

    def neighbors_of(self, node_id: int,
                     direction: Direction = Direction.BOTH,
                     types: Collection[str] | None = None,
                     ) -> list[tuple[int, int]]:
        """Resolved ``(edge_id, other_end)`` adjacency, cached across
        queries.

        The store is immutable once open, so the resolved list for a
        (node, direction, types) key never goes stale; traversal-heavy
        queries over a warm store degrade to one dict lookup per
        visited node. Logical-access accounting (db-hits) stays with
        the caller — the executor charges per query, cached or not —
        while the object-cache counters here keep reflecting physical
        decode work."""
        if types is not None and not isinstance(types, tuple):
            types = tuple(types)
        key = (node_id, direction, types)
        cached = self._neighbor_pair_cache.get(key)
        if cached is not None:
            self._object_hit_counter.inc()
            return cached
        reader = self._csr_reader
        if reader is not None:
            # compiled fast path: the (edge, neighbor) pairs are already
            # materialized in the CSR runs — no node record, adjacency
            # block or rel-record decode per edge.  Group order (out
            # then in, tokens ascending) matches edges_of ∘
            # resolve_neighbors exactly.
            self._fault_counter.inc()
            wanted = None
            if types is not None:
                wanted = {self._type_token_by_name[name] for name in types
                          if name in self._type_token_by_name}
            memo = self._endpoint_memo
            pairs = []
            if direction in (Direction.OUT, Direction.BOTH):
                for token, run in reader.groups(node_id, csr_mod.OUT,
                                                wanted):
                    for edge_id, neighbor in run:
                        memo[edge_id] = (node_id, neighbor, token)
                    pairs.extend(run)
            if direction in (Direction.IN, Direction.BOTH):
                for token, run in reader.groups(node_id, csr_mod.IN,
                                                wanted):
                    for edge_id, neighbor in run:
                        memo[edge_id] = (neighbor, node_id, token)
                    pairs.extend(run)
            if not pairs:
                self._live_node(node_id)  # dead ids must still raise
        else:
            pairs = self.resolve_neighbors(
                node_id, tuple(self.edges_of(node_id, direction, types)))
        self._neighbor_pair_cache[key] = pairs
        return pairs

    @property
    def indexes(self) -> StoreIndexes:
        return self._indexes

    def __repr__(self) -> str:
        return (f"StoreGraph({self.directory!r}, nodes={self._node_count}, "
                f"edges={self._edge_count})")

    # -- internals -------------------------------------------------------------------

    def _node_record(self, node_id: int) -> tuple[bool, int, int, int, int]:
        cached = self._node_cache.get(node_id)
        if cached is None:
            self._fault_counter.inc()
            raw = self._nodes.read(node_id * records.NODE_RECORD_SIZE,
                                   records.NODE_RECORD_SIZE)
            cached = records.decode_node(raw)
            self._node_cache[node_id] = cached
        else:
            self._object_hit_counter.inc()
        return cached

    def _rel_record(self, edge_id: int) -> tuple[bool, int, int, int, int]:
        cached = self._rel_cache.get(edge_id)
        if cached is None:
            self._fault_counter.inc()
            raw = self._rels.read(edge_id * records.REL_RECORD_SIZE,
                                  records.REL_RECORD_SIZE)
            cached = records.decode_rel(raw)
            self._rel_cache[edge_id] = cached
        else:
            self._object_hit_counter.inc()
        return cached

    def _live_node(self, node_id: int) -> tuple[bool, int, int, int, int]:
        if not 0 <= node_id < self._high_node:
            raise NodeNotFoundError(node_id)
        record = self._node_record(node_id)
        if not record[0]:
            raise NodeNotFoundError(node_id)
        return record

    def _live_rel(self, edge_id: int) -> tuple[bool, int, int, int, int]:
        if not 0 <= edge_id < self._high_edge:
            raise EdgeNotFoundError(edge_id)
        record = self._rel_record(edge_id)
        if not record[0]:
            raise EdgeNotFoundError(edge_id)
        return record

    def _adjacency(self, node_id: int) -> tuple[Any, Any]:
        csr = self._csr
        if csr is not None:
            groups = csr.get(node_id)
            if groups is not None:
                return groups
            if self._csr_complete:
                # eager snapshot: absence means the node is dead
                raise NodeNotFoundError(node_id)
            # lazy CSR: decode once, keep for the store's lifetime
            self._fault_counter.inc()
            groups = self._decode_adjacency_groups(node_id)
            csr[node_id] = groups
            return groups
        cached = self._adj_cache.get(node_id)
        if cached is None:
            self._fault_counter.inc()
            cached = self._decode_adjacency_groups(node_id)
            self._adj_cache[node_id] = cached
        else:
            self._object_hit_counter.inc()
        return cached

    def _decode_adjacency_groups(self, node_id: int) -> tuple[Any, Any]:
        """Physically materialize one node's (out, in) edge groups.

        Always the record path — one contiguous adjacency-block decode
        is cheaper than reassembling every (direction, type) group
        from per-segment CSR runs, so full-adjacency requests stay on
        it even for compiled stores.  The compiled CSR serves the
        *selective* reads (typed ``edges_of``/``neighbors_of``), where
        decoding only the wanted runs wins.
        """
        record = self._live_node(node_id)
        block = self._adj.read(record[3], record[4])
        return records.decode_adjacency(block)

    def _read_props(self, paged: PagedFile, offset: int) -> dict[str, Any]:
        if offset == records.NO_OFFSET:
            return {}
        if offset < 0 or offset + 2 > paged.size:
            raise StoreCorruptionError(
                "truncated property block header", file=paged.path,
                offset=offset)
        count = records.decode_property_block_header(
            paged.read(offset, 2))
        block_size = records.property_block_size(count)
        if offset + block_size > paged.size:
            raise StoreCorruptionError(
                f"property block of {count} entries overruns the file "
                f"(needs {offset + block_size - paged.size} more bytes)",
                file=paged.path, offset=offset)
        block = paged.read(offset, block_size)
        properties = {}
        for key_token, tag, payload in records.decode_property_entries(
                block, count):
            properties[self._key_tokens[key_token]] = \
                self._decode_value(tag, payload)
        return properties

    def _decode_value(self, tag: int, payload: int) -> Any:
        if tag == records.TAG_INT:
            return records.unpack_int(payload)
        if tag == records.TAG_FLOAT:
            return records.unpack_float(payload)
        if tag == records.TAG_BOOL:
            return bool(payload)
        if tag == records.TAG_STRING:
            # str(buffer, encoding) accepts both bytes and the mmap
            # page cache's zero-copy memoryview slices
            return str(self._read_string(payload), "utf-8")
        if tag == records.TAG_LIST:
            return records.decode_list_blob(self._read_string(payload))
        if tag == records.TAG_BIGINT:
            return int(str(self._read_string(payload), "ascii"))
        if tag == records.TAG_DICT_STRING:
            return self._dict_value(payload)
        raise StoreFormatError(f"unknown property tag {tag}")

    def _dict_value(self, dict_id: int) -> str:
        """Resolve a dictionary id to its interned string.

        The dictionary page is primary data (records carrying
        ``TAG_DICT_STRING`` have no other copy of the value), so a
        missing or short file is corruption, not a fallback case.
        Entries decode lazily — one slice off the (mmap'd) page — and
        intern so repeated decodes share one string object, exactly
        like the token tables.
        """
        values = self._dict_values
        if values is None:
            if self._dict_file is None:
                raise StoreCorruptionError(
                    "record references the string dictionary but "
                    f"{DICT_FILE} is missing",
                    file=os.path.join(self.directory, DICT_FILE))
            buffer = self._dict_file.read(0, self._dict_file.size)
            try:
                count = records.decode_dictionary_count(buffer)
            except StoreFormatError as error:
                raise StoreCorruptionError(
                    str(error), file=self._dict_file.path) from error
            values = self._dict_values = [None] * count
            self._dict_buffer = buffer
        if not 0 <= dict_id < len(values):
            raise StoreCorruptionError(
                f"dictionary id {dict_id} out of range "
                f"(dictionary has {len(values)} entries)",
                file=self._dict_file.path if self._dict_file else None)
        value = values[dict_id]
        if value is None:
            try:
                value = sys.intern(records.decode_dictionary_entry(
                    self._dict_buffer, dict_id))
            except StoreFormatError as error:
                raise StoreCorruptionError(
                    str(error), file=self._dict_file.path) from error
            values[dict_id] = value
        return value

    def _read_string(self, string_id: int) -> "bytes | memoryview":
        if not 0 <= string_id < len(self._string_offsets):
            raise StoreFormatError(f"bad string id {string_id}")
        offset = self._string_offsets[string_id]
        header = self._strings.read(offset, 4)
        length = records.decode_string_run_length(header)
        if not length:
            return b""
        return self._strings.read(offset + 4, length)
