"""Binary record codecs for the store files.

Record layouts (little endian):

Node record — fixed ``NODE_RECORD_SIZE`` bytes, indexed by node id::

    u8   in_use          1 = live, 0 = hole
    u32  labelset_id     index into the metadata labelset table
    u64  prop_offset     offset of the property block, NO_OFFSET if none
    u64  adj_offset      offset of the adjacency block
    u32  adj_length      adjacency block length in bytes

Relationship record — fixed ``REL_RECORD_SIZE`` bytes, indexed by id::

    u8   in_use
    u32  type_token      edge type, as a token id
    u64  source          source node id
    u64  target          target node id
    u64  prop_offset     property block offset, NO_OFFSET if none

Adjacency block (variable, in the adjacency store)::

    u16  out_group_count
    u16  in_group_count
    groups (out first, then in), each:
        u32  type_token
        u32  edge_count
        u64  edge ids × edge_count

Grouping edges by type per node is the dense-node optimization that
makes type-filtered Cypher expansions (``-[:calls]->``) read only the
relevant postings — Neo4j 2.1's relationship groups play the same role.

Property block (variable, in the property store)::

    u16  count
    entries × count:
        u32  key_token
        u8   tag          (TAG_* below)
        u64  payload      int bits / float bits / bool / string id / blob id

Strings and list blobs live in the string store as length-prefixed
byte runs; the offset table is a separate flat ``u64`` array file.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro.errors import StoreFormatError

NODE_STRUCT = struct.Struct("<BIQQI")
NODE_RECORD_SIZE = 32  # padded
REL_STRUCT = struct.Struct("<BIQQQ")
REL_RECORD_SIZE = 32  # padded

NO_OFFSET = 0xFFFFFFFFFFFFFFFF

TAG_INT = 0
TAG_FLOAT = 1
TAG_BOOL = 2
TAG_STRING = 3
TAG_LIST = 4
TAG_BIGINT = 5

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_GROUP_HEADER = struct.Struct("<II")
_ADJ_HEADER = struct.Struct("<HH")
_PROP_HEADER = struct.Struct("<H")
_PROP_ENTRY = struct.Struct("<IBQ")


# --------------------------------------------------------------------------
# Node records
# --------------------------------------------------------------------------

def encode_node(in_use: bool, labelset_id: int, prop_offset: int,
                adj_offset: int, adj_length: int) -> bytes:
    packed = NODE_STRUCT.pack(1 if in_use else 0, labelset_id, prop_offset,
                              adj_offset, adj_length)
    return packed.ljust(NODE_RECORD_SIZE, b"\x00")


def decode_node(record: bytes) -> tuple[bool, int, int, int, int]:
    if len(record) < NODE_STRUCT.size:
        raise StoreFormatError(
            f"node record truncated: {len(record)} bytes")
    in_use, labelset_id, prop_offset, adj_offset, adj_length = \
        NODE_STRUCT.unpack_from(record)
    return bool(in_use), labelset_id, prop_offset, adj_offset, adj_length


# --------------------------------------------------------------------------
# Relationship records
# --------------------------------------------------------------------------

def encode_rel(in_use: bool, type_token: int, source: int, target: int,
               prop_offset: int) -> bytes:
    packed = REL_STRUCT.pack(1 if in_use else 0, type_token, source, target,
                             prop_offset)
    return packed.ljust(REL_RECORD_SIZE, b"\x00")


def decode_rel(record: bytes) -> tuple[bool, int, int, int, int]:
    if len(record) < REL_STRUCT.size:
        raise StoreFormatError(f"rel record truncated: {len(record)} bytes")
    in_use, type_token, source, target, prop_offset = \
        REL_STRUCT.unpack_from(record)
    return bool(in_use), type_token, source, target, prop_offset


# --------------------------------------------------------------------------
# Adjacency blocks
# --------------------------------------------------------------------------

def encode_adjacency(out_groups: Sequence[tuple[int, Sequence[int]]],
                     in_groups: Sequence[tuple[int, Sequence[int]]]) -> bytes:
    """Encode per-type edge-id groups; see the module docstring."""
    parts = [_ADJ_HEADER.pack(len(out_groups), len(in_groups))]
    for type_token, edge_ids in list(out_groups) + list(in_groups):
        parts.append(_GROUP_HEADER.pack(type_token, len(edge_ids)))
        parts.append(struct.pack(f"<{len(edge_ids)}Q", *edge_ids))
    return b"".join(parts)


def decode_adjacency(block: bytes) -> tuple[
        list[tuple[int, tuple[int, ...]]], list[tuple[int, tuple[int, ...]]]]:
    """Decode to (out_groups, in_groups) of (type_token, edge ids)."""
    if len(block) < _ADJ_HEADER.size:
        raise StoreFormatError("adjacency block truncated")
    out_count, in_count = _ADJ_HEADER.unpack_from(block)
    offset = _ADJ_HEADER.size
    groups: list[tuple[int, tuple[int, ...]]] = []
    for _ in range(out_count + in_count):
        if offset + _GROUP_HEADER.size > len(block):
            raise StoreFormatError("adjacency group header truncated")
        type_token, edge_count = _GROUP_HEADER.unpack_from(block, offset)
        offset += _GROUP_HEADER.size
        end = offset + 8 * edge_count
        if end > len(block):
            raise StoreFormatError("adjacency group postings truncated")
        edge_ids = struct.unpack_from(f"<{edge_count}Q", block, offset)
        offset += 8 * edge_count
        groups.append((type_token, edge_ids))
    return groups[:out_count], groups[out_count:]


# --------------------------------------------------------------------------
# Property blocks
# --------------------------------------------------------------------------

def encode_property_block(
        entries: Sequence[tuple[int, int, int]]) -> bytes:
    """Encode (key_token, tag, payload) triples into one block."""
    parts = [_PROP_HEADER.pack(len(entries))]
    for key_token, tag, payload in entries:
        parts.append(_PROP_ENTRY.pack(key_token, tag, payload))
    return b"".join(parts)


def property_block_size(entry_count: int) -> int:
    return _PROP_HEADER.size + entry_count * _PROP_ENTRY.size


def decode_property_block_header(block: bytes) -> int:
    if len(block) < _PROP_HEADER.size:
        raise StoreFormatError("property block truncated")
    return _PROP_HEADER.unpack_from(block)[0]


def decode_property_entries(block: bytes,
                            count: int) -> list[tuple[int, int, int]]:
    entries = []
    offset = _PROP_HEADER.size
    for _ in range(count):
        if offset + _PROP_ENTRY.size > len(block):
            raise StoreFormatError("property entry truncated")
        entries.append(_PROP_ENTRY.unpack_from(block, offset))
        offset += _PROP_ENTRY.size
    return entries


# --------------------------------------------------------------------------
# Scalar payload packing
# --------------------------------------------------------------------------

def pack_int(value: int) -> int:
    """Signed 64-bit int reinterpreted as the u64 payload."""
    return _U64.unpack(_I64.pack(value))[0]


def unpack_int(payload: int) -> int:
    return _I64.unpack(_U64.pack(payload))[0]


def fits_inline_int(value: int) -> bool:
    return _I64_MIN <= value <= _I64_MAX


def pack_float(value: float) -> int:
    return _U64.unpack(_F64.pack(value))[0]


def unpack_float(payload: int) -> float:
    return _F64.unpack(_U64.pack(payload))[0]


# --------------------------------------------------------------------------
# List blob encoding (stored in the string store as a byte run)
# --------------------------------------------------------------------------

_LIST_KIND_INT = 0
_LIST_KIND_FLOAT = 1
_LIST_KIND_BOOL = 2
_LIST_KIND_STR = 3


def encode_list_blob(values: Sequence[Any]) -> bytes:
    """Serialize a homogeneous scalar list to a self-describing blob."""
    if not values:
        return struct.pack("<BI", _LIST_KIND_INT, 0)
    first = values[0]
    if isinstance(first, bool):
        body = struct.pack(f"<{len(values)}B",
                           *(1 if item else 0 for item in values))
        kind = _LIST_KIND_BOOL
    elif isinstance(first, int):
        body = struct.pack(f"<{len(values)}q", *values)
        kind = _LIST_KIND_INT
    elif isinstance(first, float):
        body = struct.pack(f"<{len(values)}d", *values)
        kind = _LIST_KIND_FLOAT
    else:
        encoded = [str(item).encode("utf-8") for item in values]
        body = b"".join(struct.pack("<I", len(item)) + item
                        for item in encoded)
        kind = _LIST_KIND_STR
    return struct.pack("<BI", kind, len(values)) + body


def decode_list_blob(blob: bytes) -> list[Any]:
    if len(blob) < 5:
        raise StoreFormatError("list blob truncated")
    kind, count = struct.unpack_from("<BI", blob)
    offset = 5
    if kind == _LIST_KIND_BOOL:
        raw = struct.unpack_from(f"<{count}B", blob, offset)
        return [bool(item) for item in raw]
    if kind == _LIST_KIND_INT:
        return list(struct.unpack_from(f"<{count}q", blob, offset))
    if kind == _LIST_KIND_FLOAT:
        return list(struct.unpack_from(f"<{count}d", blob, offset))
    if kind == _LIST_KIND_STR:
        values = []
        for _ in range(count):
            (length,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            # str(buffer, encoding) accepts bytes and memoryview alike
            # (mmap-mode page cache reads are zero-copy views)
            values.append(str(blob[offset:offset + length], "utf-8"))
            offset += length
        return values
    raise StoreFormatError(f"unknown list blob kind {kind}")


# --------------------------------------------------------------------------
# String store runs
# --------------------------------------------------------------------------

def encode_string_run(data: bytes) -> bytes:
    return struct.pack("<I", len(data)) + data


def decode_string_run_length(header: bytes) -> int:
    if len(header) < 4:
        raise StoreFormatError("string run header truncated")
    return struct.unpack_from("<I", header)[0]
