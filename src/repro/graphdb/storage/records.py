"""Binary record codecs for the store files.

Record layouts (little endian):

Node record — fixed ``NODE_RECORD_SIZE`` bytes, indexed by node id::

    u8   in_use          1 = live, 0 = hole
    u32  labelset_id     index into the metadata labelset table
    u64  prop_offset     offset of the property block, NO_OFFSET if none
    u64  adj_offset      offset of the adjacency block
    u32  adj_length      adjacency block length in bytes

Relationship record — fixed ``REL_RECORD_SIZE`` bytes, indexed by id::

    u8   in_use
    u32  type_token      edge type, as a token id
    u64  source          source node id
    u64  target          target node id
    u64  prop_offset     property block offset, NO_OFFSET if none

Adjacency block (variable, in the adjacency store)::

    u16  out_group_count
    u16  in_group_count
    groups (out first, then in), each:
        u32  type_token
        u32  edge_count
        u64  edge ids × edge_count

Grouping edges by type per node is the dense-node optimization that
makes type-filtered Cypher expansions (``-[:calls]->``) read only the
relevant postings — Neo4j 2.1's relationship groups play the same role.

Property block (variable, in the property store)::

    u16  count
    entries × count:
        u32  key_token
        u8   tag          (TAG_* below)
        u64  payload      int bits / float bits / bool / string id / blob id

Strings and list blobs live in the string store as length-prefixed
byte runs; the offset table is a separate flat ``u64`` array file.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro.errors import StoreFormatError

NODE_STRUCT = struct.Struct("<BIQQI")
NODE_RECORD_SIZE = 32  # padded
REL_STRUCT = struct.Struct("<BIQQQ")
REL_RECORD_SIZE = 32  # padded

NO_OFFSET = 0xFFFFFFFFFFFFFFFF

TAG_INT = 0
TAG_FLOAT = 1
TAG_BOOL = 2
TAG_STRING = 3
TAG_LIST = 4
TAG_BIGINT = 5
TAG_DICT_STRING = 6  # payload = id into the store dictionary page

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_GROUP_HEADER = struct.Struct("<II")
_ADJ_HEADER = struct.Struct("<HH")
_PROP_HEADER = struct.Struct("<H")
_PROP_ENTRY = struct.Struct("<IBQ")


# --------------------------------------------------------------------------
# Node records
# --------------------------------------------------------------------------

def encode_node(in_use: bool, labelset_id: int, prop_offset: int,
                adj_offset: int, adj_length: int) -> bytes:
    packed = NODE_STRUCT.pack(1 if in_use else 0, labelset_id, prop_offset,
                              adj_offset, adj_length)
    return packed.ljust(NODE_RECORD_SIZE, b"\x00")


def decode_node(record: bytes) -> tuple[bool, int, int, int, int]:
    if len(record) < NODE_STRUCT.size:
        raise StoreFormatError(
            f"node record truncated: {len(record)} bytes")
    in_use, labelset_id, prop_offset, adj_offset, adj_length = \
        NODE_STRUCT.unpack_from(record)
    return bool(in_use), labelset_id, prop_offset, adj_offset, adj_length


# --------------------------------------------------------------------------
# Relationship records
# --------------------------------------------------------------------------

def encode_rel(in_use: bool, type_token: int, source: int, target: int,
               prop_offset: int) -> bytes:
    packed = REL_STRUCT.pack(1 if in_use else 0, type_token, source, target,
                             prop_offset)
    return packed.ljust(REL_RECORD_SIZE, b"\x00")


def decode_rel(record: bytes) -> tuple[bool, int, int, int, int]:
    if len(record) < REL_STRUCT.size:
        raise StoreFormatError(f"rel record truncated: {len(record)} bytes")
    in_use, type_token, source, target, prop_offset = \
        REL_STRUCT.unpack_from(record)
    return bool(in_use), type_token, source, target, prop_offset


# --------------------------------------------------------------------------
# Adjacency blocks
# --------------------------------------------------------------------------

def encode_adjacency(out_groups: Sequence[tuple[int, Sequence[int]]],
                     in_groups: Sequence[tuple[int, Sequence[int]]]) -> bytes:
    """Encode per-type edge-id groups; see the module docstring."""
    parts = [_ADJ_HEADER.pack(len(out_groups), len(in_groups))]
    for type_token, edge_ids in list(out_groups) + list(in_groups):
        parts.append(_GROUP_HEADER.pack(type_token, len(edge_ids)))
        parts.append(struct.pack(f"<{len(edge_ids)}Q", *edge_ids))
    return b"".join(parts)


def decode_adjacency(block: bytes) -> tuple[
        list[tuple[int, tuple[int, ...]]], list[tuple[int, tuple[int, ...]]]]:
    """Decode to (out_groups, in_groups) of (type_token, edge ids)."""
    if len(block) < _ADJ_HEADER.size:
        raise StoreFormatError("adjacency block truncated")
    out_count, in_count = _ADJ_HEADER.unpack_from(block)
    offset = _ADJ_HEADER.size
    groups: list[tuple[int, tuple[int, ...]]] = []
    for _ in range(out_count + in_count):
        if offset + _GROUP_HEADER.size > len(block):
            raise StoreFormatError("adjacency group header truncated")
        type_token, edge_count = _GROUP_HEADER.unpack_from(block, offset)
        offset += _GROUP_HEADER.size
        end = offset + 8 * edge_count
        if end > len(block):
            raise StoreFormatError("adjacency group postings truncated")
        edge_ids = struct.unpack_from(f"<{edge_count}Q", block, offset)
        offset += 8 * edge_count
        groups.append((type_token, edge_ids))
    return groups[:out_count], groups[out_count:]


# --------------------------------------------------------------------------
# Property blocks
# --------------------------------------------------------------------------

def encode_property_block(
        entries: Sequence[tuple[int, int, int]]) -> bytes:
    """Encode (key_token, tag, payload) triples into one block."""
    parts = [_PROP_HEADER.pack(len(entries))]
    for key_token, tag, payload in entries:
        parts.append(_PROP_ENTRY.pack(key_token, tag, payload))
    return b"".join(parts)


def property_block_size(entry_count: int) -> int:
    return _PROP_HEADER.size + entry_count * _PROP_ENTRY.size


def decode_property_block_header(block: bytes) -> int:
    if len(block) < _PROP_HEADER.size:
        raise StoreFormatError("property block truncated")
    return _PROP_HEADER.unpack_from(block)[0]


def decode_property_entries(block: bytes,
                            count: int) -> list[tuple[int, int, int]]:
    entries = []
    offset = _PROP_HEADER.size
    for _ in range(count):
        if offset + _PROP_ENTRY.size > len(block):
            raise StoreFormatError("property entry truncated")
        entries.append(_PROP_ENTRY.unpack_from(block, offset))
        offset += _PROP_ENTRY.size
    return entries


# --------------------------------------------------------------------------
# Scalar payload packing
# --------------------------------------------------------------------------

def pack_int(value: int) -> int:
    """Signed 64-bit int reinterpreted as the u64 payload."""
    return _U64.unpack(_I64.pack(value))[0]


def unpack_int(payload: int) -> int:
    return _I64.unpack(_U64.pack(payload))[0]


def fits_inline_int(value: int) -> bool:
    return _I64_MIN <= value <= _I64_MAX


def pack_float(value: float) -> int:
    return _U64.unpack(_F64.pack(value))[0]


def unpack_float(payload: int) -> float:
    return _F64.unpack(_U64.pack(payload))[0]


# --------------------------------------------------------------------------
# List blob encoding (stored in the string store as a byte run)
# --------------------------------------------------------------------------

_LIST_KIND_INT = 0
_LIST_KIND_FLOAT = 1
_LIST_KIND_BOOL = 2
_LIST_KIND_STR = 3


def encode_list_blob(values: Sequence[Any]) -> bytes:
    """Serialize a homogeneous scalar list to a self-describing blob."""
    if not values:
        return struct.pack("<BI", _LIST_KIND_INT, 0)
    first = values[0]
    if isinstance(first, bool):
        body = struct.pack(f"<{len(values)}B",
                           *(1 if item else 0 for item in values))
        kind = _LIST_KIND_BOOL
    elif isinstance(first, int):
        body = struct.pack(f"<{len(values)}q", *values)
        kind = _LIST_KIND_INT
    elif isinstance(first, float):
        body = struct.pack(f"<{len(values)}d", *values)
        kind = _LIST_KIND_FLOAT
    else:
        encoded = [str(item).encode("utf-8") for item in values]
        body = b"".join(struct.pack("<I", len(item)) + item
                        for item in encoded)
        kind = _LIST_KIND_STR
    return struct.pack("<BI", kind, len(values)) + body


def decode_list_blob(blob: bytes) -> list[Any]:
    if len(blob) < 5:
        raise StoreFormatError("list blob truncated")
    kind, count = struct.unpack_from("<BI", blob)
    offset = 5
    if kind == _LIST_KIND_BOOL:
        raw = struct.unpack_from(f"<{count}B", blob, offset)
        return [bool(item) for item in raw]
    if kind == _LIST_KIND_INT:
        return list(struct.unpack_from(f"<{count}q", blob, offset))
    if kind == _LIST_KIND_FLOAT:
        return list(struct.unpack_from(f"<{count}d", blob, offset))
    if kind == _LIST_KIND_STR:
        values = []
        for _ in range(count):
            (length,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            # str(buffer, encoding) accepts bytes and memoryview alike
            # (mmap-mode page cache reads are zero-copy views)
            values.append(str(blob[offset:offset + length], "utf-8"))
            offset += length
        return values
    raise StoreFormatError(f"unknown list blob kind {kind}")


# --------------------------------------------------------------------------
# String store runs
# --------------------------------------------------------------------------

def encode_string_run(data: bytes) -> bytes:
    return struct.pack("<I", len(data)) + data


def decode_string_run_length(header: bytes) -> int:
    if len(header) < 4:
        raise StoreFormatError("string run header truncated")
    return struct.unpack_from("<I", header)[0]


# --------------------------------------------------------------------------
# Varint / zigzag primitives (CSR delta runs)
# --------------------------------------------------------------------------

def encode_uvarint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buffer: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one uvarint; returns (value, next offset)."""
    result = 0
    shift = 0
    length = len(buffer)
    while True:
        if offset >= length:
            raise StoreFormatError("uvarint truncated")
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise StoreFormatError("uvarint too long")


def zigzag(value: int) -> int:
    """Map a signed delta to an unsigned varint-friendly value."""
    return (value << 1) ^ (value >> 63) if value >= 0 else \
        ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# --------------------------------------------------------------------------
# CSR pair runs
# --------------------------------------------------------------------------
#
# One run serializes a node's (edge id, neighbor id) pairs for a single
# (direction, edge-type) CSR segment, order-preserving::
#
#     uvarint  count
#     count ×  zigzag-varint edge-id delta      (vs previous edge id)
#     count ×  zigzag-varint neighbor-id delta  (vs previous neighbor)
#
# Edge ids within one adjacency group are ascending (insertion order of
# an append-only build), so the deltas are small and the run compresses
# to a byte or two per edge — the paper's "compact representation"
# argument made concrete.

def encode_pair_run(pairs: Sequence[tuple[int, int]]) -> bytes:
    parts = [encode_uvarint(len(pairs))]
    previous = 0
    for edge_id, _neighbor in pairs:
        parts.append(encode_uvarint(zigzag(edge_id - previous)))
        previous = edge_id
    previous = 0
    for _edge, neighbor in pairs:
        parts.append(encode_uvarint(zigzag(neighbor - previous)))
        previous = neighbor
    return b"".join(parts)


def decode_pair_run(buffer: bytes,
                    offset: int = 0) -> tuple[list[tuple[int, int]], int]:
    """Decode one pair run; returns (pairs, next offset)."""
    count, offset = decode_uvarint(buffer, offset)
    length = len(buffer)
    if count == 1:
        # single-pair fast path: the overwhelmingly common run shape,
        # decoded without the list/zip scaffolding of the general case
        pair = []
        for _ in range(2):
            result = 0
            shift = 0
            while True:
                if offset >= length:
                    raise StoreFormatError("CSR pair run truncated")
                byte = buffer[offset]
                offset += 1
                result |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            pair.append((result >> 1) ^ -(result & 1))
        return [(pair[0], pair[1])], offset
    edges: list[int] = []
    append_edge = edges.append
    value = 0
    for _ in range(count):
        # inlined uvarint decode: this is the hot cold-read loop
        result = 0
        shift = 0
        while True:
            if offset >= length:
                raise StoreFormatError("CSR pair run truncated")
            byte = buffer[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        value += (result >> 1) ^ -(result & 1)
        append_edge(value)
    neighbors: list[int] = []
    append_neighbor = neighbors.append
    value = 0
    for _ in range(count):
        result = 0
        shift = 0
        while True:
            if offset >= length:
                raise StoreFormatError("CSR pair run truncated")
            byte = buffer[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        value += (result >> 1) ^ -(result & 1)
        append_neighbor(value)
    return list(zip(edges, neighbors)), offset


# --------------------------------------------------------------------------
# Dictionary page
# --------------------------------------------------------------------------
#
# The store dictionary maps small integer ids to the high-frequency
# strings of a store (labels, edge types, property keys, repeated
# property values)::
#
#     u32  count
#     u32  offsets × (count + 1)   (relative to the start of the data
#                                   area that follows the offset table)
#     utf-8 data, concatenated
#
# Entry *i* is ``data[offsets[i]:offsets[i + 1]]`` — decoding one entry
# is an mmap slice, not a scan.

_DICT_HEADER = struct.Struct("<I")


def encode_dictionary(values: Sequence[str]) -> bytes:
    encoded = [value.encode("utf-8") for value in values]
    offsets = [0]
    for blob in encoded:
        offsets.append(offsets[-1] + len(blob))
    return b"".join([
        _DICT_HEADER.pack(len(encoded)),
        struct.pack(f"<{len(offsets)}I", *offsets),
        b"".join(encoded),
    ])


def decode_dictionary_count(buffer: bytes) -> int:
    if len(buffer) < _DICT_HEADER.size:
        raise StoreFormatError("dictionary page truncated")
    return _DICT_HEADER.unpack_from(buffer)[0]


def decode_dictionary_entry(buffer: bytes, index: int) -> str:
    """Decode entry *index* with two offset reads and one slice."""
    count = decode_dictionary_count(buffer)
    if not 0 <= index < count:
        raise StoreFormatError(
            f"dictionary id {index} out of range (count {count})")
    base = _DICT_HEADER.size
    start, end = struct.unpack_from("<II", buffer, base + 4 * index)
    data_start = base + 4 * (count + 1)
    if data_start + end > len(buffer) or start > end:
        raise StoreFormatError("dictionary entry out of bounds")
    return str(buffer[data_start + start:data_start + end], "utf-8")


def decode_dictionary(buffer: bytes) -> list[str]:
    """Decode the whole dictionary page (fsck / eager paths)."""
    count = decode_dictionary_count(buffer)
    base = _DICT_HEADER.size
    if base + 4 * (count + 1) > len(buffer):
        raise StoreFormatError("dictionary offset table truncated")
    offsets = struct.unpack_from(f"<{count + 1}I", buffer, base)
    data_start = base + 4 * (count + 1)
    if data_start + offsets[-1] > len(buffer):
        raise StoreFormatError("dictionary data truncated")
    values = []
    for index in range(count):
        start, end = offsets[index], offsets[index + 1]
        if start > end:
            raise StoreFormatError("dictionary offsets not monotonic")
        values.append(str(buffer[data_start + start:data_start + end],
                          "utf-8"))
    return values
