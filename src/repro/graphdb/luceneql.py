"""Parser for legacy index query strings (`node_auto_index` syntax).

Neo4j 1.x backed its auto indexes with Apache Lucene, and the paper's
queries use Lucene query-string syntax::

    short_name: wakeup.elf
    (TYPE: struct TYPE: union TYPE: enum) AND NAME: foo

This module implements the subset those queries need:

* ``field: term`` clauses (field names are case-insensitive),
* whitespace adjacency defaulting to OR (Lucene's default operator),
* explicit ``AND`` / ``OR`` / ``NOT`` with AND binding tighter than OR,
* parentheses,
* ``*`` and ``?`` wildcards inside terms,
* ``term~`` fuzzy matching (optional ``~N`` max edit distance),
* quoted terms for values containing whitespace.

Parsing produces a small AST; evaluation against the term dictionaries
lives in :mod:`repro.graphdb.indexes`.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterable, Iterator, Protocol

from repro.errors import LuceneQueryError


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Clause:
    """A single ``field: term`` clause."""

    field: str
    term: str
    fuzzy: int = 0  # max edit distance; 0 = exact/wildcard

    @property
    def is_wildcard(self) -> bool:
        return "*" in self.term or "?" in self.term


@dataclasses.dataclass(frozen=True)
class And:
    left: "QueryNode"
    right: "QueryNode"


@dataclasses.dataclass(frozen=True)
class Or:
    left: "QueryNode"
    right: "QueryNode"


@dataclasses.dataclass(frozen=True)
class Not:
    operand: "QueryNode"


QueryNode = Clause | And | Or | Not


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<colon>:)
  | (?P<quoted>"(?:[^"\\]|\\.)*")
  | (?P<word>[^\s():"]+)
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise LuceneQueryError(
                f"bad character {text[position]!r} at offset {position} in "
                f"index query {text!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            yield _Token(kind, match.group(), position)
        position = match.end()


# --------------------------------------------------------------------------
# Parser (precedence: NOT > AND > OR, adjacency == OR)
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0

    def parse(self) -> QueryNode:
        node = self._or_expr()
        if self._peek() is not None:
            token = self._peek()
            assert token is not None
            raise LuceneQueryError(
                f"unexpected {token.text!r} at offset {token.position} in "
                f"index query {self._text!r}")
        return node

    # grammar -----------------------------------------------------------------

    def _or_expr(self) -> QueryNode:
        node = self._and_expr()
        while True:
            token = self._peek()
            if token is None or token.kind == "rparen":
                return node
            if token.kind == "word" and token.text.upper() == "OR":
                self._advance()
                node = Or(node, self._and_expr())
            else:
                # Lucene default operator: bare adjacency means OR.
                node = Or(node, self._and_expr())

    def _and_expr(self) -> QueryNode:
        node = self._unary()
        while True:
            token = self._peek()
            if (token is not None and token.kind == "word"
                    and token.text.upper() == "AND"):
                self._advance()
                node = And(node, self._unary())
            else:
                return node

    def _unary(self) -> QueryNode:
        token = self._peek()
        if token is None:
            raise LuceneQueryError(
                f"unexpected end of index query {self._text!r}")
        if token.kind == "word" and token.text.upper() == "NOT":
            self._advance()
            return Not(self._unary())
        if token.kind == "lparen":
            self._advance()
            node = self._or_expr()
            closing = self._peek()
            if closing is None or closing.kind != "rparen":
                raise LuceneQueryError(
                    f"missing ')' in index query {self._text!r}")
            self._advance()
            return node
        return self._clause()

    def _clause(self) -> Clause:
        field_token = self._expect("word", "field name")
        self._expect("colon", "':'")
        term_token = self._peek()
        if term_token is None or term_token.kind not in ("word", "quoted"):
            raise LuceneQueryError(
                f"missing term after {field_token.text!r}: in index query "
                f"{self._text!r}")
        self._advance()
        term = term_token.text
        if term_token.kind == "quoted":
            term = re.sub(r"\\(.)", r"\1", term[1:-1])
        fuzzy = 0
        fuzzy_match = re.fullmatch(r"(.+?)~(\d*)", term)
        if fuzzy_match and term_token.kind == "word":
            term = fuzzy_match.group(1)
            fuzzy = int(fuzzy_match.group(2) or "2")
        return Clause(field=field_token.text.lower(), term=term, fuzzy=fuzzy)

    # plumbing ------------------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> None:
        self._index += 1

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.text if token else "end of input"
            raise LuceneQueryError(
                f"expected {what}, found {found!r} in index query "
                f"{self._text!r}")
        self._advance()
        return token


#: parsed-query memo: parsed trees are immutable and evaluation never
#: mutates them, so the same query string (every START clause of a
#: cached Cypher plan re-runs its index query per execution) can skip
#: tokenization; the cap only guards adversarial churn
_PARSE_CACHE: dict[str, QueryNode] = {}
_PARSE_CACHE_LIMIT = 512


def parse_query(text: str) -> QueryNode:
    """Parse a legacy index query string into its AST (memoized)."""
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        return cached
    if not text or not text.strip():
        raise LuceneQueryError("empty index query")
    parsed = _Parser(text).parse()
    if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[text] = parsed
    return parsed


# --------------------------------------------------------------------------
# Evaluation against an abstract term source
# --------------------------------------------------------------------------

class TermSource(Protocol):
    """What an index must expose for query evaluation.

    Both the in-memory :class:`~repro.graphdb.indexes.IndexManager` and
    the disk-backed index reader implement this, so one evaluator serves
    both (and the cold/warm benchmarks exercise the same logic).
    """

    def all_ids(self) -> set[int]:
        """Universe of indexed node ids (needed for NOT)."""
        ...

    def terms(self, field: str) -> Iterable[str]:
        """All terms indexed under *field* (for wildcard/fuzzy scans)."""
        ...

    def postings(self, field: str, term: str) -> set[int]:
        """Node ids for an exact (already-normalized) term."""
        ...


def evaluate(node: QueryNode, source: TermSource) -> set[int]:
    """Evaluate a parsed index query against a term source."""
    if isinstance(node, Clause):
        return _evaluate_clause(node, source)
    if isinstance(node, And):
        return evaluate(node.left, source) & evaluate(node.right, source)
    if isinstance(node, Or):
        return evaluate(node.left, source) | evaluate(node.right, source)
    if isinstance(node, Not):
        return source.all_ids() - evaluate(node.operand, source)
    raise TypeError(f"unknown query node {node!r}")


def _evaluate_clause(clause: Clause, source: TermSource) -> set[int]:
    if clause.fuzzy:
        wanted = clause.term.lower()
        result: set[int] = set()
        for term in source.terms(clause.field):
            if edit_distance_at_most(term, wanted, clause.fuzzy):
                result |= source.postings(clause.field, term)
        return result
    if clause.is_wildcard:
        regex = wildcard_to_regex(clause.term)
        result = set()
        for term in source.terms(clause.field):
            if regex.fullmatch(term):
                result |= source.postings(clause.field, term)
        return result
    return source.postings(clause.field, clause.term.lower())


# --------------------------------------------------------------------------
# Term matching helpers
# --------------------------------------------------------------------------

def wildcard_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a Lucene wildcard pattern (``*``, ``?``) to a regex."""
    out = []
    for char in pattern:
        if char == "*":
            out.append(".*")
        elif char == "?":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("".join(out), re.IGNORECASE | re.DOTALL)


def edit_distance_at_most(left: str, right: str, limit: int) -> bool:
    """True if Levenshtein distance between the terms is <= *limit*.

    Runs the banded DP so common no-match cases exit early; terms in the
    index are short (symbol names), so this stays cheap.
    """
    if abs(len(left) - len(right)) > limit:
        return False
    if left == right:
        return True
    previous = list(range(len(right) + 1))
    for row, char_l in enumerate(left, start=1):
        current = [row] + [0] * len(right)
        best = row
        for col, char_r in enumerate(right, start=1):
            cost = 0 if char_l == char_r else 1
            current[col] = min(previous[col] + 1, current[col - 1] + 1,
                               previous[col - 1] + cost)
            best = min(best, current[col])
        if best > limit:
            return False
        previous = current
    return previous[-1] <= limit
