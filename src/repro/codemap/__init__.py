"""The cartographic code map (the paper's interface component).

Frappé renders query results "overlaid on a visualization of the
dependency graph data based on a cartographic map metaphor such that
the continent/country/state/city hierarchy of the map corresponds to
the equivalent in source code: the high-level architectural components
down to the individual files and functions" (paper Sections 1–2).

The computable parts are implemented here:

* :mod:`~repro.codemap.hierarchy` — the containment tree (directories
  → files → functions) with size weights,
* :mod:`~repro.codemap.layout` — a squarified-treemap spatial layout,
* :mod:`~repro.codemap.render` — SVG and ASCII renderers with
  query-result overlays (the perceptual-filtering story of Section 2).
"""

from repro.codemap.hierarchy import CodeRegion, build_hierarchy
from repro.codemap.layout import LayoutBox, layout_map
from repro.codemap.render import render_ascii, render_svg

__all__ = ["CodeRegion", "LayoutBox", "build_hierarchy", "layout_map",
           "render_ascii", "render_svg"]
