"""The containment hierarchy behind the code map.

Continents are top-level directories, countries nested directories,
states files, cities functions — following the paper's metaphor. Each
region's weight is the number of graph entities it transitively
contains, so map area corresponds to the amount of code.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.core import model
from repro.graphdb.view import Direction, GraphView

#: hierarchy levels, outermost first.
LEVELS = ("continent", "country", "state", "city")


@dataclasses.dataclass
class CodeRegion:
    """One region of the map: a directory, file or function."""

    node_id: int
    name: str
    kind: str                      # 'directory' | 'file' | 'function'
    children: list["CodeRegion"] = dataclasses.field(default_factory=list)
    weight: float = 1.0
    depth: int = 0

    @property
    def level(self) -> str:
        """The cartographic level label for this depth."""
        return LEVELS[min(self.depth, len(LEVELS) - 1)]

    def walk(self) -> Iterator["CodeRegion"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, node_id: int) -> Optional["CodeRegion"]:
        for region in self.walk():
            if region.node_id == node_id:
                return region
        return None

    def __repr__(self) -> str:
        return (f"CodeRegion({self.name!r}, {self.kind}, "
                f"weight={self.weight:.0f}, "
                f"children={len(self.children)})")


def build_hierarchy(view: GraphView,
                    root_node: int | None = None) -> CodeRegion:
    """Build the region tree from dir_contains/file_contains edges.

    ``root_node`` defaults to the root directory node ('.'); functions
    become cities, everything else a file contains counts into the
    file's weight but is not drawn individually.
    """
    if root_node is None:
        root_node = _find_root_directory(view)
    root = _region_for(view, root_node, depth=0)
    _populate(view, root)
    _compute_weights(root)
    return root


def _find_root_directory(view: GraphView) -> int:
    candidates = [node_id for node_id in
                  view.nodes_with_label(model.DIRECTORY)
                  if view.degree(node_id, Direction.IN,
                                 (model.DIR_CONTAINS,)) == 0]
    if not candidates:
        raise ValueError("graph has no root directory node")
    if len(candidates) == 1:
        return candidates[0]
    # multiple roots: pick the one containing the most entities
    return max(candidates,
               key=lambda node_id: view.degree(node_id, Direction.OUT,
                                               (model.DIR_CONTAINS,)))


def _region_for(view: GraphView, node_id: int, depth: int) -> CodeRegion:
    labels = view.node_labels(node_id)
    if model.DIRECTORY in labels:
        kind = "directory"
    elif model.FILE in labels:
        kind = "file"
    else:
        kind = "function"
    return CodeRegion(node_id,
                      view.node_property(node_id, model.P_SHORT_NAME,
                                         f"#{node_id}"),
                      kind, depth=depth)


def _populate(view: GraphView, region: CodeRegion) -> None:
    if region.kind == "directory":
        for edge_id in view.edges_of(region.node_id, Direction.OUT,
                                     (model.DIR_CONTAINS,)):
            child = _region_for(view, view.edge_target(edge_id),
                                region.depth + 1)
            region.children.append(child)
            _populate(view, child)
    elif region.kind == "file":
        contained = 0
        for edge_id in view.edges_of(region.node_id, Direction.OUT,
                                     (model.FILE_CONTAINS,)):
            target = view.edge_target(edge_id)
            contained += 1
            if model.FUNCTION in view.node_labels(target):
                region.children.append(
                    _region_for(view, target, region.depth + 1))
        region.weight = max(1.0, float(contained))
    region.children.sort(key=lambda child: (-child.weight, child.name))


def _compute_weights(region: CodeRegion) -> float:
    if region.kind == "file":
        # file weight = contained entity count (set during populate);
        # function children get equal shares for display
        for child in region.children:
            child.weight = max(1.0,
                               region.weight / max(len(region.children),
                                                   1))
        return region.weight
    if region.children:
        region.weight = sum(_compute_weights(child)
                            for child in region.children)
    region.children.sort(key=lambda child: (-child.weight, child.name))
    return region.weight


def region_of_node(root: CodeRegion, view: GraphView,
                   node_id: int) -> Optional[CodeRegion]:
    """The innermost drawn region containing a graph entity.

    Functions map to their city; other entities map to their
    containing file (state) via the incoming ``file_contains`` edge.
    """
    direct = root.find(node_id)
    if direct is not None:
        return direct
    for edge_id in view.edges_of(node_id, Direction.IN,
                                 (model.FILE_CONTAINS,
                                  model.HAS_LOCAL, model.HAS_PARAM,
                                  model.CONTAINS)):
        container = view.edge_source(edge_id)
        found = root.find(container)
        if found is not None:
            return found
        found = region_of_node(root, view, container)
        if found is not None:
            return found
    return None
