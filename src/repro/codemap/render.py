"""Rendering the code map, with query-result overlays.

Two renderers: SVG (for files a human opens) and ASCII (for terminals
and tests). Overlays mirror the paper's Section 2: individual entities
highlight their region, paths draw a route through the map, closures
shade everything they touch — "an immediate general impression of the
location, locality, structure, and quantity of results".
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.codemap.hierarchy import CodeRegion, region_of_node
from repro.codemap.layout import LayoutBox
from repro.graphdb.view import GraphView

_LEVEL_FILL = {
    "directory": "#d7e3c8",   # continents/countries: land green
    "file": "#f2ead3",        # states: parchment
    "function": "#e8dcc0",    # cities
}
_HIGHLIGHT_FILL = "#e4572e"
_PATH_STROKE = "#1d3557"


def render_svg(root_box: LayoutBox,
               highlights: Iterable[int] = (),
               path: Sequence[int] = (),
               title: str = "code map") -> str:
    """Render the layout (plus overlays) as an SVG document string."""
    highlight_set = set(highlights)
    path_list = list(path)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{root_box.width:.0f}" height="{root_box.height:.0f}" '
        f'viewBox="0 0 {root_box.width:.0f} {root_box.height:.0f}">',
        f"<title>{_escape(title)}</title>",
    ]
    for box in root_box.walk():
        fill = _LEVEL_FILL.get(box.region.kind, "#eeeeee")
        if box.region.node_id in highlight_set:
            fill = _HIGHLIGHT_FILL
        parts.append(
            f'<rect x="{box.x:.2f}" y="{box.y:.2f}" '
            f'width="{box.width:.2f}" height="{box.height:.2f}" '
            f'fill="{fill}" stroke="#55524c" stroke-width="0.5">'
            f"<title>{_escape(box.region.name)} "
            f"({box.region.level})</title></rect>")
        if box.width > 40 and box.height > 12:
            parts.append(
                f'<text x="{box.x + 3:.2f}" y="{box.y + 11:.2f}" '
                f'font-size="9" font-family="sans-serif" '
                f'fill="#333333">{_escape(box.region.name[:24])}</text>')
    if len(path_list) >= 2:
        centers = []
        boxes_by_node = {box.region.node_id: box
                         for box in root_box.walk()}
        for node_id in path_list:
            box = boxes_by_node.get(node_id)
            if box is not None:
                centers.append((box.x + box.width / 2,
                                box.y + box.height / 2))
        if len(centers) >= 2:
            points = " ".join(f"{x:.1f},{y:.1f}" for x, y in centers)
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{_PATH_STROKE}" stroke-width="2" '
                f'stroke-dasharray="6 3"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_ascii(root_box: LayoutBox, columns: int = 78, rows: int = 24,
                 highlights: Iterable[int] = (),
                 max_depth: int = 2) -> str:
    """Render a coarse character-grid map (for terminals and tests).

    A character grid cannot label every nesting level legibly, so only
    regions down to *max_depth* are drawn (continents and countries by
    default); highlighted entities deeper than that mark their visible
    ancestor.
    """
    highlight_set = set(highlights)
    deep_highlight_ancestors = set()
    for box in root_box.walk():
        if box.region.depth > max_depth:
            continue
        if any(child.region.node_id in highlight_set
               for child in box.walk()):
            deep_highlight_ancestors.add(box.region.node_id)
    grid = [[" " for _ in range(columns)] for _ in range(rows)]
    scale_x = columns / root_box.width
    scale_y = rows / root_box.height
    # draw shallow-to-deep so inner borders refine outer ones
    boxes = sorted((box for box in root_box.walk()
                    if box.region.depth <= max_depth),
                   key=lambda box: box.region.depth)
    highlight_set = highlight_set | deep_highlight_ancestors
    cells = []
    for box in boxes:
        left = int(box.x * scale_x)
        top = int(box.y * scale_y)
        right = min(int((box.x + box.width) * scale_x), columns - 1)
        bottom = min(int((box.y + box.height) * scale_y), rows - 1)
        if right <= left or bottom <= top:
            continue
        cells.append((box, left, top, right, bottom))
        for column in range(left, right + 1):
            grid[top][column] = "-"
            grid[bottom][column] = "-"
        for row in range(top, bottom + 1):
            grid[row][left] = "|"
            grid[row][right] = "|"
    # second pass: labels, shallow first, each on the first row of its
    # box where the span is still free (so nesting doesn't clobber them)
    for box, left, top, right, bottom in cells:
        label = box.region.name[:max(right - left - 1, 0)]
        if box.region.node_id in highlight_set and label:
            label = f"#{label}"[:max(right - left - 1, 0)]
        if not label:
            continue
        for row in range(top, bottom):
            span = range(left + 1, min(left + 1 + len(label), right))
            if all(grid[row][column] in (" ", "-") for column in span):
                for offset, char in enumerate(label):
                    if left + 1 + offset < right:
                        grid[row][left + 1 + offset] = char
                break
    return "\n".join("".join(row).rstrip() for row in grid)


def overlay_nodes(view: GraphView, root: CodeRegion,
                  node_ids: Iterable[int]) -> set[int]:
    """Map arbitrary graph entities to drawable region node ids."""
    regions: set[int] = set()
    for node_id in node_ids:
        region = region_of_node(root, view, node_id)
        if region is not None:
            regions.add(region.node_id)
    return regions


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
