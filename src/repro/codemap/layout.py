"""Squarified-treemap layout for the code map.

The classic squarified algorithm (Bruls, Huizing, van Wijk 2000):
children are placed in rows along the shorter side of the remaining
rectangle, greedily keeping aspect ratios close to 1 — which is what
makes the map read like countries and states rather than slivers.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.codemap.hierarchy import CodeRegion

#: inner padding (per side) applied at each nesting level, so nested
#: regions are visually distinct; in layout units.
PADDING_FRACTION = 0.01


@dataclasses.dataclass
class LayoutBox:
    """One placed region: the region plus its rectangle."""

    region: CodeRegion
    x: float
    y: float
    width: float
    height: float
    children: list["LayoutBox"] = dataclasses.field(default_factory=list)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        if not self.width or not self.height:
            return float("inf")
        return max(self.width / self.height, self.height / self.width)

    def walk(self) -> Iterator["LayoutBox"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"LayoutBox({self.region.name!r}, x={self.x:.1f}, "
                f"y={self.y:.1f}, w={self.width:.1f}, "
                f"h={self.height:.1f})")


def layout_map(root: CodeRegion, width: float = 1000.0,
               height: float = 700.0, max_depth: int = 4) -> LayoutBox:
    """Lay the hierarchy out into a width x height rectangle."""
    if width <= 0 or height <= 0:
        raise ValueError("layout area must be positive")
    box = LayoutBox(root, 0.0, 0.0, width, height)
    _layout_children(box, max_depth)
    return box


def _layout_children(box: LayoutBox, remaining_depth: int) -> None:
    region = box.region
    if remaining_depth <= 0 or not region.children:
        return
    pad = min(box.width, box.height) * PADDING_FRACTION
    inner_x = box.x + pad
    inner_y = box.y + pad
    inner_w = max(box.width - 2 * pad, 0.0)
    inner_h = max(box.height - 2 * pad, 0.0)
    if inner_w <= 0 or inner_h <= 0:
        return
    total_weight = sum(child.weight for child in region.children)
    if total_weight <= 0:
        return
    scale = (inner_w * inner_h) / total_weight
    areas = [(child, child.weight * scale)
             for child in region.children]
    rectangles = _squarify(areas, inner_x, inner_y, inner_w, inner_h)
    for child, (x, y, w, h) in rectangles:
        child_box = LayoutBox(child, x, y, w, h)
        box.children.append(child_box)
        _layout_children(child_box, remaining_depth - 1)


def _squarify(areas: list[tuple[CodeRegion, float]], x: float, y: float,
              width: float, height: float,
              ) -> list[tuple[CodeRegion, tuple[float, float, float,
                                                float]]]:
    """Squarified treemap of (region, area) pairs into a rectangle."""
    placed: list[tuple[CodeRegion, tuple[float, float, float, float]]] = []
    remaining = list(areas)
    while remaining:
        short_side = min(width, height)
        if short_side <= 0:
            # degenerate leftover: stack everything in a zero strip
            for region, _area in remaining:
                placed.append((region, (x, y, max(width, 0.0),
                                        max(height, 0.0))))
            break
        row = [remaining.pop(0)]
        row_area = row[0][1]
        while remaining:
            candidate_area = row_area + remaining[0][1]
            if _worst(row_area, max(item[1] for item in row),
                      min(item[1] for item in row), short_side) >= \
               _worst(candidate_area,
                      max(max(item[1] for item in row), remaining[0][1]),
                      min(min(item[1] for item in row), remaining[0][1]),
                      short_side):
                row.append(remaining.pop(0))
                row_area = candidate_area
            else:
                break
        # place the row along the short side
        if width >= height:
            row_width = row_area / height if height else 0.0
            offset = y
            for region, area in row:
                item_height = area / row_width if row_width else 0.0
                placed.append((region, (x, offset, row_width,
                                        item_height)))
                offset += item_height
            x += row_width
            width -= row_width
        else:
            row_height = row_area / width if width else 0.0
            offset = x
            for region, area in row:
                item_width = area / row_height if row_height else 0.0
                placed.append((region, (offset, y, item_width,
                                        row_height)))
                offset += item_width
            y += row_height
            height -= row_height
    return placed


def _worst(row_area: float, max_area: float, min_area: float,
           side: float) -> float:
    """Worst aspect ratio of a row with the given areas on *side*."""
    if row_area <= 0 or min_area <= 0:
        return float("inf")
    side_squared = side * side
    return max(side_squared * max_area / (row_area * row_area),
               row_area * row_area / (side_squared * min_area))


def average_leaf_aspect_ratio(root_box: LayoutBox) -> float:
    """Mean aspect ratio of leaf boxes (layout-quality metric)."""
    leaves = [box for box in root_box.walk() if not box.children
              and box.area > 0]
    if not leaves:
        return 1.0
    return sum(box.aspect_ratio for box in leaves) / len(leaves)
