"""Benchmark harness for the paper's evaluation protocol."""

from repro.bench.harness import (ColdWarmResult, Timing, bench_scale,
                                 print_table, run_cold_warm, time_callable)

__all__ = ["ColdWarmResult", "Timing", "bench_scale", "print_table",
           "run_cold_warm", "time_callable"]
