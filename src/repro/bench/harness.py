"""The paper's Section 5.2 measurement protocol, as a library.

"Each query was run ten times with a cold cache and ten times with a
warm cache"; Table 5 reports min/avg/max for both regimes plus the
result count, and the comprehension query row records an abort instead
of numbers. :func:`run_cold_warm` reproduces exactly that: cold runs
call an eviction hook first (the store graph's page + object caches),
warm runs execute back to back, and a per-run time budget turns a
pathological query into an ``aborted`` row rather than a hung harness.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import time
from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryTimeoutError

#: paper protocol: ten runs per cache regime.
DEFAULT_RUNS = 10


def bench_scale(default: float = 1 / 50) -> float:
    """The workload scale factor, overridable via FRAPPE_BENCH_SCALE."""
    raw = os.environ.get("FRAPPE_BENCH_SCALE")
    if not raw:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError("FRAPPE_BENCH_SCALE must be positive")
    return value


@dataclasses.dataclass
class Timing:
    """min/avg/max over a set of runs, in milliseconds."""

    samples_ms: list[float]

    @property
    def min(self) -> float:
        return min(self.samples_ms)

    @property
    def avg(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    @property
    def max(self) -> float:
        return max(self.samples_ms)

    def row(self) -> str:
        return f"{self.min:8.1f} {self.avg:8.1f} {self.max:8.1f}"


@dataclasses.dataclass
class ColdWarmResult:
    """One Table 5 row.

    ``cold_hit_ratio`` / ``warm_hit_ratio`` / ``top_operator`` are
    filled when the caller passes the observability hooks to
    :func:`run_cold_warm`; they make the cold/warm asymmetry
    attributable (cache behaviour + the operator the time went to).
    """

    name: str
    cold: Optional[Timing]
    warm: Optional[Timing]
    result_count: Optional[int]
    aborted: bool = False
    abort_after_seconds: Optional[float] = None
    cold_hit_ratio: Optional[float] = None
    warm_hit_ratio: Optional[float] = None
    top_operator: Optional[str] = None

    def format_row(self) -> str:
        if self.aborted:
            budget = (f"> {self.abort_after_seconds:.0f}s"
                      if self.abort_after_seconds else "aborted")
            return f"{self.name:<24} {budget}, aborted"
        assert self.cold is not None and self.warm is not None
        row = (f"{self.name:<24} cold {self.cold.row()}   "
               f"warm {self.warm.row()}   "
               f"results {self.result_count}")
        if self.cold_hit_ratio is not None \
                and self.warm_hit_ratio is not None:
            row += (f"   pc-hit {self.cold_hit_ratio:.2f}/"
                    f"{self.warm_hit_ratio:.2f}")
        if self.top_operator:
            row += f"   top {self.top_operator}"
        return row


def time_callable(fn: Callable[[], Any]) -> tuple[float, Any]:
    """(elapsed milliseconds, return value) of one call."""
    start = time.perf_counter()
    value = fn()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return elapsed_ms, value


def run_cold_warm(name: str, query: Callable[[], Any],
                  evict: Callable[[], None],
                  runs: int = DEFAULT_RUNS,
                  count_results: Callable[[Any], int] = len,
                  abort_after: float | None = None,
                  hit_ratio: Callable[[], float] | None = None,
                  reset_counters: Callable[[], None] | None = None,
                  top_operator: Callable[[], str | None] | None = None,
                  ) -> ColdWarmResult:
    """Run the paper's cold/warm protocol for one query.

    ``query`` executes the workload and returns its result;
    ``evict`` clears the caches (called before every cold run);
    ``abort_after`` (seconds, per run) converts a timeout —
    :class:`~repro.errors.QueryTimeoutError` from the Cypher engine or
    a harness-side wall-clock overrun — into an aborted row, the way
    the paper reports the Figure 6 comprehension query.

    The optional observability hooks annotate the row: ``hit_ratio``
    is sampled after the last cold run (eviction also resets the
    counters, so this reflects one cold execution) and again after
    the warm runs (after ``reset_counters``, so it reflects only warm
    traffic); ``top_operator`` names the operator a PROFILE run of
    the same query spends most of its time in.

    The cyclic GC is collected once up front and paused for the timed
    loops (the pyperf protocol): a long benchmark session accumulates
    long-lived objects, and letting collections land inside the timed
    region adds a per-query constant that grows with session age —
    which compresses every speedup ratio on sub-millisecond queries.
    """
    cold_samples: list[float] = []
    result_count: Optional[int] = None
    cold_ratio: Optional[float] = None
    collector_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(runs):
            evict()
            try:
                elapsed_ms, value = time_callable(query)
            except QueryTimeoutError:
                return ColdWarmResult(name, None, None, None,
                                      aborted=True,
                                      abort_after_seconds=abort_after)
            if abort_after is not None \
                    and elapsed_ms > abort_after * 1000:
                return ColdWarmResult(name, None, None, None,
                                      aborted=True,
                                      abort_after_seconds=abort_after)
            cold_samples.append(elapsed_ms)
            result_count = count_results(value)
            if hit_ratio is not None:
                cold_ratio = hit_ratio()
        warm_samples: list[float] = []
        query()  # one untimed run to settle the caches
        if reset_counters is not None:
            reset_counters()
        for _ in range(runs):
            try:
                elapsed_ms, value = time_callable(query)
            except QueryTimeoutError:
                return ColdWarmResult(name, None, None, None,
                                      aborted=True,
                                      abort_after_seconds=abort_after)
            warm_samples.append(elapsed_ms)
    finally:
        if collector_was_enabled:
            gc.enable()
    warm_ratio = hit_ratio() if hit_ratio is not None else None
    top = None
    if top_operator is not None:
        try:
            top = top_operator()
        except QueryTimeoutError:
            top = None
    return ColdWarmResult(name, Timing(cold_samples),
                          Timing(warm_samples), result_count,
                          cold_hit_ratio=cold_ratio,
                          warm_hit_ratio=warm_ratio,
                          top_operator=top)


def bench_record(result: ColdWarmResult, *, query_id: str,
                 planner: str = "cost-based",
                 db_hits: int | None = None) -> dict[str, Any]:
    """A JSON-ready record of one cold/warm row for BENCH_PR3.json."""
    return {
        "query": query_id,
        "planner": planner,
        "aborted": result.aborted,
        "cold_ms": (round(result.cold.avg, 3)
                    if result.cold is not None else None),
        "warm_ms": (round(result.warm.avg, 3)
                    if result.warm is not None else None),
        "result_count": result.result_count,
        "db_hits": db_hits,
        "cold_hit_ratio": (round(result.cold_hit_ratio, 4)
                           if result.cold_hit_ratio is not None
                           else None),
        "warm_hit_ratio": (round(result.warm_hit_ratio, 4)
                           if result.warm_hit_ratio is not None
                           else None),
    }


def write_bench_records(path: str,
                        records: Sequence[dict[str, Any]]) -> None:
    """Write collected benchmark records as a JSON array."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(records), handle, indent=2, sort_keys=True)
        handle.write("\n")


def print_table(title: str, rows: Sequence[ColdWarmResult],
                header: str | None = None) -> str:
    """Format rows as a paper-style table; returns (and prints) it."""
    lines = [f"== {title} ==" if title else ""]
    if header:
        lines.append(header)
    lines.extend(row.format_row() for row in rows)
    table = "\n".join(line for line in lines if line)
    print(table)
    return table


def print_kv_table(title: str, rows: Sequence[tuple[str, Any]]) -> str:
    """A simple two-column table (Tables 3 and 4)."""
    width = max((len(str(key)) for key, _value in rows), default=8)
    lines = [f"== {title} =="]
    lines.extend(f"{str(key):<{width}}  {value}" for key, value in rows)
    table = "\n".join(lines)
    print(table)
    return table
