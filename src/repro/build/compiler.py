"""A gcc-like compiler driver.

The paper's extractor is installed by pointing ``CC`` at a wrapper
script, so the unit of work here is a *real command line*:
``gcc -Iinclude drivers/sr.c -c -o drivers/sr.o``.  This module parses
such lines into :class:`CompilerInvocation` and runs single translation
units through the front-end pipeline (preprocess -> parse -> sema),
producing :class:`ObjectFile` bundles — the in-memory analogue of a
``.o`` with full symbol, AST and preprocessor information attached.

Policy-free by design: a front-end failure propagates as the original
:class:`~repro.errors.FrontEndError`.  Fault isolation (capturing the
error as a diagnostic and continuing with the next unit) is the
responsibility of :mod:`repro.build.buildsys`, which owns the failure
policy.
"""

from __future__ import annotations

import dataclasses
import shlex

from repro.errors import BuildError
from repro.lang import sema
from repro.lang.parser import parse_tokens
from repro.lang.preprocessor import PreprocessedUnit, Preprocessor
from repro.lang.source import FileRegistry

#: Extensions treated as C sources on a command line.
SOURCE_EXTENSIONS = (".c", ".i")

#: Flags that consume the following argument but do not affect us.
_SKIP_WITH_ARGUMENT = frozenset({
    "-MF", "-MT", "-MQ", "-x", "-arch", "-include", "-imacros", "-T",
    "-Xlinker", "-u", "-z",
})


@dataclasses.dataclass
class CompilerInvocation:
    """One parsed gcc-style command line.

    ``inputs`` preserves the command-line order of positional inputs as
    ``("source" | "object", path)`` pairs — link order is observable in
    the graph (Table 1's ``LINK_ORDER``), so it must survive parsing.
    """

    command: str
    program: str
    inputs: list[tuple[str, str]]
    output: str | None
    compile_only: bool
    include_paths: list[str]
    defines: dict[str, str]
    libraries: list[str]
    library_paths: list[str]

    @property
    def sources(self) -> list[str]:
        return [path for kind, path in self.inputs if kind == "source"]

    @property
    def objects(self) -> list[str]:
        return [path for kind, path in self.inputs if kind == "object"]

    @property
    def links(self) -> bool:
        return not self.compile_only

    def object_path_for(self, source: str) -> str:
        """Where the object for ``source`` lands.

        With ``-c -o`` the answer is explicit; otherwise gcc's rule:
        replace the source extension with ``.o`` (kept alongside the
        source so paths stay unambiguous in a virtual tree).
        """
        if self.compile_only and self.output and len(self.sources) == 1:
            return self.output
        stem = source
        for extension in SOURCE_EXTENSIONS:
            if source.endswith(extension):
                stem = source[:-len(extension)]
                break
        return stem + ".o"


def parse_command_line(command: str) -> CompilerInvocation:
    """Parse one gcc/cc/ld-style command line.

    Unknown flags are skipped (a wrapper must survive the long tail of
    real build-system flags); structurally broken lines — empty, no
    inputs, ``-c`` over several sources with one ``-o`` — raise
    :class:`BuildError`.
    """
    try:
        argv = shlex.split(command)
    except ValueError as error:
        raise BuildError(f"unparseable command line {command!r}: {error}")
    if len(argv) < 2:
        raise BuildError(f"command line has no inputs: {command!r}")
    invocation = CompilerInvocation(
        command=command, program=argv[0], inputs=[], output=None,
        compile_only=False, include_paths=[], defines={}, libraries=[],
        library_paths=[])
    index = 1
    while index < len(argv):
        argument = argv[index]
        index += 1
        if argument == "-c":
            invocation.compile_only = True
        elif argument == "-o":
            invocation.output = _take(argv, index, command, "-o")
            index += 1
        elif argument.startswith("-I"):
            path = argument[2:] or _take(argv, index, command, "-I")
            if not argument[2:]:
                index += 1
            invocation.include_paths.append(path)
        elif argument.startswith("-D"):
            definition = argument[2:] or _take(argv, index, command, "-D")
            if not argument[2:]:
                index += 1
            name, _, value = definition.partition("=")
            invocation.defines[name] = value or "1"
        elif argument.startswith("-isystem"):
            path = argument[8:] or _take(argv, index, command, "-isystem")
            if not argument[8:]:
                index += 1
            invocation.include_paths.append(path)
        elif argument.startswith("-l"):
            library = argument[2:] or _take(argv, index, command, "-l")
            if not argument[2:]:
                index += 1
            invocation.libraries.append(library)
        elif argument.startswith("-L"):
            path = argument[2:] or _take(argv, index, command, "-L")
            if not argument[2:]:
                index += 1
            invocation.library_paths.append(path)
        elif argument in _SKIP_WITH_ARGUMENT:
            index += 1  # flag's argument is irrelevant here
        elif argument.startswith("-"):
            continue  # -O2, -g, -Wall, -fPIC, -std=..., -shared, ...
        elif argument.endswith(SOURCE_EXTENSIONS):
            invocation.inputs.append(("source", argument))
        else:
            # anything else positional is linker input (.o, .a, .so)
            invocation.inputs.append(("object", argument))
    if not invocation.inputs:
        raise BuildError(f"no input files: {command!r}")
    if invocation.compile_only and invocation.output and \
            len(invocation.sources) > 1:
        raise BuildError(
            f"cannot specify -o with -c and multiple sources: {command!r}")
    if invocation.compile_only and invocation.objects:
        raise BuildError(
            f"object inputs are meaningless with -c: {command!r}")
    return invocation


def _take(argv: list[str], index: int, command: str, flag: str) -> str:
    if index >= len(argv):
        raise BuildError(
            f"missing argument after {flag!r}: {command!r}")
    return argv[index]


@dataclasses.dataclass
class ObjectFile:
    """One compiled translation unit (the in-memory ``.o``)."""

    path: str                  # object path, e.g. drivers/sr.o
    source_path: str           # the .c it was compiled from
    unit: PreprocessedUnit     # tokens, includes, macros, expansions
    info: sema.UnitInfo        # symbols, references, exports/imports
    command: str = ""          # the command line that produced it
    implicit: bool = False     # compiled inline on a link line

    @property
    def degraded(self) -> bool:
        """Compiled, but with includes missing — symbols may be absent."""
        return bool(self.unit.missing_includes)


def compile_source(registry: FileRegistry, source_path: str,
                   object_path: str, include_paths=(), defines=None,
                   ignore_missing_includes: bool = False,
                   command: str = "", implicit: bool = False) -> ObjectFile:
    """Run one translation unit through the full front end.

    Raises the pipeline's own :class:`~repro.errors.FrontEndError`
    subclasses on bad input; never partially registers a unit.
    """
    preprocessor = Preprocessor(
        registry, include_paths=include_paths, predefined=defines,
        ignore_missing_includes=ignore_missing_includes)
    unit = preprocessor.preprocess(source_path)
    tu = parse_tokens(unit.tokens, source_path)
    info = sema.analyze(tu)
    return ObjectFile(path=object_path, source_path=source_path,
                      unit=unit, info=info, command=command,
                      implicit=implicit)
