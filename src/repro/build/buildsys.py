"""The declarative build replayer with fault isolation.

:class:`Build` consumes the command lines a build system would have
fed the compiler (the paper's wrapper-script interception, Section 3)
and accumulates objects and modules for the extractor.

Robustness model — the part the paper leaves implicit but an 11.4 MLoC
kernel tree makes mandatory:

* every translation unit compiles under **fault isolation**: a
  :class:`~repro.errors.FrontEndError` becomes a structured
  :class:`BuildDiagnostic` attached to a failed :class:`UnitOutcome`
  instead of unwinding the whole build (policy permitting),
* the **failure policy** is explicit: :data:`FAIL_FAST` re-raises the
  first error (the strict mode tests want), :data:`KEEP_GOING`
  records diagnostics and continues, optionally bounded by a
  ``max_errors`` budget that raises
  :class:`~repro.errors.BuildDiagnosticError` once exceeded,
* the linker **degrades gracefully**: objects whose compile failed are
  skipped from the link line (recorded on the module as
  ``missing_object_paths``) so a partial-but-valid graph still comes
  out the other end,
* everything observed lands in one :class:`BuildReport` with per-unit
  outcomes (ok / degraded / failed) and full error provenance.

With ``jobs > 1`` the script replayer fans consecutive ``-c`` commands
over a process pool (:mod:`repro.build.parallel`) and merges the
results in submission order — file ids, outcome order, failure policy
and the report are byte-identical to a serial build; link commands act
as barriers because they consume prior objects.
"""

from __future__ import annotations

import dataclasses

from repro.build import compiler, linker, parallel
from repro.errors import (BuildDiagnosticError, BuildError, FrontEndError,
                          LexError, LinkError, ParseError,
                          PreprocessorError, SemanticError)
from repro.lang.source import FileRegistry, VirtualFileSystem

#: Failure policies.
FAIL_FAST = "fail_fast"
KEEP_GOING = "keep_going"

#: Per-unit outcome statuses.
OK = "ok"
DEGRADED = "degraded"
FAILED = "failed"

#: Diagnostic severities (aligned with linker.LinkIssue).
ERROR = "error"
WARNING = "warning"

_CATEGORY_BY_ERROR = (
    (PreprocessorError, "preprocess"),
    (LexError, "lex"),
    (ParseError, "parse"),
    (SemanticError, "sema"),
    (FrontEndError, "frontend"),
)


@dataclasses.dataclass
class BuildDiagnostic:
    """One structured problem observed during a build."""

    category: str              # preprocess|lex|parse|sema|link|command
    message: str
    file: str = ""             # source file (or module path for links)
    line: int = 0
    column: int = 0
    severity: str = ERROR

    def __str__(self) -> str:
        location = self.file
        if self.line:
            location += f":{self.line}:{self.column}"
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.severity}: [{self.category}] {self.message}"


@dataclasses.dataclass
class UnitOutcome:
    """What happened to one translation unit."""

    source_path: str
    object_path: str
    status: str                # OK | DEGRADED | FAILED
    command: str = ""
    diagnostics: list[BuildDiagnostic] = \
        dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status != FAILED


@dataclasses.dataclass
class BuildReport:
    """Per-unit outcomes plus link diagnostics for one build."""

    policy: str = FAIL_FAST
    outcomes: list[UnitOutcome] = dataclasses.field(default_factory=list)
    link_diagnostics: list[BuildDiagnostic] = \
        dataclasses.field(default_factory=list)

    # -- views ----------------------------------------------------------------

    @property
    def ok_units(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status == OK]

    @property
    def degraded_units(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status == DEGRADED]

    @property
    def failed_units(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def diagnostics(self) -> list[BuildDiagnostic]:
        """Every diagnostic, unit-level first, in observation order."""
        collected = [d for o in self.outcomes for d in o.diagnostics]
        collected.extend(self.link_diagnostics)
        return collected

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == ERROR)

    @property
    def partial(self) -> bool:
        """True when the build dropped information (failed units)."""
        return bool(self.failed_units)

    def outcome_for(self, source_path: str) -> UnitOutcome | None:
        for outcome in self.outcomes:
            if outcome.source_path == source_path:
                return outcome
        return None

    def summary(self) -> str:
        return (f"{len(self.ok_units)} ok, "
                f"{len(self.degraded_units)} degraded, "
                f"{len(self.failed_units)} failed "
                f"({self.error_count} errors)")


class Build:
    """A whole build: shared registry, objects, modules, report.

    ``policy`` is :data:`FAIL_FAST` (default; first front-end or link
    error propagates as its original exception) or :data:`KEEP_GOING`
    (errors become diagnostics; ``max_errors`` bounds how many before
    a :class:`BuildDiagnosticError` stops the build).
    """

    def __init__(self, filesystem: VirtualFileSystem,
                 include_paths=(), defines=None,
                 ignore_missing_includes: bool = False,
                 policy: str = FAIL_FAST,
                 max_errors: int | None = None,
                 jobs: int = 1) -> None:
        if policy not in (FAIL_FAST, KEEP_GOING):
            raise BuildError(f"unknown failure policy {policy!r}")
        if max_errors is not None and max_errors < 0:
            raise BuildError("max_errors must be non-negative")
        if jobs < 1:
            raise BuildError("jobs must be >= 1")
        self.filesystem = filesystem
        self.registry = FileRegistry(filesystem)
        self.include_paths = list(include_paths)
        self.defines = dict(defines or {})
        self.ignore_missing_includes = ignore_missing_includes
        self.policy = policy
        self.max_errors = max_errors
        self.jobs = jobs
        self.objects: dict[str, compiler.ObjectFile] = {}
        self.modules: list[linker.Module] = []
        self.report = BuildReport(policy=policy)

    # -- public API ------------------------------------------------------------

    def run_script(self, script: str) -> BuildReport:
        """Replay a build script: one command per line, ``#`` comments.

        With ``jobs > 1``, consecutive compile-only commands run as a
        parallel wave; the merge is deterministic (see module
        docstring), so the resulting build state is identical to a
        serial replay.
        """
        commands = [line.strip() for line in script.splitlines()
                    if line.strip() and not line.strip().startswith("#")]
        if self.jobs <= 1:
            for command in commands:
                self.run(command)
            return self.report
        wave: list[compiler.CompilerInvocation] = []
        for command in commands:
            try:
                invocation = compiler.parse_command_line(command)
            except BuildError as error:
                self._flush_wave(wave)
                self._command_failure(command, error)
                continue
            if invocation.compile_only:
                wave.append(invocation)
            else:
                # links consume prior objects: a barrier
                self._flush_wave(wave)
                self._link(invocation)
        self._flush_wave(wave)
        return self.report

    def run(self, command: str) -> None:
        """Replay one intercepted compiler/linker command line."""
        try:
            invocation = compiler.parse_command_line(command)
        except BuildError as error:
            self._command_failure(command, error)
            return
        if invocation.compile_only:
            for source in invocation.sources:
                self._compile(source, invocation.object_path_for(source),
                              invocation)
        else:
            self._link(invocation)

    # -- compilation -----------------------------------------------------------

    def _compile(self, source: str, object_path: str,
                 invocation: compiler.CompilerInvocation,
                 implicit: bool = False) -> compiler.ObjectFile | None:
        """Compile one unit under fault isolation; None if it failed."""
        include_paths = invocation.include_paths + self.include_paths
        defines = {**self.defines, **invocation.defines}
        try:
            obj = compiler.compile_source(
                self.registry, source, object_path,
                include_paths=include_paths, defines=defines,
                ignore_missing_includes=self.ignore_missing_includes,
                command=invocation.command, implicit=implicit)
        except FrontEndError as error:
            if self.policy == FAIL_FAST:
                raise
            self._record(UnitOutcome(
                source_path=source, object_path=object_path,
                status=FAILED, command=invocation.command,
                diagnostics=[_diagnostic_for(error, source)]))
            return None
        diagnostics = [
            BuildDiagnostic(
                category="preprocess", severity=WARNING,
                message=f"include not found: {missing.name!r}",
                file=source, line=missing.location.line,
                column=missing.location.column)
            for missing in obj.unit.missing_includes]
        self.objects[object_path] = obj
        self._record(UnitOutcome(
            source_path=source, object_path=object_path,
            status=DEGRADED if diagnostics else OK,
            command=invocation.command, diagnostics=diagnostics))
        return obj

    # -- parallel waves --------------------------------------------------------

    def _flush_wave(self,
                    wave: list[compiler.CompilerInvocation]) -> None:
        """Compile a wave of ``-c`` invocations on the process pool.

        Results merge in submission order: each unit's files intern
        into the shared registry in the worker's open order, which
        reproduces the serial file-id assignment exactly; worker-local
        ids inside the returned objects are then rewritten to match.
        """
        if not wave:
            return
        jobs: list[parallel.CompileJob] = []
        invocations: list[compiler.CompilerInvocation] = []
        for invocation in wave:
            include_paths = invocation.include_paths + \
                self.include_paths
            defines = {**self.defines, **invocation.defines}
            for source in invocation.sources:
                jobs.append(parallel.CompileJob(
                    source=source,
                    object_path=invocation.object_path_for(source),
                    include_paths=tuple(include_paths),
                    defines=tuple(defines.items()),
                    command=invocation.command))
                invocations.append(invocation)
        wave.clear()
        results = parallel.run_jobs(jobs, self.jobs, self.filesystem,
                                    self.ignore_missing_includes)
        for job, invocation, result in zip(jobs, invocations, results):
            self._merge_result(job, invocation, result)

    def _merge_result(self, job: parallel.CompileJob,
                      invocation: compiler.CompilerInvocation,
                      result: parallel.JobResult) -> None:
        """Fold one worker result into the build, as _compile would."""
        mapping = {
            worker_id: self.registry.open(path).file_id
            for worker_id, path in enumerate(result.opened_paths)}
        if result.failure is not None:
            error = result.failure.rebuild()
            if self.policy == FAIL_FAST:
                raise error
            self._record(UnitOutcome(
                source_path=job.source, object_path=job.object_path,
                status=FAILED, command=invocation.command,
                diagnostics=[_diagnostic_for(error, job.source)]))
            return
        obj = result.object_file
        parallel.remap_file_ids([obj], mapping)
        diagnostics = [
            BuildDiagnostic(
                category="preprocess", severity=WARNING,
                message=f"include not found: {missing.name!r}",
                file=job.source, line=missing.location.line,
                column=missing.location.column)
            for missing in obj.unit.missing_includes]
        self.objects[job.object_path] = obj
        self._record(UnitOutcome(
            source_path=job.source, object_path=job.object_path,
            status=DEGRADED if diagnostics else OK,
            command=invocation.command, diagnostics=diagnostics))

    # -- linking ---------------------------------------------------------------

    def _link(self, invocation: compiler.CompilerInvocation) -> None:
        output = invocation.output or "a.out"
        objects: list[compiler.ObjectFile] = []
        implicit_paths: list[str] = []
        missing: list[str] = []
        for kind, path in invocation.inputs:
            if kind == "source":
                # compiled inline on the link line — the paper's
                # Figure 2 `gcc main.c foo.o -o prog` case
                object_path = invocation.object_path_for(path)
                obj = self._compile(path, object_path, invocation,
                                    implicit=True)
                if obj is not None:
                    objects.append(obj)
                    implicit_paths.append(object_path)
                else:
                    missing.append(object_path)
            else:
                obj = self.objects.get(path)
                if obj is not None:
                    objects.append(obj)
                    continue
                if self.policy == FAIL_FAST:
                    raise LinkError(
                        f"unknown object file {path!r} on link line "
                        f"{invocation.command!r}")
                missing.append(path)
                self.report.link_diagnostics.append(BuildDiagnostic(
                    category="link", severity=WARNING,
                    message=f"skipping missing object {path!r} "
                            "(its compile failed or never ran)",
                    file=output))
        module, issues = linker.link_module(
            output, objects, implicit_object_paths=implicit_paths,
            libraries=invocation.libraries, missing_object_paths=missing)
        for issue in issues:
            if issue.severity == linker.ERROR and \
                    self.policy == FAIL_FAST:
                raise LinkError(issue.message)
            self.report.link_diagnostics.append(BuildDiagnostic(
                category="link", severity=issue.severity,
                message=issue.message, file=output))
        self.modules.append(module)
        self._check_budget()

    # -- bookkeeping -----------------------------------------------------------

    def _command_failure(self, command: str, error: BuildError) -> None:
        if self.policy == FAIL_FAST:
            raise error
        self._record(UnitOutcome(
            source_path="", object_path="", status=FAILED,
            command=command,
            diagnostics=[BuildDiagnostic(category="command",
                                         message=str(error))]))

    def _record(self, outcome: UnitOutcome) -> None:
        self.report.outcomes.append(outcome)
        self._check_budget()

    def _check_budget(self) -> None:
        if self.max_errors is None:
            return
        count = self.report.error_count
        if count > self.max_errors:
            raise BuildDiagnosticError(
                f"build stopped: {count} errors exceed the "
                f"max_errors budget of {self.max_errors}",
                diagnostics=self.report.diagnostics)


def _diagnostic_for(error: FrontEndError, source: str) -> BuildDiagnostic:
    for error_type, category in _CATEGORY_BY_ERROR:
        if isinstance(error, error_type):
            break
    else:  # pragma: no cover - FrontEndError is the catch-all above
        category = "frontend"
    return BuildDiagnostic(
        category=category,
        message=getattr(error, "message", str(error)),
        file=error.filename or source, line=error.line,
        column=error.column)
