"""Cross-translation-unit symbol resolution (the linker simulator).

Mirrors what the paper's ``ld`` wrapper learns: which objects make up a
module, in what order, and how every external reference pairs with an
external definition.  The extractor turns these :class:`Resolution`
records into ``link_declares`` and ``link_matches`` edges (Table 1).

Like :mod:`repro.build.compiler`, this module is policy-free: it never
raises for link *anomalies*.  Duplicate definitions and undefined
references are reported as :class:`LinkIssue` records and the caller
(:mod:`repro.build.buildsys`) decides — under ``fail_fast`` a
duplicate-definition issue becomes a :class:`~repro.errors.LinkError`,
under ``keep_going`` it is a diagnostic and the first definition wins.
Undefined references are always survivable: a virtual build has no
libc, so unresolved ``printf`` must not sink the module.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.build.compiler import ObjectFile
from repro.lang.sema import Symbol

#: LinkIssue severities.
ERROR = "error"
WARNING = "warning"


@dataclasses.dataclass
class Resolution:
    """One external name resolved inside a module.

    ``references`` may be empty: an exported definition nobody links
    against still yields a ``link_declares`` edge from the module.
    """

    definition: Symbol
    references: list[tuple[Symbol, ObjectFile]] = \
        dataclasses.field(default_factory=list)


@dataclasses.dataclass
class LinkIssue:
    """A link-time anomaly, reported instead of raised."""

    severity: str              # ERROR or WARNING
    message: str
    symbol: str = ""
    object_path: str = ""


@dataclasses.dataclass
class Module:
    """One linked output (executable, ``.o`` treated as module, lib)."""

    path: str
    objects: list[ObjectFile]
    implicit_object_paths: set[str]
    libraries: list[str]
    resolutions: dict[str, Resolution]
    undefined: dict[str, list[tuple[Symbol, ObjectFile]]] = \
        dataclasses.field(default_factory=dict)
    #: objects named on the link line whose compile failed (keep_going
    #: builds link what survived; this records what was skipped)
    missing_object_paths: list[str] = \
        dataclasses.field(default_factory=list)

    @property
    def partial(self) -> bool:
        return bool(self.missing_object_paths)


def link_module(path: str, objects: Iterable[ObjectFile],
                implicit_object_paths: Iterable[str] = (),
                libraries: Iterable[str] = (),
                missing_object_paths: Iterable[str] = (),
                ) -> tuple[Module, list[LinkIssue]]:
    """Resolve external symbols across ``objects``; first-wins merge.

    Returns the module plus every anomaly observed.  Never raises.
    """
    objects = list(objects)
    issues: list[LinkIssue] = []
    exported: dict[str, tuple[Symbol, ObjectFile]] = {}
    for obj in objects:
        for name, symbol in obj.info.exported.items():
            previous = exported.get(name)
            if previous is not None:
                issues.append(LinkIssue(
                    ERROR,
                    f"duplicate definition of '{name}' in "
                    f"{obj.source_path} (first defined in "
                    f"{previous[1].source_path})",
                    symbol=name, object_path=obj.path))
                continue
            exported[name] = (symbol, obj)
    resolutions = {name: Resolution(definition=symbol)
                   for name, (symbol, _obj) in exported.items()}
    undefined: dict[str, list[tuple[Symbol, ObjectFile]]] = {}
    for obj in objects:
        for name, symbol in obj.info.imported.items():
            resolution = resolutions.get(name)
            if resolution is None:
                undefined.setdefault(name, []).append((symbol, obj))
                continue
            resolution.references.append((symbol, obj))
    for name, references in undefined.items():
        issues.append(LinkIssue(
            WARNING, f"undefined reference to '{name}'", symbol=name,
            object_path=references[0][1].path))
    module = Module(path=path, objects=objects,
                    implicit_object_paths=set(implicit_object_paths),
                    libraries=list(libraries), resolutions=resolutions,
                    undefined=undefined,
                    missing_object_paths=list(missing_object_paths))
    return module, issues
