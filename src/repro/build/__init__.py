"""Build-system integration substrate (paper Section 3).

The paper's extractor rides a *drop-in* build integration: wrapper
scripts impersonate ``gcc``/``ld``, so indexing a codebase is exactly
``make`` with ``CC`` pointed at the wrapper.  This package reproduces
that layer for the offline toolchain:

* :mod:`~repro.build.compiler` — a gcc-like driver: parse real command
  lines, run the C front end per translation unit, produce "object
  files" (per-unit symbol/AST/preprocessor bundles),
* :mod:`~repro.build.linker` — cross-TU symbol resolution; produces the
  modules and resolutions behind ``link_declares`` / ``link_matches`` /
  ``linked_from`` edges,
* :mod:`~repro.build.buildsys` — the declarative build replayer:
  :class:`Build` consumes a script of compiler command lines (the
  paper's intercepted build) and accumulates objects and modules.

Robustness is a first-class concern: one broken translation unit must
not abort a multi-hour index build.  Every compile step runs under
per-unit fault isolation; front-end failures become structured
:class:`~repro.build.buildsys.BuildDiagnostic` entries in a
:class:`~repro.build.buildsys.BuildReport`, and the failure policy
(``fail_fast`` vs ``keep_going`` with an error budget) decides whether
a diagnostic is fatal.  Under ``keep_going`` the linker links whatever
object graphs survived so the extractor can still emit a
partial-but-valid dependency graph.
"""

from repro.build.buildsys import (Build, BuildDiagnostic, BuildReport,
                                  FAIL_FAST, KEEP_GOING, UnitOutcome)
from repro.build.compiler import CompilerInvocation, ObjectFile
from repro.build.linker import Module, Resolution

__all__ = ["Build", "BuildDiagnostic", "BuildReport", "CompilerInvocation",
           "FAIL_FAST", "KEEP_GOING", "Module", "ObjectFile", "Resolution",
           "UnitOutcome"]
