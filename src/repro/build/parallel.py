"""Parallel compilation of translation units with deterministic merge.

The front end is CPU-bound pure Python, so the only way to use more
than one core on an 11.4 MLoC tree is a **process** pool.  The design
constraint is determinism: a parallel build must produce *exactly* the
graph a serial build produces, file ids included.  That hinges on two
facts:

* Preprocessing one unit is deterministic, so a worker compiling
  against a **fresh** :class:`~repro.lang.source.FileRegistry` opens
  the same files in the same relative order a serial build would while
  compiling that unit.  The worker reports that open order as
  ``opened_paths``.
* The parent merges results in **submission order** and interns each
  worker's ``opened_paths`` into the shared registry in order.
  ``FileRegistry.open`` is idempotent, so first-opens land in the same
  global order as a serial build — the serial id assignment exactly.

What remains is translating worker-local file ids (dense from 0 in
each worker) to the parent's ids: :func:`remap_file_ids` walks the
returned object graph once per unit and rewrites every ``*file_id``
field in place (``object.__setattr__`` reaches through frozen
dataclasses like :class:`~repro.lang.source.SourceLocation`).

Failures cannot cross the process boundary as exceptions —
:class:`~repro.errors.FrontEndError` formats its location into
``args``, so pickling round-trips it unfaithfully.  Workers therefore
return a structured :class:`UnitFailure` and the parent reconstructs
the exact exception class and fields, which keeps ``fail_fast`` (the
original exception type propagates) and ``keep_going`` (diagnostics
carry file/line/column) behaviour identical to a serial build.

When a process pool cannot be created (sandboxed environments) the
batch silently degrades to in-process compilation through the same
merge path — slower, never different.
"""

from __future__ import annotations

import dataclasses
import pickle
import re
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterable

from repro.build import compiler
from repro.lang.source import FileRegistry, VirtualFileSystem
from repro import errors
from repro.errors import FrontEndError


@dataclasses.dataclass(frozen=True)
class CompileJob:
    """One translation unit to compile, fully self-describing."""

    source: str
    object_path: str
    include_paths: tuple[str, ...]
    defines: tuple[tuple[str, str], ...]
    command: str
    implicit: bool = False


@dataclasses.dataclass(frozen=True)
class UnitFailure:
    """A front-end error, flattened for faithful IPC transport."""

    error_type: str            # class name in repro.errors
    message: str
    filename: str
    line: int
    column: int

    @classmethod
    def of(cls, error: FrontEndError) -> "UnitFailure":
        return cls(error_type=type(error).__name__,
                   message=error.message, filename=error.filename,
                   line=error.line, column=error.column)

    def rebuild(self) -> FrontEndError:
        """The original exception, byte-for-byte."""
        error_class = getattr(errors, self.error_type, FrontEndError)
        if not (isinstance(error_class, type)
                and issubclass(error_class, FrontEndError)):
            error_class = FrontEndError
        return error_class(self.message, self.filename, self.line,
                           self.column)


@dataclasses.dataclass
class JobResult:
    """What one worker sends back for one unit."""

    #: every file the worker's fresh registry opened, in id order —
    #: the parent replays these opens to reproduce serial ids
    opened_paths: list[str]
    object_file: compiler.ObjectFile | None = None
    failure: UnitFailure | None = None


# -- worker side (runs in the pool processes) --------------------------

_WORKER_STATE: tuple[VirtualFileSystem, bool] | None = None


def _init_worker(filesystem: VirtualFileSystem,
                 ignore_missing_includes: bool) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (filesystem, ignore_missing_includes)


def _compile_job(job: CompileJob) -> JobResult:
    assert _WORKER_STATE is not None, "pool initializer did not run"
    filesystem, ignore_missing_includes = _WORKER_STATE
    registry = FileRegistry(filesystem)
    try:
        obj = compiler.compile_source(
            registry, job.source, job.object_path,
            include_paths=list(job.include_paths),
            defines=dict(job.defines),
            ignore_missing_includes=ignore_missing_includes,
            command=job.command, implicit=job.implicit)
    except FrontEndError as error:
        return JobResult(
            opened_paths=[f.path for f in registry.known_files()],
            failure=UnitFailure.of(error))
    return JobResult(
        opened_paths=[f.path for f in registry.known_files()],
        object_file=obj)


def run_jobs(jobs: list[CompileJob], workers: int,
             filesystem: VirtualFileSystem,
             ignore_missing_includes: bool) -> list[JobResult]:
    """Compile *jobs*, results in submission order.

    Uses a process pool of ``workers``; degrades to in-process serial
    compilation when the pool cannot be created or breaks (the result
    is identical either way, only slower).
    """
    if workers <= 1 or len(jobs) <= 1:
        return _run_serial(jobs, filesystem, ignore_missing_includes)
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)),
                initializer=_init_worker,
                initargs=(filesystem, ignore_missing_includes)) as pool:
            return list(pool.map(_compile_job, jobs))
    except (OSError, BrokenProcessPool, pickle.PicklingError):
        return _run_serial(jobs, filesystem, ignore_missing_includes)


def _run_serial(jobs: list[CompileJob],
                filesystem: VirtualFileSystem,
                ignore_missing_includes: bool) -> list[JobResult]:
    _init_worker(filesystem, ignore_missing_includes)
    return [_compile_job(job) for job in jobs]


# -- parent side: id translation ---------------------------------------

#: scalar types the walk never descends into
_LEAVES = (int, float, complex, str, bytes, bool, type(None))

#: location-based typedef USRs (sema) bake the defining file's id into
#: a *string*: ``c:t@<file_id>:<line>@<name>``.  The extractor dedupes
#: shared-header typedefs on it, so it must be translated too.
_TYPEDEF_USR = re.compile(r"^c:t@(\d+):")


def _remap_usr(usr: str, mapping: dict[int, int]) -> str:
    match = _TYPEDEF_USR.match(usr)
    if match is None:
        return usr
    file_id = int(match.group(1))
    return f"c:t@{mapping.get(file_id, file_id)}:" + usr[match.end():]


def remap_file_ids(roots: Iterable[Any],
                   mapping: dict[int, int]) -> None:
    """Rewrite every ``*file_id`` field reachable from *roots*.

    One pass with one visited set: objects shared between roots (a
    token in both the unit and a symbol range) are remapped exactly
    once, which matters because ``mapping`` is not idempotent.
    Mutates in place, reaching through frozen dataclasses.
    """
    if not mapping or all(old == new for old, new in mapping.items()):
        return
    seen: set[int] = set()
    stack: list[Any] = [root for root in roots if root is not None]
    while stack:
        obj = stack.pop()
        if isinstance(obj, _LEAVES):
            continue
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name, None)
                if field.name.endswith("file_id") \
                        and isinstance(value, int):
                    object.__setattr__(obj, field.name,
                                       mapping.get(value, value))
                elif field.name.endswith("file_ids") \
                        and isinstance(value, list):
                    value[:] = [mapping.get(v, v) for v in value]
                elif field.name == "usr" and isinstance(value, str):
                    object.__setattr__(obj, field.name,
                                       _remap_usr(value, mapping))
                else:
                    stack.append(value)
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
