"""C abstract syntax tree.

Every node carries enough location information for the extractor to
fill Table 2's USE_*/NAME_* edge properties: declarations carry the
range of their name token, expressions carry the range of the whole
expression plus (where relevant) the representative name token.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.lang.ctypes_ import CType
from repro.lang.source import SourceRange


class Node:
    """Marker base class for AST nodes."""


class Stmt(Node):
    """Marker base class for statements."""


class Expr(Node):
    """Marker base class for expressions; all carry a source range."""

    range: SourceRange


class Decl(Node):
    """Marker base class for declarations."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclasses.dataclass
class Identifier(Expr):
    name: str
    range: SourceRange
    in_macro: bool = False
    symbol: Any = None  # filled by sema


@dataclasses.dataclass
class IntLiteral(Expr):
    value: int
    range: SourceRange


@dataclasses.dataclass
class FloatLiteral(Expr):
    value: float
    range: SourceRange


@dataclasses.dataclass
class CharLiteral(Expr):
    value: int
    range: SourceRange


@dataclasses.dataclass
class StringLiteral(Expr):
    value: str
    range: SourceRange


@dataclasses.dataclass
class Call(Expr):
    callee: Expr
    arguments: list[Expr]
    range: SourceRange


@dataclasses.dataclass
class Member(Expr):
    """``base.name`` or ``base->name`` (arrow=True)."""

    base: Expr
    name: str
    arrow: bool
    range: SourceRange           # whole expression
    name_range: SourceRange      # the member name token
    resolved_field: Any = None   # filled by sema when the record is known


@dataclasses.dataclass
class Index(Expr):
    base: Expr
    index: Expr
    range: SourceRange


@dataclasses.dataclass
class Unary(Expr):
    """op in ``& * + - ! ~ ++ -- post++ post-- sizeof _Alignof``."""

    op: str
    operand: Expr
    range: SourceRange


@dataclasses.dataclass
class SizeofType(Expr):
    """``sizeof(T)`` / ``_Alignof(T)`` with a type operand."""

    op: str  # 'sizeof' | '_Alignof'
    type: CType
    range: SourceRange


@dataclasses.dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    range: SourceRange


@dataclasses.dataclass
class Assignment(Expr):
    """op in ``= += -= *= /= %= &= |= ^= <<= >>=``."""

    op: str
    target: Expr
    value: Expr
    range: SourceRange


@dataclasses.dataclass
class Conditional(Expr):
    condition: Expr
    then_value: Expr
    else_value: Expr
    range: SourceRange


@dataclasses.dataclass
class Cast(Expr):
    type: CType
    operand: Expr
    range: SourceRange


@dataclasses.dataclass
class Comma(Expr):
    left: Expr
    right: Expr
    range: SourceRange


@dataclasses.dataclass
class InitList(Expr):
    items: list[Expr]
    range: SourceRange


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclasses.dataclass
class CompoundStmt(Stmt):
    body: list[Node]  # statements and DeclStmts


@dataclasses.dataclass
class ExprStmt(Stmt):
    expression: Expr


@dataclasses.dataclass
class EmptyStmt(Stmt):
    pass


@dataclasses.dataclass
class IfStmt(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt]


@dataclasses.dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: Stmt


@dataclasses.dataclass
class DoStmt(Stmt):
    body: Stmt
    condition: Expr


@dataclasses.dataclass
class ForStmt(Stmt):
    init: Optional[Node]  # DeclStmt or ExprStmt or None
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclasses.dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclasses.dataclass
class BreakStmt(Stmt):
    pass


@dataclasses.dataclass
class ContinueStmt(Stmt):
    pass


@dataclasses.dataclass
class GotoStmt(Stmt):
    label: str


@dataclasses.dataclass
class LabelStmt(Stmt):
    label: str
    body: Stmt


@dataclasses.dataclass
class CaseStmt(Stmt):
    value: Optional[Expr]  # None = default
    body: Optional[Stmt]


@dataclasses.dataclass
class SwitchStmt(Stmt):
    condition: Expr
    body: Stmt


@dataclasses.dataclass
class DeclStmt(Stmt):
    declarations: list["VarDecl"]


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------

@dataclasses.dataclass
class ParamDecl(Decl):
    name: Optional[str]
    type: CType
    name_range: Optional[SourceRange]
    position: int


@dataclasses.dataclass
class FunctionDecl(Decl):
    """A function prototype (no body)."""

    name: str
    type: CType  # FunctionType
    parameters: list[ParamDecl]
    storage: Optional[str]  # 'static' | 'extern' | None
    inline: bool
    variadic: bool
    name_range: SourceRange
    in_macro: bool = False


@dataclasses.dataclass
class FunctionDef(Decl):
    """A function definition with a body."""

    name: str
    type: CType
    parameters: list[ParamDecl]
    storage: Optional[str]
    inline: bool
    variadic: bool
    name_range: SourceRange
    body: CompoundStmt
    in_macro: bool = False
    body_end_line: int = 0  # last line of the body, for extent queries


@dataclasses.dataclass
class VarDecl(Decl):
    """A variable: global, local, parameter shadow, or static local."""

    name: str
    type: CType
    storage: Optional[str]
    initializer: Optional[Expr]
    name_range: SourceRange
    is_file_scope: bool
    in_macro: bool = False


@dataclasses.dataclass
class FieldDecl(Decl):
    name: Optional[str]  # None for anonymous members
    type: CType
    bit_width: Optional[int]
    name_range: Optional[SourceRange]


@dataclasses.dataclass
class RecordDecl(Decl):
    """struct/union declaration or definition."""

    kind: str  # 'struct' | 'union'
    tag: Optional[str]
    fields: Optional[list[FieldDecl]]  # None = forward declaration
    name_range: Optional[SourceRange]
    in_macro: bool = False

    @property
    def is_definition(self) -> bool:
        return self.fields is not None


@dataclasses.dataclass
class EnumeratorDecl(Decl):
    name: str
    value_expr: Optional[Expr]
    value: Optional[int]  # computed when constant
    name_range: SourceRange


@dataclasses.dataclass
class EnumDecl(Decl):
    tag: Optional[str]
    enumerators: Optional[list[EnumeratorDecl]]  # None = forward decl
    name_range: Optional[SourceRange]
    in_macro: bool = False

    @property
    def is_definition(self) -> bool:
        return self.enumerators is not None


@dataclasses.dataclass
class TypedefDecl(Decl):
    name: str
    type: CType
    name_range: SourceRange
    in_macro: bool = False


@dataclasses.dataclass
class TranslationUnit(Node):
    """All top-level declarations of one preprocessed compilation unit."""

    path: str
    declarations: list[Decl]


def walk_expressions(node: Node):
    """Yield every expression nested under *node*, depth first."""
    stack: list[Any] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Expr):
            yield current
        if dataclasses.is_dataclass(current) and not isinstance(current,
                                                                type):
            for field in dataclasses.fields(current):
                value = getattr(current, field.name)
                if isinstance(value, Node):
                    stack.append(value)
                elif isinstance(value, list):
                    stack.extend(item for item in value
                                 if isinstance(item, Node))
