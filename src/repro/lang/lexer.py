"""The C tokenizer.

Produces a flat token list with 1-based line/column positions.
Backslash-newline continuations are spliced (positions stay physical),
comments are dropped, and ``#`` at the start of a logical line marks a
preprocessor directive — the preprocessor consumes those tokens before
the parser ever sees them.

Tokens carry an optional ``from_macro`` field filled in by the
preprocessor when a token is the product of a macro expansion; the
extractor turns that into the ``IN_MACRO`` node property and
``expands_macro`` edges (paper Tables 1–2).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro.errors import LexError
from repro.lang.source import SourceLocation

# token kinds
IDENT = "ident"
NUMBER = "number"
CHAR = "char"
STRING = "string"
PUNCT = "punct"
DIRECTIVE_HASH = "hash"  # '#' introducing a directive
EOF = "eof"

KEYWORDS = frozenset("""
auto break case char const continue default do double else enum extern
float for goto if inline int long register restrict return short signed
sizeof static struct switch typedef union unsigned void volatile while
_Bool _Alignof _Alignas _Static_assert _Noreturn
""".split())

#: longest-first punctuation, per C11 (minus digraphs).
PUNCTUATION = (
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "*=", "/=", "%=", "+=", "-=", "&=", "^=", "|=", "##",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<blockcomment>/\*.*?\*/)
  | (?P<linecomment>//[^\n]*)
  | (?P<newline>\n)
  | (?P<ws>[ \t\r\f\v]+)
  | (?P<number>
        (?:0[xX][0-9a-fA-F]+|0[bB][01]+|\d+\.\d*(?:[eE][+-]?\d+)?
         |\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
        [uUlLfF]*)
  | (?P<char>L?'(?:[^'\\\n]|\\.)*')
  | (?P<string>L?"(?:[^"\\\n]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in PUNCTUATION) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str
    text: str
    file_id: int
    line: int
    column: int
    at_line_start: bool = False
    from_macro: Optional[str] = None

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.file_id, self.line, self.column)

    @property
    def end_column(self) -> int:
        return self.column + len(self.text) - 1

    @property
    def is_keyword(self) -> bool:
        return self.kind == IDENT and self.text in KEYWORDS

    def with_macro(self, macro: str) -> "Token":
        return dataclasses.replace(self, from_macro=macro)

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.column})"


def tokenize(text: str, file_id: int) -> list[Token]:
    """Tokenize a whole file; backslash-newlines are spliced first."""
    # Splice line continuations but keep physical line numbers by
    # replacing '\\\n' with a marker that advances the line counter.
    tokens: list[Token] = []
    line = 1
    line_start_offset = 0
    at_line_start = True
    position = 0
    text = text.replace("\\\r\n", "\\\n")
    while position < len(text):
        if text.startswith("\\\n", position):
            position += 2
            line += 1
            line_start_offset = position
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise LexError(f"invalid character {text[position]!r}",
                           line=line,
                           column=position - line_start_offset + 1)
        kind = match.lastgroup or ""
        lexeme = match.group()
        column = position - line_start_offset + 1
        if kind == "newline":
            line += 1
            line_start_offset = match.end()
            at_line_start = True
        elif kind in ("ws", "linecomment"):
            pass
        elif kind == "blockcomment":
            newlines = lexeme.count("\n")
            if newlines:
                line += newlines
                line_start_offset = position + lexeme.rfind("\n") + 1
        else:
            token_kind = kind
            if kind == "punct" and lexeme == "#" and at_line_start:
                token_kind = DIRECTIVE_HASH
            tokens.append(Token(token_kind, lexeme, file_id, line, column,
                                at_line_start))
            at_line_start = False
        position = match.end()
    tokens.append(Token(EOF, "", file_id, line,
                        len(text) - line_start_offset + 1, at_line_start))
    return tokens


def parse_int_literal(text: str) -> int:
    """Numeric value of a C integer literal (suffixes stripped)."""
    body = text.rstrip("uUlL")
    try:
        if body.lower().startswith("0x"):
            return int(body, 16)
        if body.lower().startswith("0b"):
            return int(body, 2)
        if body.startswith("0") and len(body) > 1 and body.isdigit():
            return int(body, 8)
        return int(body)
    except ValueError:
        raise LexError(f"bad integer literal {text!r}") from None


def parse_char_literal(text: str) -> int:
    """Numeric value of a C character literal."""
    body = text[2:-1] if text.startswith("L") else text[1:-1]
    if body.startswith("\\"):
        escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
                   '"': 34, "a": 7, "b": 8, "f": 12, "v": 11}
        if body[1] in escapes:
            return escapes[body[1]]
        if body[1] == "x":
            return int(body[2:], 16)
        if body[1].isdigit():
            return int(body[1:], 8)
        raise LexError(f"bad escape in char literal {text!r}")
    if len(body) != 1:
        raise LexError(f"bad char literal {text!r}")
    return ord(body)


def is_float_literal(text: str) -> bool:
    body = text.rstrip("uUlLfF")
    return "." in body or (("e" in body.lower())
                           and not body.lower().startswith("0x"))


def string_literal_value(text: str) -> str:
    """Decoded value of a C string literal."""
    body = text[2:-1] if text.startswith("L") else text[1:-1]
    escapes = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
               "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f",
               "v": "\v"}

    def replace(match: re.Match[str]) -> str:
        char = match.group(1)
        if char in escapes:
            return escapes[char]
        if char == "x":
            return chr(int(match.group(2), 16))
        return char

    return re.sub(r"\\(x)([0-9a-fA-F]+)|\\(.)",
                  lambda m: (chr(int(m.group(2), 16)) if m.group(1)
                             else escapes.get(m.group(3), m.group(3))),
                  body)
