"""The C preprocessor, with provenance events.

Beyond producing the expanded token stream for the parser, the
preprocessor records everything the dependency graph model needs
(paper Tables 1–2):

* ``IncludeEvent`` — one per processed ``#include`` (the ``includes``
  edges),
* ``MacroDefinition`` — one per ``#define`` (the ``macro`` nodes),
* ``ExpansionEvent`` — one per macro expansion, with the source range
  of the invocation (the ``expands_macro`` edges; tokens produced by
  an expansion are tagged ``from_macro`` so entities created from them
  get the ``IN_MACRO`` property),
* ``InterrogationEvent`` — one per ``#ifdef``/``#ifndef``/``defined``
  check (the ``interrogates_macro`` edges).

Supported directives: ``include`` (quoted and angled), ``define``
(object- and function-like, ``...``/``__VA_ARGS__``, ``#`` stringify,
``##`` paste), ``undef``, ``if``/``elif``/``else``/``endif``,
``ifdef``/``ifndef``, ``error``, ``warning``, ``pragma``, ``line``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.errors import PreprocessorError
from repro.lang import lexer
from repro.lang.lexer import DIRECTIVE_HASH, EOF, IDENT, NUMBER, PUNCT, Token
from repro.lang.source import FileRegistry, SourceFile, SourceLocation, SourceRange

_MAX_INCLUDE_DEPTH = 200


# --------------------------------------------------------------------------
# Events
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class IncludeEvent:
    including_file_id: int
    included_file_id: int
    location: SourceLocation
    angled: bool


@dataclasses.dataclass(frozen=True)
class MissingIncludeEvent:
    including_file_id: int
    name: str
    location: SourceLocation
    angled: bool


@dataclasses.dataclass
class MacroDefinition:
    name: str
    parameters: Optional[tuple[str, ...]]  # None = object-like
    variadic: bool
    body: tuple[Token, ...]
    location: SourceLocation
    name_range: SourceRange

    @property
    def is_function_like(self) -> bool:
        return self.parameters is not None


@dataclasses.dataclass(frozen=True)
class ExpansionEvent:
    macro_name: str
    use_range: SourceRange
    parent_macro: Optional[str]  # set when expanded from another macro


@dataclasses.dataclass(frozen=True)
class InterrogationEvent:
    macro_name: str
    use_range: SourceRange


@dataclasses.dataclass
class PreprocessedUnit:
    """Everything the preprocessor learned about one compilation unit."""

    main_file: SourceFile
    tokens: list[Token]
    includes: list[IncludeEvent]
    missing_includes: list[MissingIncludeEvent]
    macro_definitions: list[MacroDefinition]
    expansions: list[ExpansionEvent]
    interrogations: list[InterrogationEvent]
    included_file_ids: list[int]


# --------------------------------------------------------------------------
# Conditional-inclusion stack
# --------------------------------------------------------------------------

@dataclasses.dataclass
class _Conditional:
    parent_active: bool
    taken: bool      # some branch already taken
    active: bool     # current branch live
    saw_else: bool = False


class Preprocessor:
    """Runs one compilation unit through the preprocessor."""

    def __init__(self, registry: FileRegistry,
                 include_paths: Iterable[str] = (),
                 predefined: dict[str, str] | None = None,
                 ignore_missing_includes: bool = False) -> None:
        self.registry = registry
        self.include_paths = list(include_paths)
        self.ignore_missing_includes = ignore_missing_includes
        self._macros: dict[str, MacroDefinition] = {}
        self._predefined = dict(predefined or {})

    def preprocess(self, path: str) -> PreprocessedUnit:
        """Run one compilation unit; returns tokens plus events."""
        main = self.registry.open(path)
        self._macros = {}
        for name, replacement in self._predefined.items():
            body = tuple(token for token in
                         lexer.tokenize(replacement, main.file_id)
                         if token.kind != EOF)
            self._macros[name] = MacroDefinition(
                name, None, False, body,
                SourceLocation(main.file_id, 0, 0),
                SourceRange(main.file_id, 0, 0, 0, 0))
        self._unit = PreprocessedUnit(main, [], [], [], [], [], [], [])
        self._cond_stack: list[_Conditional] = []
        self._process_file(main, depth=0)
        if self._cond_stack:
            raise PreprocessorError("unterminated #if",
                                    filename=main.path)
        last_line = main.line_count()
        self._unit.tokens.append(Token(EOF, "", main.file_id, last_line, 1))
        return self._unit

    # -- file / directive processing ----------------------------------------

    def _process_file(self, source: SourceFile, depth: int) -> None:
        if depth > _MAX_INCLUDE_DEPTH:
            raise PreprocessorError(
                f"include depth exceeds {_MAX_INCLUDE_DEPTH} "
                f"(missing include guard?)", filename=source.path)
        tokens = lexer.tokenize(source.content, source.file_id)
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind == EOF:
                break
            if token.kind == DIRECTIVE_HASH:
                directive, index = self._gather_directive(tokens, index + 1)
                self._handle_directive(directive, source, depth)
                continue
            if self._active():
                expanded, index = self._expand_from(tokens, index,
                                                    frozenset())
                self._unit.tokens.extend(expanded)
            else:
                index += 1
        # conditional blocks must close in the same file in practice;
        # we tolerate cross-file #endif as real preprocessors do.

    @staticmethod
    def _gather_directive(tokens: list[Token],
                          index: int) -> tuple[list[Token], int]:
        """Tokens of one directive line (after the '#')."""
        gathered: list[Token] = []
        while index < len(tokens):
            token = tokens[index]
            if token.kind == EOF or token.at_line_start:
                break
            gathered.append(token)
            index += 1
        return gathered, index

    def _handle_directive(self, directive: list[Token],
                          source: SourceFile, depth: int) -> None:
        if not directive:
            return  # null directive ('#' alone)
        head = directive[0]
        name = head.text if head.kind == IDENT else ""
        rest = directive[1:]
        if name in ("ifdef", "ifndef"):
            self._directive_ifdef(name, rest, source)
        elif name == "if":
            self._directive_if(rest, source)
        elif name == "elif":
            self._directive_elif(rest, source)
        elif name == "else":
            self._directive_else(source)
        elif name == "endif":
            self._directive_endif(source)
        elif not self._active():
            return  # remaining directives only matter in live branches
        elif name == "include":
            self._directive_include(rest, source, depth)
        elif name == "define":
            self._directive_define(rest, source)
        elif name == "undef":
            if rest and rest[0].kind == IDENT:
                self._macros.pop(rest[0].text, None)
        elif name == "error":
            message = " ".join(token.text for token in rest)
            raise PreprocessorError(f"#error {message}",
                                    filename=source.path, line=head.line)
        elif name in ("pragma", "warning", "line", "ident"):
            pass  # accepted and ignored
        else:
            raise PreprocessorError(f"unknown directive #{name}",
                                    filename=source.path, line=head.line)

    # -- conditionals ----------------------------------------------------------

    def _active(self) -> bool:
        return all(cond.active for cond in self._cond_stack)

    def _directive_ifdef(self, name: str, rest: list[Token],
                         source: SourceFile) -> None:
        parent_active = self._active()
        defined = False
        if rest and rest[0].kind == IDENT:
            macro = rest[0]
            defined = macro.text in self._macros
            if parent_active:
                self._unit.interrogations.append(InterrogationEvent(
                    macro.text, _token_range(macro)))
        value = defined if name == "ifdef" else not defined
        self._cond_stack.append(_Conditional(
            parent_active, taken=value and parent_active,
            active=value and parent_active))

    def _directive_if(self, rest: list[Token], source: SourceFile) -> None:
        parent_active = self._active()
        value = False
        if parent_active:
            value = self._evaluate_condition(rest, source) != 0
        self._cond_stack.append(_Conditional(
            parent_active, taken=value and parent_active,
            active=value and parent_active))

    def _directive_elif(self, rest: list[Token],
                        source: SourceFile) -> None:
        if not self._cond_stack:
            raise PreprocessorError("#elif without #if",
                                    filename=source.path)
        cond = self._cond_stack[-1]
        if cond.saw_else:
            raise PreprocessorError("#elif after #else",
                                    filename=source.path)
        if cond.taken or not cond.parent_active:
            cond.active = False
            return
        value = self._evaluate_condition(rest, source) != 0
        cond.active = value
        cond.taken = value

    def _directive_else(self, source: SourceFile) -> None:
        if not self._cond_stack:
            raise PreprocessorError("#else without #if",
                                    filename=source.path)
        cond = self._cond_stack[-1]
        if cond.saw_else:
            raise PreprocessorError("duplicate #else",
                                    filename=source.path)
        cond.saw_else = True
        cond.active = cond.parent_active and not cond.taken
        cond.taken = cond.taken or cond.active

    def _directive_endif(self, source: SourceFile) -> None:
        if not self._cond_stack:
            raise PreprocessorError("#endif without #if",
                                    filename=source.path)
        self._cond_stack.pop()

    # -- include ------------------------------------------------------------------

    def _directive_include(self, rest: list[Token], source: SourceFile,
                           depth: int) -> None:
        if not rest:
            raise PreprocessorError("#include without target",
                                    filename=source.path)
        head = rest[0]
        if head.kind == lexer.STRING:
            name = head.text[1:-1]
            angled = False
        elif head.kind == PUNCT and head.text == "<":
            parts = []
            for token in rest[1:]:
                if token.kind == PUNCT and token.text == ">":
                    break
                parts.append(token.text)
            else:
                raise PreprocessorError("unterminated <...> include",
                                        filename=source.path,
                                        line=head.line)
            name = "".join(parts)
            angled = True
        else:
            raise PreprocessorError("malformed #include",
                                    filename=source.path, line=head.line)
        resolved = self.registry.resolve_include(
            name, source.directory, self.include_paths, angled)
        if resolved is None:
            event = MissingIncludeEvent(source.file_id, name,
                                        head.location, angled)
            if self.ignore_missing_includes:
                self._unit.missing_includes.append(event)
                return
            raise PreprocessorError(f"include not found: {name!r}",
                                    filename=source.path, line=head.line)
        included = self.registry.open(resolved)
        self._unit.includes.append(IncludeEvent(
            source.file_id, included.file_id, head.location, angled))
        if included.file_id not in self._unit.included_file_ids:
            self._unit.included_file_ids.append(included.file_id)
        self._process_file(included, depth + 1)

    # -- define --------------------------------------------------------------------

    def _directive_define(self, rest: list[Token],
                          source: SourceFile) -> None:
        if not rest or rest[0].kind != IDENT:
            raise PreprocessorError("malformed #define",
                                    filename=source.path)
        name_token = rest[0]
        parameters: Optional[tuple[str, ...]] = None
        variadic = False
        body_start = 1
        # function-like only when '(' abuts the name (no whitespace):
        if (len(rest) > 1 and rest[1].kind == PUNCT and rest[1].text == "("
                and rest[1].line == name_token.line
                and rest[1].column == name_token.end_column + 1):
            names: list[str] = []
            index = 2
            if rest[index].kind == PUNCT and rest[index].text == ")":
                index += 1
            else:
                while True:
                    token = rest[index]
                    if token.kind == IDENT:
                        names.append(token.text)
                        index += 1
                    elif token.kind == PUNCT and token.text == "...":
                        variadic = True
                        index += 1
                    else:
                        raise PreprocessorError(
                            f"bad macro parameter {token.text!r}",
                            filename=source.path, line=token.line)
                    token = rest[index]
                    if token.kind == PUNCT and token.text == ",":
                        index += 1
                        continue
                    if token.kind == PUNCT and token.text == ")":
                        index += 1
                        break
                    raise PreprocessorError(
                        "expected ',' or ')' in macro parameters",
                        filename=source.path, line=token.line)
            parameters = tuple(names)
            body_start = index
        definition = MacroDefinition(
            name_token.text, parameters, variadic,
            tuple(rest[body_start:]), name_token.location,
            _token_range(name_token))
        self._macros[name_token.text] = definition
        self._unit.macro_definitions.append(definition)

    # -- macro expansion --------------------------------------------------------------

    def _expand_from(self, tokens: list[Token], index: int,
                     hide: frozenset[str]) -> tuple[list[Token], int]:
        """Expand (maybe) the token at *index*; returns output + new index."""
        token = tokens[index]
        if token.kind != IDENT:
            return [token], index + 1
        macro = self._macros.get(token.text)
        if macro is None or token.text in hide:
            return [token], index + 1
        if macro.is_function_like:
            args, variadic_arg, next_index = self._collect_arguments(
                tokens, index + 1, macro)
            if args is None:
                return [token], index + 1  # name not followed by '('
            self._record_expansion(token)
            replaced = self._substitute(macro, args, variadic_arg, token)
            rescanned = self._rescan(replaced, hide | {macro.name})
            return rescanned, next_index
        self._record_expansion(token)
        body = [_relocate(body_token, token, macro.name)
                for body_token in macro.body]
        rescanned = self._rescan(body, hide | {macro.name})
        return rescanned, index + 1

    def _rescan(self, tokens: list[Token],
                hide: frozenset[str]) -> list[Token]:
        output: list[Token] = []
        index = 0
        while index < len(tokens):
            expanded, index = self._expand_from(tokens, index, hide)
            output.extend(expanded)
        return output

    def _record_expansion(self, name_token: Token) -> None:
        self._unit.expansions.append(ExpansionEvent(
            name_token.text, _token_range(name_token),
            parent_macro=name_token.from_macro))

    def _collect_arguments(self, tokens: list[Token], index: int,
                           macro: MacroDefinition,
                           ) -> tuple[Optional[list[list[Token]]],
                                      list[list[Token]], int]:
        """Balanced argument lists after a function-like macro name."""
        if index >= len(tokens) or tokens[index].kind != PUNCT \
                or tokens[index].text != "(":
            return None, [], index
        index += 1
        args: list[list[Token]] = [[]]
        depth = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind == EOF:
                break
            if token.kind == PUNCT and token.text == "(":
                depth += 1
            elif token.kind == PUNCT and token.text == ")":
                if depth == 0:
                    index += 1
                    break
                depth -= 1
            elif token.kind == PUNCT and token.text == "," and depth == 0:
                args.append([])
                index += 1
                continue
            args[-1].append(token)
            index += 1
        else:
            raise PreprocessorError(
                f"unterminated arguments of macro {macro.name!r}")
        parameters = macro.parameters or ()
        if len(args) == 1 and not args[0] and not parameters:
            args = []
        named = args[:len(parameters)]
        while len(named) < len(parameters):
            named.append([])
        variadic_arg = args[len(parameters):] if macro.variadic else []
        if not macro.variadic and len(args) > len(parameters) \
                and parameters:
            raise PreprocessorError(
                f"macro {macro.name!r} expects {len(parameters)} "
                f"arguments, got {len(args)}")
        return named, variadic_arg, index

    def _substitute(self, macro: MacroDefinition,
                    args: list[list[Token]],
                    variadic_arg: list[list[Token]],
                    invocation: Token) -> list[Token]:
        parameters = macro.parameters or ()
        positions = {name: position
                     for position, name in enumerate(parameters)}
        expanded_args = [self._rescan(list(arg), frozenset())
                         for arg in args]
        va_tokens: list[Token] = []
        for position, arg in enumerate(variadic_arg):
            if position:
                va_tokens.append(Token(PUNCT, ",", invocation.file_id,
                                       invocation.line, invocation.column))
            va_tokens.extend(arg)
        expanded_va = self._rescan(list(va_tokens), frozenset())

        output: list[Token] = []
        body = list(macro.body)
        index = 0
        while index < len(body):
            token = body[index]
            nxt = body[index + 1] if index + 1 < len(body) else None
            # stringify
            if token.kind == PUNCT and token.text == "#" and nxt is not None \
                    and nxt.kind == IDENT and nxt.text in positions:
                raw = args[positions[nxt.text]]
                text = " ".join(item.text for item in raw)
                output.append(_relocate(
                    Token(lexer.STRING, '"' + text.replace("\\", "\\\\")
                          .replace('"', '\\"') + '"',
                          invocation.file_id, invocation.line,
                          invocation.column), invocation, macro.name))
                index += 2
                continue
            # token paste
            if nxt is not None and nxt.kind == PUNCT and nxt.text == "##":
                left_tokens = self._param_or_self(token, positions, args,
                                                  variadic_arg)
                right_token = body[index + 2] if index + 2 < len(body) \
                    else None
                if right_token is None:
                    raise PreprocessorError(
                        f"'##' at end of macro {macro.name!r}")
                right_tokens = self._param_or_self(right_token, positions,
                                                   args, variadic_arg)
                pasted = self._paste(left_tokens, right_tokens, invocation,
                                     macro.name)
                output.extend(pasted)
                index += 3
                continue
            if token.kind == IDENT and token.text in positions:
                for arg_token in expanded_args[positions[token.text]]:
                    output.append(_relocate(arg_token, invocation,
                                            macro.name))
                index += 1
                continue
            if token.kind == IDENT and token.text == "__VA_ARGS__":
                for arg_token in expanded_va:
                    output.append(_relocate(arg_token, invocation,
                                            macro.name))
                index += 1
                continue
            output.append(_relocate(token, invocation, macro.name))
            index += 1
        return output

    @staticmethod
    def _param_or_self(token: Token, positions: dict[str, int],
                       args: list[list[Token]],
                       variadic_arg: list[list[Token]]) -> list[Token]:
        if token.kind == IDENT and token.text in positions:
            return list(args[positions[token.text]])
        if token.kind == IDENT and token.text == "__VA_ARGS__":
            flattened: list[Token] = []
            for arg in variadic_arg:
                flattened.extend(arg)
            return flattened
        return [token]

    @staticmethod
    def _paste(left: list[Token], right: list[Token], invocation: Token,
               macro_name: str) -> list[Token]:
        if not left:
            return [_relocate(token, invocation, macro_name)
                    for token in right]
        if not right:
            return [_relocate(token, invocation, macro_name)
                    for token in left]
        glued_text = left[-1].text + right[0].text
        relexed = [token for token in
                   lexer.tokenize(glued_text, invocation.file_id)
                   if token.kind != EOF]
        result = [_relocate(token, invocation, macro_name)
                  for token in left[:-1]]
        result.extend(_relocate(token, invocation, macro_name)
                      for token in relexed)
        result.extend(_relocate(token, invocation, macro_name)
                      for token in right[1:])
        return result

    # -- #if condition evaluation ---------------------------------------------------

    def _evaluate_condition(self, tokens: list[Token],
                            source: SourceFile) -> int:
        prepared = self._prepare_condition(tokens)
        try:
            value, index = _CondParser(prepared).parse()
        except PreprocessorError as error:
            raise PreprocessorError(f"bad #if condition: {error}",
                                    filename=source.path) from None
        return value

    def _prepare_condition(self, tokens: list[Token]) -> list[Token]:
        """Resolve defined(...) and expand macros in a condition."""
        resolved: list[Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind == IDENT and token.text == "defined":
                name_token = None
                if index + 1 < len(tokens) and \
                        tokens[index + 1].kind == IDENT:
                    name_token = tokens[index + 1]
                    index += 2
                elif (index + 3 <= len(tokens) - 1
                        and tokens[index + 1].text == "("
                        and tokens[index + 2].kind == IDENT
                        and tokens[index + 3].text == ")"):
                    name_token = tokens[index + 2]
                    index += 4
                else:
                    raise PreprocessorError("malformed defined()")
                self._unit.interrogations.append(InterrogationEvent(
                    name_token.text, _token_range(name_token)))
                value = "1" if name_token.text in self._macros else "0"
                resolved.append(Token(NUMBER, value, token.file_id,
                                      token.line, token.column))
                continue
            resolved.append(token)
            index += 1
        return self._rescan(resolved, frozenset())


def _relocate(token: Token, invocation: Token, macro_name: str) -> Token:
    """Move a macro-body token to the invocation site and tag it."""
    return dataclasses.replace(
        token, file_id=invocation.file_id, line=invocation.line,
        column=invocation.column, at_line_start=False,
        from_macro=macro_name)


def _token_range(token: Token) -> SourceRange:
    return SourceRange(token.file_id, token.line, token.column,
                       token.line, token.end_column)


class _CondParser:
    """Constant-expression evaluator for #if conditions.

    Unknown identifiers evaluate to 0, as the standard requires.
    """

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def parse(self) -> tuple[int, int]:
        value = self._ternary()
        return value, self._index

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == PUNCT and token.text == text:
            self._index += 1
            return True
        return False

    def _ternary(self) -> int:
        condition = self._binary(0)
        if self._accept("?"):
            then_value = self._ternary()
            if not self._accept(":"):
                raise PreprocessorError("expected ':' in ?:")
            else_value = self._ternary()
            return then_value if condition else else_value
        return condition

    _LEVELS = (("||",), ("&&",), ("|",), ("^",), ("&",), ("==", "!="),
               ("<", "<=", ">", ">="), ("<<", ">>"), ("+", "-"),
               ("*", "/", "%"))

    def _binary(self, level: int) -> int:
        if level >= len(self._LEVELS):
            return self._unary()
        value = self._binary(level + 1)
        while True:
            token = self._peek()
            if token is None or token.kind != PUNCT \
                    or token.text not in self._LEVELS[level]:
                return value
            self._index += 1
            right = self._binary(level + 1)
            value = self._apply(token.text, value, right)

    @staticmethod
    def _apply(op: str, left: int, right: int) -> int:
        if op == "||":
            return 1 if (left or right) else 0
        if op == "&&":
            return 1 if (left and right) else 0
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "&":
            return left & right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise PreprocessorError("division by zero in #if")
            return left // right
        if op == "%":
            if right == 0:
                raise PreprocessorError("modulo by zero in #if")
            return left % right
        raise PreprocessorError(f"unknown operator {op!r}")

    def _unary(self) -> int:
        token = self._peek()
        if token is None:
            raise PreprocessorError("unexpected end of condition")
        if token.kind == PUNCT and token.text in ("!", "~", "-", "+"):
            self._index += 1
            value = self._unary()
            if token.text == "!":
                return 0 if value else 1
            if token.text == "~":
                return ~value
            if token.text == "-":
                return -value
            return value
        if token.kind == PUNCT and token.text == "(":
            self._index += 1
            value = self._ternary()
            if not self._accept(")"):
                raise PreprocessorError("missing ')' in condition")
            return value
        if token.kind == NUMBER:
            self._index += 1
            if lexer.is_float_literal(token.text):
                raise PreprocessorError("float in #if condition")
            return lexer.parse_int_literal(token.text)
        if token.kind == lexer.CHAR:
            self._index += 1
            return lexer.parse_char_literal(token.text)
        if token.kind == IDENT:
            self._index += 1
            return 0  # unknown identifiers are 0 in #if
        raise PreprocessorError(f"unexpected {token.text!r} in condition")
