"""Recursive-descent parser for the C subset.

Input is the preprocessor's expanded token stream; output is a
:class:`~repro.lang.cast.TranslationUnit`. The subset covers what the
paper's graph model records (Tables 1–2): functions (defs and
prototypes), globals, locals, static locals, parameters, structs,
unions, enums and enumerators, typedefs, bitfields, array dimensions,
qualifiers, casts, ``sizeof``/``_Alignof``, member access, address-of,
and function pointers. GNU attribute/asm/extension markers are
tolerated and skipped.

Declarators are parsed inside-out: a declarator yields the declared
name plus a type-builder closure applied to the base type, which is
the standard way to get ``char *(*f[4])(int)`` right.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.errors import ParseError
from repro.lang import cast as c
from repro.lang import ctypes_ as ct
from repro.lang import lexer
from repro.lang.lexer import EOF, IDENT, NUMBER, PUNCT, Token
from repro.lang.source import SourceRange

_STORAGE = ("typedef", "static", "extern", "register", "auto")
_QUALIFIER_WORDS = ("const", "volatile", "restrict")
_PRIMITIVE_WORDS = ("void", "char", "short", "int", "long", "float",
                    "double", "signed", "unsigned", "_Bool")
_SKIPPABLE = ("__attribute__", "__asm__", "asm", "__extension__",
              "__restrict", "__restrict__", "__inline", "__inline__",
              "__volatile__")

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")


@dataclasses.dataclass
class _DeclSpecs:
    storage: Optional[str] = None
    inline: bool = False
    qualifiers: ct.Qualifiers = ct.NO_QUALIFIERS
    base_type: Optional[ct.CType] = None
    # record/enum declarations that appeared inside the specifiers
    owned_decls: list[c.Decl] = dataclasses.field(default_factory=list)


class CParser:
    def __init__(self, tokens: list[Token], path: str = "<unit>",
                 typedef_names: set[str] | None = None) -> None:
        self._tokens = tokens
        self._path = path
        self._index = 0
        self._typedefs: set[str] = set(typedef_names or ())

    # -- plumbing ----------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != EOF:
            self._index += 1
        return token

    def _at(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.text == text and token.kind in (PUNCT, IDENT)

    def _accept(self, text: str) -> bool:
        if self._at(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token.text != text:
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        found = token.text or "end of file"
        return ParseError(f"{message} (found {found!r})",
                          filename=self._path, line=token.line,
                          column=token.column)

    def _range_between(self, start_token: Token,
                       end_token: Token) -> SourceRange:
        if start_token.file_id != end_token.file_id:
            end_token = start_token
        return SourceRange(start_token.file_id, start_token.line,
                           start_token.column, end_token.line,
                           end_token.end_column)

    def _prev(self) -> Token:
        return self._tokens[max(self._index - 1, 0)]

    def _token_range(self, token: Token) -> SourceRange:
        return SourceRange(token.file_id, token.line, token.column,
                           token.line, token.end_column)

    def _skip_gnu_extensions(self) -> None:
        while self._peek().kind == IDENT and \
                self._peek().text in _SKIPPABLE:
            word = self._advance().text
            if word in ("__attribute__", "__asm__", "asm") and \
                    self._at("("):
                depth = 0
                while True:
                    token = self._advance()
                    if token.kind == EOF:
                        raise self._error("unterminated attribute")
                    if token.text == "(":
                        depth += 1
                    elif token.text == ")":
                        depth -= 1
                        if depth == 0:
                            break

    # -- entry point --------------------------------------------------------------

    def parse(self) -> c.TranslationUnit:
        """Parse the whole token stream as a translation unit."""
        declarations: list[c.Decl] = []
        while self._peek().kind != EOF:
            if self._accept(";"):
                continue
            declarations.extend(self._external_declaration())
        return c.TranslationUnit(self._path, declarations)

    # -- declarations -----------------------------------------------------------------

    def _external_declaration(self) -> list[c.Decl]:
        specs = self._declaration_specifiers()
        decls = list(specs.owned_decls)
        if self._accept(";"):
            # bare 'struct foo { ... };' or 'enum e {...};'
            return decls
        first = True
        while True:
            name, name_token, build = self._declarator()
            self._skip_gnu_extensions()
            declared_type = build(self._specs_type(specs))
            if first and isinstance(declared_type, ct.FunctionType) \
                    and self._at("{"):
                decls.append(self._function_definition(
                    specs, name, name_token, declared_type))
                return decls
            decls.append(self._finish_declarator(specs, name, name_token,
                                                 declared_type,
                                                 file_scope=True))
            first = False
            if self._accept(","):
                continue
            self._expect(";")
            return decls

    def _function_definition(self, specs: _DeclSpecs, name: Optional[str],
                             name_token: Optional[Token],
                             declared_type: ct.FunctionType,
                             ) -> c.FunctionDef:
        if name is None or name_token is None:
            raise self._error("function definition needs a name")
        parameters = self._last_parameters or []
        body = self._compound_statement()
        return c.FunctionDef(
            name=name, type=declared_type,
            parameters=parameters,
            storage=specs.storage, inline=specs.inline,
            variadic=declared_type.variadic,
            name_range=self._token_range(name_token), body=body,
            in_macro=name_token.from_macro is not None,
            body_end_line=self._prev().line)

    def _finish_declarator(self, specs: _DeclSpecs, name: Optional[str],
                           name_token: Optional[Token],
                           declared_type: ct.CType,
                           file_scope: bool) -> c.Decl:
        if name is None or name_token is None:
            raise self._error("declaration needs a name")
        name_range = self._token_range(name_token)
        in_macro = name_token.from_macro is not None
        if specs.storage == "typedef":
            self._typedefs.add(name)
            return c.TypedefDecl(name, declared_type, name_range, in_macro)
        if isinstance(declared_type, ct.FunctionType):
            return c.FunctionDecl(
                name=name, type=declared_type,
                parameters=self._last_parameters or [],
                storage=specs.storage, inline=specs.inline,
                variadic=declared_type.variadic, name_range=name_range,
                in_macro=in_macro)
        initializer = None
        if self._accept("="):
            initializer = self._initializer()
        return c.VarDecl(name, declared_type, specs.storage, initializer,
                         name_range, is_file_scope=file_scope,
                         in_macro=in_macro)

    def _declaration_specifiers(self) -> _DeclSpecs:
        specs = _DeclSpecs()
        primitive_words: list[str] = []
        while True:
            self._skip_gnu_extensions()
            token = self._peek()
            if token.kind != IDENT:
                break
            word = token.text
            if word in _STORAGE:
                self._advance()
                specs.storage = word
            elif word == "inline" or word == "_Noreturn":
                self._advance()
                specs.inline = specs.inline or word == "inline"
            elif word in _QUALIFIER_WORDS:
                self._advance()
                specs.qualifiers = specs.qualifiers | _qual_from_word(word)
            elif word in _PRIMITIVE_WORDS:
                self._advance()
                primitive_words.append(word)
            elif word in ("struct", "union"):
                if specs.base_type is not None or primitive_words:
                    break
                specs.base_type = self._record_specifier(specs)
            elif word == "enum":
                if specs.base_type is not None or primitive_words:
                    break
                specs.base_type = self._enum_specifier(specs)
            elif word in self._typedefs and specs.base_type is None \
                    and not primitive_words:
                # typedef name acts as the type specifier — but only if
                # this is not the declarator name itself
                if self._declarator_follows(offset=1):
                    self._advance()
                    specs.base_type = ct.TypedefType(
                        word, ct.Primitive("int"))  # sema refines
                else:
                    break
            else:
                break
        if primitive_words:
            specs.base_type = ct.Primitive(
                ct.merge_primitive_words(primitive_words))
        if specs.base_type is None:
            if specs.storage is None and not specs.qualifiers.any \
                    and not specs.inline:
                raise self._error("expected declaration specifiers")
            specs.base_type = ct.Primitive("int")  # implicit int
        return specs

    def _declarator_follows(self, offset: int) -> bool:
        """After a candidate typedef name: does a declarator follow?"""
        token = self._peek(offset)
        if token.kind == PUNCT and token.text in ("*", "(", ";", ",",
                                                  ")", "["):
            return True
        if token.kind == IDENT and token.text not in lexer.KEYWORDS:
            return True
        if token.kind == IDENT and token.text in _QUALIFIER_WORDS:
            return True
        return False

    def _specs_type(self, specs: _DeclSpecs) -> ct.CType:
        base = specs.base_type
        assert base is not None
        if specs.qualifiers.any:
            base = dataclasses.replace(
                base, qualifiers=base.qualifiers | specs.qualifiers)
        return base

    # struct/union/enum -----------------------------------------------------------

    def _record_specifier(self, specs: _DeclSpecs) -> ct.RecordType:
        kind_token = self._advance()  # struct | union
        kind = kind_token.text
        self._skip_gnu_extensions()
        tag = None
        name_range = None
        if self._peek().kind == IDENT and not self._peek().is_keyword:
            tag_token = self._advance()
            tag = tag_token.text
            name_range = self._token_range(tag_token)
        fields = None
        if self._accept("{"):
            fields = []
            while not self._accept("}"):
                fields.extend(self._struct_field_declaration(specs))
        if tag is None and fields is None:
            raise self._error(f"{kind} needs a tag or a body")
        specs.owned_decls.append(c.RecordDecl(
            kind, tag, fields, name_range,
            in_macro=kind_token.from_macro is not None))
        return ct.RecordType(kind, tag)

    def _struct_field_declaration(self,
                                  outer: _DeclSpecs) -> list[c.FieldDecl]:
        specs = self._declaration_specifiers()
        outer.owned_decls.extend(specs.owned_decls)
        fields: list[c.FieldDecl] = []
        if self._accept(";"):
            # anonymous struct/union member
            fields.append(c.FieldDecl(None, self._specs_type(specs),
                                      None, None))
            return fields
        while True:
            if self._at(":"):
                # unnamed bitfield
                self._advance()
                width = self._constant_int("bitfield width")
                fields.append(c.FieldDecl(None, self._specs_type(specs),
                                          width, None))
            else:
                name, name_token, build = self._declarator()
                field_type = build(self._specs_type(specs))
                width = None
                if self._accept(":"):
                    width = self._constant_int("bitfield width")
                self._skip_gnu_extensions()
                fields.append(c.FieldDecl(
                    name, field_type, width,
                    self._token_range(name_token) if name_token else None))
            if self._accept(","):
                continue
            self._expect(";")
            return fields

    def _enum_specifier(self, specs: _DeclSpecs) -> ct.EnumType:
        enum_token = self._advance()
        self._skip_gnu_extensions()
        tag = None
        name_range = None
        if self._peek().kind == IDENT and not self._peek().is_keyword:
            tag_token = self._advance()
            tag = tag_token.text
            name_range = self._token_range(tag_token)
        enumerators = None
        if self._accept("{"):
            enumerators = []
            next_value = 0
            values: dict[str, int] = {}
            while not self._accept("}"):
                name_token = self._advance()
                if name_token.kind != IDENT:
                    raise self._error("expected enumerator name")
                value_expr = None
                value: Optional[int] = next_value
                if self._accept("="):
                    value_expr = self._conditional_expression()
                    value = _const_eval(value_expr, values)
                if value is not None:
                    next_value = value + 1
                    values[name_token.text] = value
                else:
                    next_value += 1
                enumerators.append(c.EnumeratorDecl(
                    name_token.text, value_expr, value,
                    self._token_range(name_token)))
                if not self._accept(","):
                    self._expect("}")
                    break
        if tag is None and enumerators is None:
            raise self._error("enum needs a tag or a body")
        specs.owned_decls.append(c.EnumDecl(
            tag, enumerators, name_range,
            in_macro=enum_token.from_macro is not None))
        return ct.EnumType(tag)

    # declarators --------------------------------------------------------------------

    _last_parameters: Optional[list[c.ParamDecl]] = None

    def _declarator(self, abstract: bool = False,
                    ) -> tuple[Optional[str], Optional[Token],
                               Callable[[ct.CType], ct.CType]]:
        """Parse a (possibly abstract) declarator.

        Returns (name, name token, builder); the builder turns the base
        type into the declared type.
        """
        self._skip_gnu_extensions()
        # pointer part
        pointers: list[ct.Qualifiers] = []
        while self._accept("*"):
            quals = ct.NO_QUALIFIERS
            while self._peek().kind == IDENT and \
                    self._peek().text in _QUALIFIER_WORDS + _SKIPPABLE:
                word = self._advance().text
                if word in _QUALIFIER_WORDS:
                    quals = quals | _qual_from_word(word)
            pointers.append(quals)
        name, name_token, inner_build = self._direct_declarator(abstract)

        def build(base: ct.CType) -> ct.CType:
            for quals in pointers:
                base = ct.Pointer(base, quals)
            return inner_build(base)

        return name, name_token, build

    def _direct_declarator(self, abstract: bool,
                           ) -> tuple[Optional[str], Optional[Token],
                                      Callable[[ct.CType], ct.CType]]:
        self._skip_gnu_extensions()
        name: Optional[str] = None
        name_token: Optional[Token] = None
        nested: Optional[Callable[[ct.CType], ct.CType]] = None
        token = self._peek()
        if token.kind == IDENT and not token.is_keyword and \
                not (abstract and token.text in self._typedefs):
            self._advance()
            name = token.text
            name_token = token
        elif self._at("(") and self._paren_is_declarator(abstract):
            self._advance()
            name, name_token, nested = self._declarator(abstract)
            self._expect(")")
        elif not abstract and not self._at("[") and not self._at("("):
            raise self._error("expected declarator")

        suffixes: list[Callable[[ct.CType], ct.CType]] = []
        while True:
            if self._accept("["):
                length: Optional[int] = None
                if not self._at("]"):
                    length = self._constant_int("array dimension",
                                                allow_unknown=True)
                self._expect("]")
                suffixes.append(lambda base, n=length: ct.Array(base, n))
            elif self._at("(") and (name is not None or nested is not None
                                    or abstract or suffixes):
                params, variadic, param_decls = self._parameter_list()
                if name is not None:
                    self._last_parameters = param_decls
                suffixes.append(
                    lambda base, p=tuple(params), v=variadic:
                    ct.FunctionType(base, p, v))
            else:
                break

        def build(base: ct.CType) -> ct.CType:
            # suffixes bind tighter than what's outside; apply inner-most
            # (leftmost) last: int x[2][3] is array 2 of array 3 of int
            for suffix in reversed(suffixes):
                base = suffix(base)
            if nested is not None:
                base = nested(base)
            return base

        return name, name_token, build

    def _paren_is_declarator(self, abstract: bool) -> bool:
        """Disambiguate '(' in a declarator from a parameter list."""
        token = self._peek(1)
        if token.kind == PUNCT and token.text == "*":
            return True
        if token.kind == IDENT and not token.is_keyword and \
                token.text not in self._typedefs:
            return not abstract
        if token.kind == PUNCT and token.text in ("(", "["):
            return True
        return False

    def _parameter_list(self) -> tuple[list[ct.CType], bool,
                                       list[c.ParamDecl]]:
        self._expect("(")
        types: list[ct.CType] = []
        decls: list[c.ParamDecl] = []
        variadic = False
        if self._accept(")"):
            return types, False, decls
        # special case: (void)
        if self._peek().text == "void" and self._peek(1).text == ")":
            self._advance()
            self._advance()
            return types, False, decls
        position = 0
        while True:
            if self._accept("..."):
                variadic = True
                self._expect(")")
                return types, variadic, decls
            specs = self._declaration_specifiers()
            name, name_token, build = self._declarator(abstract=True)
            param_type = build(self._specs_type(specs))
            types.append(param_type)
            decls.append(c.ParamDecl(
                name, param_type,
                self._token_range(name_token) if name_token else None,
                position))
            position += 1
            if self._accept(","):
                continue
            self._expect(")")
            return types, variadic, decls

    def _type_name(self) -> ct.CType:
        specs = self._declaration_specifiers()
        _name, _token, build = self._declarator(abstract=True)
        return build(self._specs_type(specs))

    def _starts_type_name(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind != IDENT:
            return False
        return (token.text in _PRIMITIVE_WORDS
                or token.text in _QUALIFIER_WORDS
                or token.text in ("struct", "union", "enum")
                or token.text in self._typedefs)

    def _constant_int(self, what: str, allow_unknown: bool = False,
                      ) -> Optional[int]:
        expression = self._conditional_expression()
        value = _const_eval(expression, {})
        if value is None and not allow_unknown:
            raise self._error(f"{what} must be a constant")
        return value

    # -- statements ---------------------------------------------------------------------

    def _compound_statement(self) -> c.CompoundStmt:
        self._expect("{")
        body: list[c.Node] = []
        while not self._accept("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated block")
            body.append(self._block_item())
        return c.CompoundStmt(body)

    def _block_item(self) -> c.Node:
        if self._starts_declaration():
            return self._local_declaration()
        return self._statement()

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.kind != IDENT:
            return False
        if token.text in _STORAGE or token.text in _QUALIFIER_WORDS \
                or token.text in _PRIMITIVE_WORDS \
                or token.text in ("struct", "union", "enum", "inline"):
            return True
        if token.text in self._typedefs:
            # typedef name followed by a declarator => declaration
            return self._declarator_follows(offset=1) and \
                not self._at("(", 1)
        return False

    def _local_declaration(self) -> c.DeclStmt:
        specs = self._declaration_specifiers()
        declarations: list[c.VarDecl] = []
        if self._accept(";"):
            return c.DeclStmt(declarations)
        while True:
            name, name_token, build = self._declarator()
            declared_type = build(self._specs_type(specs))
            decl = self._finish_declarator(specs, name, name_token,
                                           declared_type,
                                           file_scope=False)
            if isinstance(decl, c.VarDecl):
                declarations.append(decl)
            # local typedefs and prototypes are parsed but dropped from
            # DeclStmt (rare in practice; sema works at file scope)
            if self._accept(","):
                continue
            self._expect(";")
            return c.DeclStmt(declarations)

    def _statement(self) -> c.Stmt:
        token = self._peek()
        if token.kind == PUNCT and token.text == "{":
            return self._compound_statement()
        if token.kind == PUNCT and token.text == ";":
            self._advance()
            return c.EmptyStmt()
        if token.kind == IDENT:
            word = token.text
            if word == "if":
                return self._if_statement()
            if word == "while":
                return self._while_statement()
            if word == "do":
                return self._do_statement()
            if word == "for":
                return self._for_statement()
            if word == "return":
                self._advance()
                value = None
                if not self._at(";"):
                    value = self._expression()
                self._expect(";")
                return c.ReturnStmt(value)
            if word == "break":
                self._advance()
                self._expect(";")
                return c.BreakStmt()
            if word == "continue":
                self._advance()
                self._expect(";")
                return c.ContinueStmt()
            if word == "goto":
                self._advance()
                label = self._advance().text
                self._expect(";")
                return c.GotoStmt(label)
            if word == "switch":
                return self._switch_statement()
            if word == "case":
                self._advance()
                value = self._conditional_expression()
                self._expect(":")
                body = None if self._at("}") else self._statement()
                return c.CaseStmt(value, body)
            if word == "default":
                self._advance()
                self._expect(":")
                body = None if self._at("}") else self._statement()
                return c.CaseStmt(None, body)
            if not token.is_keyword and self._at(":", 1):
                self._advance()
                self._advance()
                body = c.EmptyStmt() if self._at("}") else self._statement()
                return c.LabelStmt(word, body)
        expression = self._expression()
        self._expect(";")
        return c.ExprStmt(expression)

    def _if_statement(self) -> c.IfStmt:
        self._expect("if")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        then_branch = self._statement()
        else_branch = None
        if self._accept("else"):
            else_branch = self._statement()
        return c.IfStmt(condition, then_branch, else_branch)

    def _while_statement(self) -> c.WhileStmt:
        self._expect("while")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        return c.WhileStmt(condition, self._statement())

    def _do_statement(self) -> c.DoStmt:
        self._expect("do")
        body = self._statement()
        self._expect("while")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        self._expect(";")
        return c.DoStmt(body, condition)

    def _for_statement(self) -> c.ForStmt:
        self._expect("for")
        self._expect("(")
        init: Optional[c.Node] = None
        if not self._accept(";"):
            if self._starts_declaration():
                init = self._local_declaration()
            else:
                init = c.ExprStmt(self._expression())
                self._expect(";")
        condition = None
        if not self._at(";"):
            condition = self._expression()
        self._expect(";")
        step = None
        if not self._at(")"):
            step = self._expression()
        self._expect(")")
        return c.ForStmt(init, condition, step, self._statement())

    def _switch_statement(self) -> c.SwitchStmt:
        self._expect("switch")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        return c.SwitchStmt(condition, self._statement())

    # -- expressions ---------------------------------------------------------------------

    def _expression(self) -> c.Expr:
        start = self._peek()
        expression = self._assignment_expression()
        while self._at(","):
            self._advance()
            right = self._assignment_expression()
            expression = c.Comma(expression, right,
                                 self._range_between(start, self._prev()))
        return expression

    def _assignment_expression(self) -> c.Expr:
        start = self._peek()
        left = self._conditional_expression()
        token = self._peek()
        if token.kind == PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._assignment_expression()
            return c.Assignment(token.text, left, value,
                                self._range_between(start, self._prev()))
        return left

    def _conditional_expression(self) -> c.Expr:
        start = self._peek()
        condition = self._binary_expression(0)
        if self._accept("?"):
            then_value = self._expression()
            self._expect(":")
            else_value = self._conditional_expression()
            return c.Conditional(condition, then_value, else_value,
                                 self._range_between(start, self._prev()))
        return condition

    _BINARY_LEVELS = (("||",), ("&&",), ("|",), ("^",), ("&",),
                      ("==", "!="), ("<", "<=", ">", ">="), ("<<", ">>"),
                      ("+", "-"), ("*", "/", "%"))

    def _binary_expression(self, level: int) -> c.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._cast_expression()
        start = self._peek()
        left = self._binary_expression(level + 1)
        while True:
            token = self._peek()
            if token.kind != PUNCT or \
                    token.text not in self._BINARY_LEVELS[level]:
                return left
            self._advance()
            right = self._binary_expression(level + 1)
            left = c.Binary(token.text, left, right,
                            self._range_between(start, self._prev()))

    def _cast_expression(self) -> c.Expr:
        if self._at("(") and self._starts_type_name(1):
            start = self._peek()
            self._advance()
            target_type = self._type_name()
            self._expect(")")
            if self._at("{"):
                # compound literal: (T){...} — parse as cast of init list
                operand: c.Expr = self._initializer()
            else:
                operand = self._cast_expression()
            return c.Cast(target_type, operand,
                          self._range_between(start, self._prev()))
        return self._unary_expression()

    def _unary_expression(self) -> c.Expr:
        token = self._peek()
        start = token
        if token.kind == PUNCT and token.text in ("&", "*", "+", "-", "!",
                                                  "~", "++", "--"):
            self._advance()
            operand = self._cast_expression() \
                if token.text in ("&", "*", "+", "-", "!", "~") \
                else self._unary_expression()
            return c.Unary(token.text, operand,
                           self._range_between(start, self._prev()))
        if token.kind == IDENT and token.text in ("sizeof", "_Alignof",
                                                  "__alignof__"):
            self._advance()
            op = "sizeof" if token.text == "sizeof" else "_Alignof"
            if self._at("(") and self._starts_type_name(1):
                self._advance()
                target_type = self._type_name()
                self._expect(")")
                return c.SizeofType(op, target_type,
                                    self._range_between(start,
                                                        self._prev()))
            operand = self._unary_expression()
            return c.Unary(op, operand,
                           self._range_between(start, self._prev()))
        return self._postfix_expression()

    def _postfix_expression(self) -> c.Expr:
        start = self._peek()
        expression = self._primary_expression()
        while True:
            token = self._peek()
            if token.kind != PUNCT:
                return expression
            if token.text == "(":
                self._advance()
                arguments: list[c.Expr] = []
                if not self._at(")"):
                    arguments.append(self._assignment_expression())
                    while self._accept(","):
                        arguments.append(self._assignment_expression())
                self._expect(")")
                expression = c.Call(expression, arguments,
                                    self._range_between(start,
                                                        self._prev()))
            elif token.text == "[":
                self._advance()
                index = self._expression()
                self._expect("]")
                expression = c.Index(expression, index,
                                     self._range_between(start,
                                                         self._prev()))
            elif token.text in (".", "->"):
                self._advance()
                name_token = self._advance()
                if name_token.kind != IDENT:
                    raise self._error("expected member name")
                expression = c.Member(
                    expression, name_token.text, token.text == "->",
                    self._range_between(start, self._prev()),
                    self._token_range(name_token))
            elif token.text in ("++", "--"):
                self._advance()
                expression = c.Unary("post" + token.text, expression,
                                     self._range_between(start,
                                                         self._prev()))
            else:
                return expression

    def _primary_expression(self) -> c.Expr:
        token = self._peek()
        if token.kind == IDENT and not token.is_keyword:
            self._advance()
            return c.Identifier(token.text, self._token_range(token),
                                in_macro=token.from_macro is not None)
        if token.kind == NUMBER:
            self._advance()
            if lexer.is_float_literal(token.text):
                return c.FloatLiteral(float(token.text.rstrip("fFlL")),
                                      self._token_range(token))
            return c.IntLiteral(lexer.parse_int_literal(token.text),
                                self._token_range(token))
        if token.kind == lexer.CHAR:
            self._advance()
            return c.CharLiteral(lexer.parse_char_literal(token.text),
                                 self._token_range(token))
        if token.kind == lexer.STRING:
            self._advance()
            value = lexer.string_literal_value(token.text)
            # adjacent string literal concatenation
            while self._peek().kind == lexer.STRING:
                value += lexer.string_literal_value(self._advance().text)
            return c.StringLiteral(value, self._token_range(token))
        if self._at("("):
            self._advance()
            expression = self._expression()
            self._expect(")")
            return expression
        raise self._error("expected expression")

    def _initializer(self) -> c.Expr:
        if self._at("{"):
            start = self._peek()
            self._advance()
            items: list[c.Expr] = []
            while not self._accept("}"):
                self._skip_designator()
                items.append(self._initializer())
                if not self._accept(","):
                    self._expect("}")
                    break
            return c.InitList(items, self._range_between(start,
                                                         self._prev()))
        return self._assignment_expression()

    def _skip_designator(self) -> None:
        """Tolerate '.field =' and '[index] =' designators."""
        progressed = False
        while True:
            if self._at(".") and self._peek(1).kind == IDENT:
                self._advance()
                self._advance()
                progressed = True
            elif self._at("["):
                depth = 0
                while True:
                    token = self._advance()
                    if token.kind == EOF:
                        raise self._error("unterminated designator")
                    if token.text == "[":
                        depth += 1
                    elif token.text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                progressed = True
            else:
                break
        if progressed:
            self._expect("=")


def _qual_from_word(word: str) -> ct.Qualifiers:
    return ct.Qualifiers(const=word == "const",
                         volatile=word == "volatile",
                         restrict=word == "restrict")


def _const_eval(expression: c.Expr,
                known: dict[str, int]) -> Optional[int]:
    """Best-effort constant folding for enum values and dimensions."""
    if isinstance(expression, c.IntLiteral):
        return expression.value
    if isinstance(expression, c.CharLiteral):
        return expression.value
    if isinstance(expression, c.Identifier):
        return known.get(expression.name)
    if isinstance(expression, c.Unary):
        inner = _const_eval(expression.operand, known)
        if inner is None:
            return None
        if expression.op == "-":
            return -inner
        if expression.op == "+":
            return inner
        if expression.op == "~":
            return ~inner
        if expression.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expression, c.Binary):
        left = _const_eval(expression.left, known)
        right = _const_eval(expression.right, known)
        if left is None or right is None:
            return None
        op = expression.op
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left // right if right else None
            if op == "%":
                return left % right if right else None
            if op == "<<":
                return left << right
            if op == ">>":
                return left >> right
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            if op == "^":
                return left ^ right
            if op == "==":
                return int(left == right)
            if op == "!=":
                return int(left != right)
            if op == "<":
                return int(left < right)
            if op == "<=":
                return int(left <= right)
            if op == ">":
                return int(left > right)
            if op == ">=":
                return int(left >= right)
            if op == "&&":
                return int(bool(left and right))
            if op == "||":
                return int(bool(left or right))
        except (OverflowError, ValueError):
            return None
    if isinstance(expression, c.Conditional):
        condition = _const_eval(expression.condition, known)
        if condition is None:
            return None
        branch = expression.then_value if condition \
            else expression.else_value
        return _const_eval(branch, known)
    if isinstance(expression, c.Cast):
        return _const_eval(expression.operand, known)
    return None


def parse_tokens(tokens: list[Token], path: str = "<unit>",
                 typedef_names: set[str] | None = None,
                 ) -> c.TranslationUnit:
    """Convenience wrapper: parse an expanded token stream."""
    return CParser(tokens, path, typedef_names).parse()
