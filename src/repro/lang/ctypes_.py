"""The C type model and Table 2's QUALIFIERS coding.

The paper encodes how a symbol *uses* a type as a coded string "in
spoken order": ``]`` for array, ``*`` for pointer, ``c`` for const,
``v`` for volatile, ``r`` for restrict. ``char **argv`` is spoken
"pointer to pointer to char", coded ``**`` (the paper's Figure 2 shows
exactly this edge: ``argv -isa_type{QUALIFIER: **}-> char``).
``const int x[4]`` is "array of const int": ``]c``, with the dimension
carried separately in ``ARRAY_LENGTHS``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


@dataclasses.dataclass(frozen=True)
class Qualifiers:
    const: bool = False
    volatile: bool = False
    restrict: bool = False

    def code(self) -> str:
        out = ""
        if self.const:
            out += "c"
        if self.volatile:
            out += "v"
        if self.restrict:
            out += "r"
        return out

    def __or__(self, other: "Qualifiers") -> "Qualifiers":
        return Qualifiers(self.const or other.const,
                          self.volatile or other.volatile,
                          self.restrict or other.restrict)

    @property
    def any(self) -> bool:
        return self.const or self.volatile or self.restrict


NO_QUALIFIERS = Qualifiers()


class CType:
    """Base class; every type carries its own qualifiers."""

    qualifiers: Qualifiers

    def spelled(self) -> str:
        """Human-readable spelling (for LONG_NAME signatures)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class Primitive(CType):
    """int, char, unsigned long, void, float, ..."""

    name: str
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        prefix = _qual_prefix(self.qualifiers)
        return f"{prefix}{self.name}"


@dataclasses.dataclass(frozen=True)
class Pointer(CType):
    pointee: CType
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        return f"{self.pointee.spelled()} *{self.qualifiers.code()}"


@dataclasses.dataclass(frozen=True)
class Array(CType):
    element: CType
    length: Optional[int]  # None for incomplete []
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        dimension = "" if self.length is None else str(self.length)
        return f"{self.element.spelled()}[{dimension}]"


@dataclasses.dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    parameters: tuple[CType, ...]
    variadic: bool = False
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        params = ", ".join(param.spelled() for param in self.parameters)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        if not self.parameters and not self.variadic:
            params = "void"
        return f"{self.return_type.spelled()} ({params})"


@dataclasses.dataclass(frozen=True)
class RecordType(CType):
    """struct or union, by tag (may be anonymous)."""

    kind: str            # 'struct' | 'union'
    tag: Optional[str]
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        prefix = _qual_prefix(self.qualifiers)
        tag = self.tag or "<anonymous>"
        return f"{prefix}{self.kind} {tag}"


@dataclasses.dataclass(frozen=True)
class EnumType(CType):
    tag: Optional[str]
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        prefix = _qual_prefix(self.qualifiers)
        return f"{prefix}enum {self.tag or '<anonymous>'}"


@dataclasses.dataclass(frozen=True)
class TypedefType(CType):
    name: str
    underlying: CType
    qualifiers: Qualifiers = NO_QUALIFIERS

    def spelled(self) -> str:
        prefix = _qual_prefix(self.qualifiers)
        return f"{prefix}{self.name}"


def _qual_prefix(qualifiers: Qualifiers) -> str:
    parts = []
    if qualifiers.const:
        parts.append("const ")
    if qualifiers.volatile:
        parts.append("volatile ")
    if qualifiers.restrict:
        parts.append("restrict ")
    return "".join(parts)


def strip_typedefs(ctype: CType) -> CType:
    """The type with typedef sugar removed (qualifiers merged)."""
    while isinstance(ctype, TypedefType):
        merged = ctype.underlying.qualifiers | ctype.qualifiers
        ctype = dataclasses.replace(ctype.underlying, qualifiers=merged)
    return ctype


def base_type(ctype: CType) -> CType:
    """The innermost named type after peeling pointers/arrays/functions.

    This is the node a Table 1 ``isa_type`` edge points at: ``char **``
    peels to ``char``; ``struct foo *[4]`` peels to ``struct foo``.
    """
    ctype = strip_typedefs(ctype)
    while True:
        if isinstance(ctype, Pointer):
            ctype = strip_typedefs(ctype.pointee)
        elif isinstance(ctype, Array):
            ctype = strip_typedefs(ctype.element)
        elif isinstance(ctype, FunctionType):
            ctype = strip_typedefs(ctype.return_type)
        else:
            return ctype


def qualifier_code(ctype: CType) -> str:
    """Table 2's QUALIFIERS string, in spoken order.

    Walk outside-in: each pointer adds ``*``, each array adds ``]``,
    qualifiers of each level are appended where they are spoken.
    """
    out: list[str] = []
    current: CType = ctype
    while True:
        current_quals = current.qualifiers.code()
        if isinstance(current, TypedefType):
            current = dataclasses.replace(
                current.underlying,
                qualifiers=current.underlying.qualifiers
                | current.qualifiers)
            continue
        if isinstance(current, Array):
            out.append("]")
            out.append(current_quals)
            current = current.element
        elif isinstance(current, Pointer):
            out.append("*")
            out.append(current_quals)
            current = current.pointee
        else:
            out.append(current_quals)
            return "".join(out)


def array_lengths(ctype: CType) -> list[int]:
    """Constant dimensions of nested array types (Table 2)."""
    lengths: list[int] = []
    current = strip_typedefs(ctype)
    while True:
        if isinstance(current, Array):
            lengths.append(current.length if current.length is not None
                           else 0)
            current = strip_typedefs(current.element)
        elif isinstance(current, Pointer):
            current = strip_typedefs(current.pointee)
        else:
            return lengths


#: names treated as one primitive each (multi-word spellings merged).
PRIMITIVE_NAMES = ("void", "char", "signed char", "unsigned char",
                   "short", "unsigned short", "int", "unsigned int",
                   "long", "unsigned long", "long long",
                   "unsigned long long", "float", "double", "long double",
                   "_Bool")


def merge_primitive_words(words: Sequence[str]) -> str:
    """Canonical primitive name from declaration-specifier words.

    ``unsigned``, ``long long int``, ``signed int`` and friends all
    collapse to a canonical spelling so the graph has one ``int`` node,
    matching the paper's observation that ``int`` is a single huge-
    degree hub.
    """
    bag = list(words)
    if not bag:
        return "int"
    unsigned = "unsigned" in bag
    signed = "signed" in bag
    bag = [word for word in bag if word not in ("unsigned", "signed")]
    longs = bag.count("long")
    bag = [word for word in bag if word != "long"]
    short = "short" in bag
    bag = [word for word in bag if word != "short"]
    core = bag[0] if bag else "int"
    if core == "char":
        if unsigned:
            return "unsigned char"
        if signed:
            return "signed char"
        return "char"
    if core == "double":
        return "long double" if longs else "double"
    if core in ("void", "float", "_Bool"):
        return core
    # integer family
    if short:
        return "unsigned short" if unsigned else "short"
    if longs >= 2:
        return "unsigned long long" if unsigned else "long long"
    if longs == 1:
        return "unsigned long" if unsigned else "long"
    return "unsigned int" if unsigned else "int"
