"""A C-subset front end: the reproduction's extractor substrate.

The paper's extractor is "a modified version of the complete Clang
compiler" run behind gcc-wrapper scripts. Offline, we build the same
pipeline from scratch for the C subset the graph model records
(paper Tables 1–2):

* :mod:`~repro.lang.source` — files, locations, ranges,
* :mod:`~repro.lang.lexer` — the C token stream,
* :mod:`~repro.lang.preprocessor` — ``#include``/``#define``/
  conditionals with full macro expansion *and provenance* (which
  tokens came from which expansion — the ``IN_MACRO`` property and the
  ``expands_macro``/``interrogates_macro`` edges depend on it),
* :mod:`~repro.lang.ctypes_` — the C type model with Table 2's
  QUALIFIERS coding,
* :mod:`~repro.lang.cast` / :mod:`~repro.lang.parser` — AST and
  recursive-descent parser,
* :mod:`~repro.lang.sema` — scopes, symbol resolution, decl/def
  linking within a translation unit.

The build layer (:mod:`repro.build`) drives this per compilation unit
and links units together, after which :mod:`repro.core.extractor`
emits the dependency graph.
"""

from repro.lang.source import (FileRegistry, SourceFile, SourceLocation,
                               SourceRange, VirtualFileSystem)

__all__ = ["FileRegistry", "SourceFile", "SourceLocation", "SourceRange",
           "VirtualFileSystem"]
