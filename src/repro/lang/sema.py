"""Semantic analysis: scopes, symbol resolution, member lookup.

Sema turns one parsed translation unit into a :class:`UnitInfo`:

* a symbol table of everything declared at file scope (functions,
  globals, typedefs, struct/union/enum tags, enumerators) and inside
  functions (parameters, locals, static locals),
* every :class:`~repro.lang.cast.Identifier` resolved to its symbol
  (lexical scoping, innermost first),
* every :class:`~repro.lang.cast.Member` access resolved to the field
  symbol of the record the base expression's type names — which needs
  the lightweight type inference implemented here,
* declaration/definition pairing within the unit (prototypes matched
  to their later definition — the ``declares`` edges),
* a USR (unified symbol reference) per symbol, used by the linker to
  match symbols across translation units.

Unresolved calls create *implicit* function symbols (C89-style
implicit declarations) so the call graph stays connected even when a
header is missing.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.lang import cast as c
from repro.lang import ctypes_ as ct
from repro.lang.source import SourceRange

# symbol kinds — these are exactly the Table 1 node types the extractor
# emits for symbols (plus 'typedef' which Table 1 also lists).
KIND_FUNCTION = "function"
KIND_FUNCTION_DECL = "function_decl"
KIND_GLOBAL = "global"
KIND_GLOBAL_DECL = "global_decl"
KIND_LOCAL = "local"
KIND_STATIC_LOCAL = "static_local"
KIND_PARAMETER = "parameter"
KIND_FIELD = "field"
KIND_ENUMERATOR = "enumerator"
KIND_TYPEDEF = "typedef"
KIND_STRUCT = "struct"
KIND_STRUCT_DECL = "struct_decl"
KIND_UNION = "union"
KIND_UNION_DECL = "union_decl"
KIND_ENUM = "enum_def"
KIND_ENUM_DECL = "enum_decl"


@dataclasses.dataclass
class Symbol:
    """One named entity in a translation unit."""

    kind: str
    name: str
    usr: str
    type: Optional[ct.CType]
    name_range: Optional[SourceRange]
    unit_path: str
    storage: Optional[str] = None
    parent: Optional["Symbol"] = None
    decl: Any = None
    is_definition: bool = True
    external_linkage: bool = False
    variadic: bool = False
    inline: bool = False
    implicit: bool = False
    value: Optional[int] = None          # enumerators
    bit_width: Optional[int] = None      # fields
    position: Optional[int] = None       # parameters
    matched_definition: Optional["Symbol"] = None  # decl -> def in unit

    @property
    def qualified_name(self) -> str:
        """Table 2's NAME: the symbol name including its parent."""
        if self.parent is not None:
            return f"{self.parent.name}::{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"Symbol({self.kind} {self.qualified_name})"


@dataclasses.dataclass
class UnitInfo:
    """Everything sema learned about one translation unit."""

    tu: c.TranslationUnit
    symbols: list[Symbol]
    functions: list[Symbol]              # definitions
    function_decls: list[Symbol]
    globals: list[Symbol]
    global_decls: list[Symbol]
    typedefs: list[Symbol]
    records: list[Symbol]                # struct/union definitions
    record_decls: list[Symbol]
    enums: list[Symbol]
    enum_decls: list[Symbol]
    enumerators: list[Symbol]
    fields: list[Symbol]
    record_fields: dict[str, list[Symbol]]   # record usr -> field symbols
    exported: dict[str, Symbol]          # external definitions by name
    imported: dict[str, Symbol]          # external references by name


class Sema:
    """Analyzes one translation unit."""

    def __init__(self, tu: c.TranslationUnit) -> None:
        self.tu = tu
        self._path = tu.path
        self._symbols: list[Symbol] = []
        self._file_scope: dict[str, Symbol] = {}
        self._tags: dict[str, Symbol] = {}       # 'struct foo' -> symbol
        self._typedef_types: dict[str, ct.CType] = {}
        self._record_fields: dict[str, list[Symbol]] = {}
        self._fields_by_name: dict[str, list[Symbol]] = {}
        self._enumerators: dict[str, Symbol] = {}
        self._anon_counter = 0

    # -- public API -----------------------------------------------------------

    def analyze(self) -> UnitInfo:
        """Run all passes; returns the unit's symbol information."""
        for decl in self.tu.declarations:
            self._declare_top_level(decl)
        self._pair_declarations()
        for decl in self.tu.declarations:
            if isinstance(decl, c.FunctionDef):
                self._analyze_function(decl)
            elif isinstance(decl, c.VarDecl) and decl.initializer:
                self._resolve_expression(decl.initializer, [])
        return self._build_info()

    # -- top-level declaration collection ----------------------------------------

    def _declare_top_level(self, decl: c.Decl) -> None:
        if isinstance(decl, c.RecordDecl):
            self._declare_record(decl)
        elif isinstance(decl, c.EnumDecl):
            self._declare_enum(decl)
        elif isinstance(decl, c.TypedefDecl):
            resolved = self._resolve_type(decl.type)
            # location-based USR: a typedef in a shared header must map
            # to ONE graph node across all units that include it
            usr = (f"c:t@{decl.name_range.file_id}:"
                   f"{decl.name_range.start_line}@{decl.name}")
            symbol = Symbol(KIND_TYPEDEF, decl.name, usr,
                            resolved, decl.name_range, self._path,
                            decl=decl)
            self._typedef_types[decl.name] = resolved
            self._add(symbol)
        elif isinstance(decl, c.FunctionDef):
            self._declare_function(decl, is_definition=True)
        elif isinstance(decl, c.FunctionDecl):
            self._declare_function(decl, is_definition=False)
        elif isinstance(decl, c.VarDecl):
            self._declare_global(decl)

    def _declare_record(self, decl: c.RecordDecl) -> None:
        tag = decl.tag or self._anonymous_tag(decl.kind)
        key = f"{decl.kind} {tag}"
        existing = self._tags.get(key)
        if decl.is_definition:
            kind = KIND_STRUCT if decl.kind == "struct" else KIND_UNION
            symbol = Symbol(kind, tag, self._tag_usr(decl.kind, tag),
                            ct.RecordType(decl.kind, tag),
                            decl.name_range, self._path, decl=decl)
            self._tags[key] = symbol
            self._add(symbol)
            fields = []
            for field_decl in decl.fields or []:
                field_type = self._resolve_type(field_decl.type)
                field = Symbol(KIND_FIELD, field_decl.name or "<anon>",
                               f"{symbol.usr}::{field_decl.name}",
                               field_type, field_decl.name_range,
                               self._path, parent=symbol, decl=field_decl,
                               bit_width=field_decl.bit_width)
                fields.append(field)
                self._add(field)
                if field_decl.name:
                    self._fields_by_name.setdefault(field_decl.name,
                                                    []).append(field)
            self._record_fields[symbol.usr] = fields
            if existing is not None and not existing.is_definition:
                existing.matched_definition = symbol
        elif existing is None:
            kind = KIND_STRUCT_DECL if decl.kind == "struct" \
                else KIND_UNION_DECL
            symbol = Symbol(kind, tag, self._tag_usr(decl.kind, tag),
                            ct.RecordType(decl.kind, tag),
                            decl.name_range, self._path, decl=decl,
                            is_definition=False)
            self._tags[key] = symbol
            self._add(symbol)

    def _declare_enum(self, decl: c.EnumDecl) -> None:
        tag = decl.tag or self._anonymous_tag("enum")
        key = f"enum {tag}"
        if decl.is_definition:
            symbol = Symbol(KIND_ENUM, tag, self._tag_usr("enum", tag),
                            ct.EnumType(tag), decl.name_range, self._path,
                            decl=decl)
            self._tags[key] = symbol
            self._add(symbol)
            for enumerator in decl.enumerators or []:
                esym = Symbol(KIND_ENUMERATOR, enumerator.name,
                              f"{symbol.usr}::{enumerator.name}",
                              ct.EnumType(tag), enumerator.name_range,
                              self._path, parent=symbol, decl=enumerator,
                              value=enumerator.value)
                self._enumerators[enumerator.name] = esym
                self._file_scope.setdefault(enumerator.name, esym)
                self._add(esym)
        elif key not in self._tags:
            symbol = Symbol(KIND_ENUM_DECL, tag, self._tag_usr("enum", tag),
                            ct.EnumType(tag), decl.name_range, self._path,
                            decl=decl, is_definition=False)
            self._tags[key] = symbol
            self._add(symbol)

    def _declare_function(self, decl: c.FunctionDecl | c.FunctionDef,
                          is_definition: bool) -> None:
        external = decl.storage != "static"
        usr = (f"c:@F@{decl.name}" if external
               else self._internal_usr("F", decl.name))
        kind = KIND_FUNCTION if is_definition else KIND_FUNCTION_DECL
        symbol = Symbol(kind, decl.name, usr,
                        self._resolve_type(decl.type), decl.name_range,
                        self._path, storage=decl.storage, decl=decl,
                        is_definition=is_definition,
                        external_linkage=external,
                        variadic=decl.variadic, inline=decl.inline)
        if is_definition:
            self._file_scope[decl.name] = symbol
        else:
            self._file_scope.setdefault(decl.name, symbol)
        self._add(symbol)

    def _declare_global(self, decl: c.VarDecl) -> None:
        is_definition = decl.storage != "extern"
        external = decl.storage not in ("static",)
        usr = (f"c:@G@{decl.name}" if external
               else self._internal_usr("G", decl.name))
        kind = KIND_GLOBAL if is_definition else KIND_GLOBAL_DECL
        symbol = Symbol(kind, decl.name, usr,
                        self._resolve_type(decl.type), decl.name_range,
                        self._path, storage=decl.storage, decl=decl,
                        is_definition=is_definition,
                        external_linkage=external)
        if is_definition:
            self._file_scope[decl.name] = symbol
        else:
            self._file_scope.setdefault(decl.name, symbol)
        self._add(symbol)

    def _pair_declarations(self) -> None:
        """Match prototypes/extern decls to in-unit definitions."""
        definitions: dict[str, Symbol] = {}
        for symbol in self._symbols:
            if symbol.kind in (KIND_FUNCTION, KIND_GLOBAL):
                definitions[symbol.name] = symbol
        for symbol in self._symbols:
            if symbol.kind in (KIND_FUNCTION_DECL, KIND_GLOBAL_DECL):
                match = definitions.get(symbol.name)
                if match is not None:
                    symbol.matched_definition = match

    # -- function bodies ------------------------------------------------------------

    def _analyze_function(self, decl: c.FunctionDef) -> None:
        function_symbol = self._file_scope.get(decl.name)
        scope: dict[str, Symbol] = {}
        for param in decl.parameters:
            if param.name is None:
                continue
            symbol = Symbol(KIND_PARAMETER, param.name,
                            f"{decl.name}::{param.name}"
                            f"@{self._path}#p{param.position}",
                            self._resolve_type(param.type),
                            param.name_range, self._path,
                            parent=function_symbol, decl=param,
                            position=param.position)
            scope[param.name] = symbol
            self._add(symbol)
        self._resolve_block(decl.body, [scope], function_symbol)

    def _resolve_block(self, block: c.CompoundStmt,
                       scopes: list[dict[str, Symbol]],
                       function: Optional[Symbol]) -> None:
        scopes = scopes + [{}]
        for item in block.body:
            self._resolve_stmt(item, scopes, function)

    def _resolve_stmt(self, node: c.Node,
                      scopes: list[dict[str, Symbol]],
                      function: Optional[Symbol]) -> None:
        if isinstance(node, c.DeclStmt):
            for var in node.declarations:
                if var.initializer is not None:
                    self._resolve_expression(var.initializer, scopes)
                kind = KIND_STATIC_LOCAL if var.storage == "static" \
                    else KIND_LOCAL
                symbol = Symbol(kind, var.name,
                                self._internal_usr(
                                    "L", f"{function.name if function else '?'}"
                                    f"::{var.name}"
                                    f"@{var.name_range.start_line}"),
                                self._resolve_type(var.type),
                                var.name_range, self._path,
                                parent=function, decl=var,
                                storage=var.storage)
                scopes[-1][var.name] = symbol
                self._add(symbol)
        elif isinstance(node, c.CompoundStmt):
            self._resolve_block(node, scopes, function)
        elif isinstance(node, c.ExprStmt):
            self._resolve_expression(node.expression, scopes)
        elif isinstance(node, c.IfStmt):
            self._resolve_expression(node.condition, scopes)
            self._resolve_stmt(node.then_branch, scopes, function)
            if node.else_branch is not None:
                self._resolve_stmt(node.else_branch, scopes, function)
        elif isinstance(node, c.WhileStmt):
            self._resolve_expression(node.condition, scopes)
            self._resolve_stmt(node.body, scopes, function)
        elif isinstance(node, c.DoStmt):
            self._resolve_stmt(node.body, scopes, function)
            self._resolve_expression(node.condition, scopes)
        elif isinstance(node, c.ForStmt):
            inner = scopes + [{}]
            if node.init is not None:
                self._resolve_stmt(node.init, inner, function)
            if node.condition is not None:
                self._resolve_expression(node.condition, inner)
            if node.step is not None:
                self._resolve_expression(node.step, inner)
            self._resolve_stmt(node.body, inner, function)
        elif isinstance(node, c.ReturnStmt):
            if node.value is not None:
                self._resolve_expression(node.value, scopes)
        elif isinstance(node, c.SwitchStmt):
            self._resolve_expression(node.condition, scopes)
            self._resolve_stmt(node.body, scopes, function)
        elif isinstance(node, c.CaseStmt):
            if node.value is not None:
                self._resolve_expression(node.value, scopes)
            if node.body is not None:
                self._resolve_stmt(node.body, scopes, function)
        elif isinstance(node, c.LabelStmt):
            self._resolve_stmt(node.body, scopes, function)
        # Break/Continue/Goto/Empty need no resolution

    # -- expression resolution + light type inference ----------------------------------

    def _resolve_expression(self, expr: c.Expr,
                            scopes: list[dict[str, Symbol]],
                            in_call_position: bool = False,
                            ) -> Optional[ct.CType]:
        if isinstance(expr, c.Identifier):
            symbol = self._lookup(expr.name, scopes)
            if symbol is None and in_call_position:
                symbol = self._implicit_function(expr)
            expr.symbol = symbol
            return symbol.type if symbol else None
        if isinstance(expr, c.Call):
            callee_type = self._resolve_expression(expr.callee, scopes,
                                                   in_call_position=True)
            for argument in expr.arguments:
                self._resolve_expression(argument, scopes)
            resolved = _strip(callee_type)
            if isinstance(resolved, ct.Pointer):
                resolved = _strip(resolved.pointee)
            if isinstance(resolved, ct.FunctionType):
                return resolved.return_type
            return None
        if isinstance(expr, c.Member):
            base_type = self._resolve_expression(expr.base, scopes)
            field = self._lookup_field(base_type, expr.name, expr.arrow)
            expr.resolved_field = field
            return field.type if field else None
        if isinstance(expr, c.Index):
            base_type = self._resolve_expression(expr.base, scopes)
            self._resolve_expression(expr.index, scopes)
            stripped = _strip(base_type)
            if isinstance(stripped, ct.Array):
                return stripped.element
            if isinstance(stripped, ct.Pointer):
                return stripped.pointee
            return None
        if isinstance(expr, c.Unary):
            operand_type = self._resolve_expression(expr.operand, scopes)
            if expr.op == "&":
                return ct.Pointer(operand_type
                                  or ct.Primitive("int"))
            if expr.op == "*":
                stripped = _strip(operand_type)
                if isinstance(stripped, ct.Pointer):
                    return stripped.pointee
                if isinstance(stripped, ct.Array):
                    return stripped.element
                return None
            if expr.op in ("sizeof", "_Alignof"):
                return ct.Primitive("unsigned long")
            return operand_type
        if isinstance(expr, c.SizeofType):
            expr.type = self._resolve_type(expr.type)
            return ct.Primitive("unsigned long")
        if isinstance(expr, c.Binary):
            left = self._resolve_expression(expr.left, scopes)
            right = self._resolve_expression(expr.right, scopes)
            stripped = _strip(left)
            if isinstance(stripped, (ct.Pointer, ct.Array)):
                return left
            return left or right
        if isinstance(expr, c.Assignment):
            target = self._resolve_expression(expr.target, scopes)
            self._resolve_expression(expr.value, scopes)
            return target
        if isinstance(expr, c.Conditional):
            self._resolve_expression(expr.condition, scopes)
            then_type = self._resolve_expression(expr.then_value, scopes)
            else_type = self._resolve_expression(expr.else_value, scopes)
            return then_type or else_type
        if isinstance(expr, c.Cast):
            expr.type = self._resolve_type(expr.type)
            self._resolve_expression(expr.operand, scopes)
            return expr.type
        if isinstance(expr, c.Comma):
            self._resolve_expression(expr.left, scopes)
            return self._resolve_expression(expr.right, scopes)
        if isinstance(expr, c.InitList):
            for item in expr.items:
                self._resolve_expression(item, scopes)
            return None
        if isinstance(expr, c.IntLiteral):
            return ct.Primitive("int")
        if isinstance(expr, c.FloatLiteral):
            return ct.Primitive("double")
        if isinstance(expr, c.CharLiteral):
            return ct.Primitive("char")
        if isinstance(expr, c.StringLiteral):
            return ct.Pointer(ct.Primitive("char"))
        return None

    def _lookup(self, name: str,
                scopes: list[dict[str, Symbol]]) -> Optional[Symbol]:
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        return self._file_scope.get(name)

    def _implicit_function(self, expr: c.Identifier) -> Symbol:
        symbol = Symbol(KIND_FUNCTION_DECL, expr.name,
                        f"c:@F@{expr.name}",
                        ct.FunctionType(ct.Primitive("int"), (), False),
                        expr.range, self._path, is_definition=False,
                        external_linkage=True, implicit=True)
        self._file_scope[expr.name] = symbol
        self._add(symbol)
        return symbol

    def _lookup_field(self, base_type: Optional[ct.CType], name: str,
                      arrow: bool) -> Optional[Symbol]:
        stripped = _strip(base_type)
        if arrow and isinstance(stripped, (ct.Pointer, ct.Array)):
            stripped = _strip(stripped.pointee
                              if isinstance(stripped, ct.Pointer)
                              else stripped.element)
        if isinstance(stripped, ct.RecordType) and stripped.tag:
            record = self._tags.get(f"{stripped.kind} {stripped.tag}")
            if record is not None:
                field = self._find_field(record, name)
                if field is not None:
                    return field
        # fall back to a unique field-name match (header not parsed etc.)
        candidates = self._fields_by_name.get(name)
        if candidates and len(candidates) == 1:
            return candidates[0]
        return None

    def _find_field(self, record: Symbol, name: str) -> Optional[Symbol]:
        for field in self._record_fields.get(record.usr, ()):
            if field.name == name:
                return field
            if field.decl is not None and field.decl.name is None:
                # anonymous struct/union member: search inside
                inner = _strip(field.type)
                if isinstance(inner, ct.RecordType) and inner.tag:
                    inner_record = self._tags.get(
                        f"{inner.kind} {inner.tag}")
                    if inner_record is not None:
                        found = self._find_field(inner_record, name)
                        if found is not None:
                            return found
        return None

    # -- types ------------------------------------------------------------------------

    def _resolve_type(self, ctype: ct.CType) -> ct.CType:
        """Replace typedef placeholders with their real underlying type."""
        if isinstance(ctype, ct.TypedefType):
            underlying = self._typedef_types.get(ctype.name)
            if underlying is not None:
                return ct.TypedefType(ctype.name, underlying,
                                      ctype.qualifiers)
            return ctype
        if isinstance(ctype, ct.Pointer):
            return ct.Pointer(self._resolve_type(ctype.pointee),
                              ctype.qualifiers)
        if isinstance(ctype, ct.Array):
            return ct.Array(self._resolve_type(ctype.element),
                            ctype.length, ctype.qualifiers)
        if isinstance(ctype, ct.FunctionType):
            return ct.FunctionType(
                self._resolve_type(ctype.return_type),
                tuple(self._resolve_type(param)
                      for param in ctype.parameters),
                ctype.variadic, ctype.qualifiers)
        return ctype

    # -- bookkeeping -------------------------------------------------------------------

    def _add(self, symbol: Symbol) -> None:
        self._symbols.append(symbol)

    def _internal_usr(self, prefix: str, name: str) -> str:
        return f"c:{self._path}@{prefix}@{name}"

    def _tag_usr(self, kind: str, tag: str) -> str:
        if tag.startswith("<anon"):
            return f"c:{self._path}@{kind}@{tag}"
        return f"c:@{kind[0].upper()}@{tag}"

    def _anonymous_tag(self, kind: str) -> str:
        self._anon_counter += 1
        return f"<anon-{kind}-{self._anon_counter}>"

    def _build_info(self) -> UnitInfo:
        def pick(*kinds: str) -> list[Symbol]:
            return [symbol for symbol in self._symbols
                    if symbol.kind in kinds]

        exported = {}
        imported = {}
        for symbol in self._symbols:
            if symbol.external_linkage and symbol.is_definition:
                exported[symbol.name] = symbol
            elif symbol.external_linkage and not symbol.is_definition:
                imported.setdefault(symbol.name, symbol)
        for name in exported:
            imported.pop(name, None)
        return UnitInfo(
            tu=self.tu,
            symbols=list(self._symbols),
            functions=pick(KIND_FUNCTION),
            function_decls=pick(KIND_FUNCTION_DECL),
            globals=pick(KIND_GLOBAL),
            global_decls=pick(KIND_GLOBAL_DECL),
            typedefs=pick(KIND_TYPEDEF),
            records=pick(KIND_STRUCT, KIND_UNION),
            record_decls=pick(KIND_STRUCT_DECL, KIND_UNION_DECL),
            enums=pick(KIND_ENUM),
            enum_decls=pick(KIND_ENUM_DECL),
            enumerators=pick(KIND_ENUMERATOR),
            fields=pick(KIND_FIELD),
            record_fields=dict(self._record_fields),
            exported=exported,
            imported=imported)


def _strip(ctype: Optional[ct.CType]) -> Optional[ct.CType]:
    if ctype is None:
        return None
    return ct.strip_typedefs(ctype)


def analyze(tu: c.TranslationUnit) -> UnitInfo:
    """Convenience wrapper."""
    return Sema(tu).analyze()
