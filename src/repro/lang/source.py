"""Source files, locations and ranges.

File identity is an integer ``file_id`` handed out by the
:class:`FileRegistry`; the graph model's ``USE_FILE_ID``/
``NAME_FILE_ID`` edge properties (paper Table 2) are these ids.
Columns and lines are 1-based, as in the paper's Figure 4 example.
"""

from __future__ import annotations

import dataclasses
import os
import posixpath
from typing import Iterable

from repro.errors import PreprocessorError


@dataclasses.dataclass(frozen=True)
class SourceLocation:
    """A point in a file (1-based line and column)."""

    file_id: int
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.file_id}:{self.line}:{self.column}"


@dataclasses.dataclass(frozen=True)
class SourceRange:
    """A [start, end] character range, inclusive of the end token."""

    file_id: int
    start_line: int
    start_column: int
    end_line: int
    end_column: int

    @classmethod
    def from_locations(cls, start: SourceLocation,
                       end: SourceLocation) -> "SourceRange":
        if start.file_id != end.file_id:
            # macro expansions can straddle files; keep the start file
            return cls(start.file_id, start.line, start.column,
                       start.line, start.column)
        return cls(start.file_id, start.line, start.column,
                   end.line, end.column)

    def __str__(self) -> str:
        return (f"{self.file_id}:{self.start_line}:{self.start_column}-"
                f"{self.end_line}:{self.end_column}")


@dataclasses.dataclass
class SourceFile:
    """One registered source file."""

    file_id: int
    path: str        # normalized path as given to the registry
    content: str

    @property
    def name(self) -> str:
        return posixpath.basename(self.path)

    @property
    def directory(self) -> str:
        return posixpath.dirname(self.path)

    def line_count(self) -> int:
        return self.content.count("\n") + 1


class VirtualFileSystem:
    """An in-memory file system for the front end.

    Both tests and the synthetic-kernel workload generator feed the
    compiler from memory; a real directory tree can be imported with
    :meth:`add_tree`.
    """

    def __init__(self, files: dict[str, str] | None = None) -> None:
        self._files: dict[str, str] = {}
        if files:
            for path, content in files.items():
                self.add(path, content)

    @staticmethod
    def normalize(path: str) -> str:
        normalized = posixpath.normpath(path.replace(os.sep, "/"))
        return normalized.lstrip("./") if normalized != "." else normalized

    def add(self, path: str, content: str) -> str:
        normalized = self.normalize(path)
        self._files[normalized] = content
        return normalized

    def add_tree(self, root: str) -> int:
        """Import all files under a real directory; returns the count."""
        count = 0
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                relative = os.path.relpath(full, root)
                with open(full, encoding="utf-8", errors="replace") as fh:
                    self.add(relative, fh.read())
                count += 1
        return count

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def read(self, path: str) -> str:
        normalized = self.normalize(path)
        if normalized not in self._files:
            raise PreprocessorError(f"no such file: {path!r}")
        return self._files[normalized]

    def paths(self) -> Iterable[str]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)


class FileRegistry:
    """Stable path -> file_id mapping shared across compilation units.

    The linker and the extractor both need to agree on file ids, so
    one registry is threaded through a whole build.
    """

    def __init__(self, filesystem: VirtualFileSystem) -> None:
        self.filesystem = filesystem
        self._by_path: dict[str, SourceFile] = {}
        self._by_id: list[SourceFile] = []

    def open(self, path: str) -> SourceFile:
        normalized = self.filesystem.normalize(path)
        existing = self._by_path.get(normalized)
        if existing is not None:
            return existing
        content = self.filesystem.read(normalized)
        source = SourceFile(len(self._by_id), normalized, content)
        self._by_path[normalized] = source
        self._by_id.append(source)
        return source

    def by_id(self, file_id: int) -> SourceFile:
        if not 0 <= file_id < len(self._by_id):
            raise PreprocessorError(f"unknown file id {file_id}")
        return self._by_id[file_id]

    def known_files(self) -> list[SourceFile]:
        return list(self._by_id)

    def resolve_include(self, name: str, current_directory: str,
                        include_paths: Iterable[str],
                        angled: bool) -> str | None:
        """Find an include target; returns its normalized path or None.

        Quoted includes search the including file's directory first,
        then the -I paths; angled includes search only the -I paths —
        the standard lookup order the paper's wrapper scripts inherit
        from the native compiler.
        """
        candidates = []
        if not angled:
            candidates.append(posixpath.join(current_directory, name)
                              if current_directory else name)
        for include_path in include_paths:
            candidates.append(posixpath.join(include_path, name))
        for candidate in candidates:
            if self.filesystem.exists(candidate):
                return self.filesystem.normalize(candidate)
        return None
