"""Statistical profiles for the graph synthesizer.

``UEK_PROFILE`` targets what the paper reports for the Unbreakable
Enterprise Kernel 2.6.39 (11.4 MLoC): "just over half a million nodes
and close to four million edges, for a ratio of 1:8" (Table 3), a
store of ~800 MB dominated by properties (Table 4), a heavy-tailed
degree distribution whose hubs are primitives (``int`` ~79K) and
common constants (``NULL`` ~19K) (Figure 7).

The paper does not publish per-type node/edge counts, so the mixes
below are estimates chosen to be plausible for kernel C code and to
reproduce the published aggregates; they are called out as estimates
in EXPERIMENTS.md. Every mix is normalized at load, so tweaking one
entry never breaks the others.
"""

from __future__ import annotations

import dataclasses

from repro.core import model


@dataclasses.dataclass(frozen=True)
class KernelProfile:
    """Everything the synthesizer needs to imitate a codebase."""

    name: str
    total_nodes: int
    #: target edges per node (the paper's "ratio of 1:8")
    edges_per_node: float
    #: fraction of nodes per Table 1 node type (normalized on access)
    node_mix: dict[str, float]
    #: relative frequency of reference edge types (normalized)
    reference_edge_mix: dict[str, float]
    #: power-law exponent for reference-edge target popularity
    degree_alpha: float = 2.1
    #: average parameters / locals per function
    params_per_function: float = 2.2
    locals_per_function: float = 1.8
    fields_per_struct: float = 5.5
    enumerators_per_enum: float = 8.0
    functions_per_file: float = 9.0
    files_per_directory: float = 8.0
    random_seed: int = 20150531  # GRADES'15 opening day

    def normalized_node_mix(self) -> dict[str, float]:
        total = sum(self.node_mix.values())
        return {key: value / total for key, value in
                self.node_mix.items()}

    def normalized_reference_mix(self) -> dict[str, float]:
        total = sum(self.reference_edge_mix.values())
        return {key: value / total
                for key, value in self.reference_edge_mix.items()}

    def node_count(self, node_type: str) -> int:
        return max(1, round(self.normalized_node_mix()
                            .get(node_type, 0.0) * self.total_nodes))

    def scaled(self, factor: float) -> "KernelProfile":
        """The same shape at ``factor`` times the size."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return dataclasses.replace(
            self, name=f"{self.name}-x{factor:g}",
            total_nodes=max(200, int(self.total_nodes * factor)))


#: node mix (fractions; estimated — see module docstring).
_UEK_NODE_MIX = {
    model.FUNCTION: 0.135,
    model.FUNCTION_DECL: 0.075,
    model.PARAMETER: 0.215,
    model.LOCAL: 0.165,
    model.STATIC_LOCAL: 0.004,
    model.GLOBAL: 0.024,
    model.GLOBAL_DECL: 0.006,
    model.FIELD: 0.150,
    model.STRUCT: 0.022,
    model.STRUCT_DECL: 0.003,
    model.UNION: 0.0035,
    model.UNION_DECL: 0.0005,
    model.ENUM_DEF: 0.005,
    model.ENUMERATOR: 0.055,
    model.TYPEDEF: 0.011,
    model.MACRO: 0.068,
    model.FILE: 0.045,
    model.DIRECTORY: 0.0045,
    model.MODULE: 0.0012,
    model.FUNCTION_TYPE: 0.0025,
    # primitives are a fixed tiny set created explicitly, not mixed
}

#: reference-edge mix (relative weights; estimated).
_UEK_REFERENCE_MIX = {
    model.CALLS: 0.30,
    model.READS: 0.20,
    model.WRITES: 0.065,
    model.READS_MEMBER: 0.135,
    model.WRITES_MEMBER: 0.065,
    model.DEREFERENCES: 0.02,
    model.DEREFERENCES_MEMBER: 0.02,
    model.TAKES_ADDRESS_OF: 0.02,
    model.TAKES_ADDRESS_OF_MEMBER: 0.005,
    model.USES_ENUMERATOR: 0.035,
    model.CASTS_TO: 0.03,
    model.GETS_SIZE_OF: 0.012,
    model.GETS_ALIGN_OF: 0.001,
    model.EXPANDS_MACRO: 0.08,
    model.INTERROGATES_MACRO: 0.012,
}

#: paper Table 3 aggregates: ~0.53M nodes, ~3.9M edges (1:8 quoted,
#: exact counts partly garbled in the source text — see EXPERIMENTS.md).
UEK_PROFILE = KernelProfile(
    name="uek-2.6.39",
    total_nodes=530_000,
    edges_per_node=7.4,
    node_mix=dict(_UEK_NODE_MIX),
    reference_edge_mix=dict(_UEK_REFERENCE_MIX),
)

#: a laptop-friendly default for tests and CI benches (~1/50 scale).
BENCH_PROFILE = UEK_PROFILE.scaled(1 / 50)

#: named entities the paper's Table 5 queries look up; the synthesizer
#: plants these so Figures 3–6 run verbatim on synthetic graphs.
PLANTED = {
    "module": "wakeup.elf",
    "executable": "vmlinux",
    "search_field": "id",
    "closure_seed": "pci_read_bases",
    "debug_from": "sr_media_change",
    "debug_to": "get_sectorsize",
    "debug_container": "packet_command",
    "debug_field": "cmd",
    "xref_symbol": "id",
    "null_macro": "NULL",
}
