"""Workload generation: synthetic kernels at any scale.

The paper evaluates on Oracle's Unbreakable Enterprise Kernel
(11.4 MLoC, proprietary). Two substitutes:

* :mod:`~repro.workloads.synthc` generates an actual C source tree
  (subsystems, headers, drivers) compiled through the full front end —
  exercising the complete extractor path end to end, including an
  evolution simulator for the versioned-store experiments.
* :mod:`~repro.workloads.graphgen` synthesizes the dependency graph
  directly from a statistical profile
  (:mod:`~repro.workloads.profiles`) calibrated to the paper's
  Table 3 / Figure 7 shape: ~1:8 node:edge ratio, power-law degrees,
  primitive/constant hubs, and the named entities the Table 5 queries
  look up (``wakeup.elf``, ``pci_read_bases``, ``sr_media_change``...).
"""

from repro.workloads.graphgen import generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE, KernelProfile
from repro.workloads.synthc import SyntheticCodebase, generate_codebase

__all__ = ["KernelProfile", "SyntheticCodebase", "UEK_PROFILE",
           "generate_codebase", "generate_kernel_graph"]
