"""Direct statistical synthesis of kernel-shaped dependency graphs.

The generator builds a graph with the Table 1/2 vocabulary whose
aggregates track a :class:`~repro.workloads.profiles.KernelProfile`:

* structural edges follow from structure (every parameter gets its
  ``has_param`` + ``isa_type``, every field its ``contains`` +
  ``isa_type``, ...),
* reference edges are filled to the profile's edge budget using
  preferential attachment, which yields the heavy-tailed degree
  distribution of Figure 7,
* variable types are drawn with ``int`` heavily weighted and a large
  share of macro expansions target ``NULL``, reproducing the paper's
  named hubs (int ~79K, NULL ~19K at full scale),
* the entities the paper's Table 5 queries mention are planted
  verbatim (``wakeup.elf``, ``pci_read_bases``, ``sr_media_change``/
  ``get_sectorsize``/``packet_command.cmd``, and a reference to a
  field ``id`` at the Figure 4 coordinates 104:16), so Figures 3–6
  run unmodified against synthetic graphs.

Generation is deterministic for a given profile + seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core import model
from repro.graphdb import PropertyGraph
from repro.workloads.profiles import PLANTED, KernelProfile

_PREFIXES = ("sr", "pci", "net", "sched", "mm", "fs", "usb", "scsi",
             "irq", "acpi", "tty", "blk", "vfs", "ipc", "snd", "drm",
             "nvme", "xfs", "ext4", "kvm")
_VERBS = ("read", "write", "init", "probe", "register", "alloc", "free",
          "get", "set", "update", "handle", "flush", "enable", "disable",
          "poll", "start", "stop", "attach", "detach", "reset")
_NOUNS = ("device", "buffer", "queue", "page", "sector", "config",
          "state", "irq", "dma", "cache", "table", "entry", "region",
          "channel", "clock", "ring", "slot", "bus", "port", "node")
_PRIMITIVES = ("int", "char", "unsigned int", "unsigned long", "long",
               "unsigned char", "short", "unsigned short", "void",
               "float", "double", "long long", "unsigned long long",
               "_Bool")
#: relative popularity of primitives as variable types — int dominates,
#: which is what makes it the Figure 7 hub.
_PRIMITIVE_WEIGHTS = (46, 14, 8, 8, 4, 6, 2, 2, 4, 1, 2, 2, 1, 1)

_DIR_NAMES = ("drivers", "kernel", "fs", "mm", "net", "include", "arch",
              "block", "sound", "crypto", "lib", "security", "virt")


class _Synthesizer:
    def __init__(self, profile: KernelProfile, seed: int | None) -> None:
        self.profile = profile
        self.rng = random.Random(profile.random_seed if seed is None
                                 else seed)
        self.graph = PropertyGraph(
            auto_index_keys=model.AUTO_INDEX_KEYS)
        self.directories: list[int] = []
        self.files: list[int] = []           # .c and .h file nodes
        self.source_files: list[int] = []    # .c only
        self.functions: list[int] = []
        self.globals: list[int] = []
        self.fields: list[int] = []
        self.structs: list[int] = []
        self.enumerators: list[int] = []
        self.macros: list[int] = []
        self.typedefs: list[int] = []
        self.primitives: dict[str, int] = {}
        self.null_macro: int | None = None
        #: function node -> (file node, first line) for edge positions
        self.function_home: dict[int, tuple[int, int]] = {}
        self._name_counter = 0
        #: preferential-attachment pools per category
        self._pools: dict[str, list[int]] = {}

    # -- naming -----------------------------------------------------------------

    def _fresh_name(self, pattern: str) -> str:
        self._name_counter += 1
        prefix = self.rng.choice(_PREFIXES)
        verb = self.rng.choice(_VERBS)
        noun = self.rng.choice(_NOUNS)
        return pattern.format(prefix=prefix, verb=verb, noun=noun,
                              n=self._name_counter)

    # -- node factory --------------------------------------------------------------

    def _node(self, node_type: str, short_name: str,
              name: str | None = None, **extra) -> int:
        properties = {
            model.P_TYPE: node_type,
            model.P_SHORT_NAME: short_name,
            model.P_NAME: name or short_name,
            model.P_LONG_NAME: name or short_name,
        }
        properties.update(extra)
        return self.graph.add_node(*model.labels_for(node_type),
                                   properties=properties)

    # -- structure ----------------------------------------------------------------

    def build(self) -> PropertyGraph:
        self._make_primitives()
        self._make_directories()
        self._make_files()
        self._make_macros()
        self._make_records()
        self._make_enums()
        self._make_typedefs()
        self._make_globals()
        self._make_functions()
        self._make_modules()
        self._plant_paper_entities()
        self._fill_reference_edges()
        return self.graph

    def _make_primitives(self) -> None:
        for name in _PRIMITIVES:
            self.primitives[name] = self._node(model.PRIMITIVE, name)

    def _make_directories(self) -> None:
        count = self.profile.node_count(model.DIRECTORY)
        root = self._node(model.DIRECTORY, ".", ".")
        self.directories.append(root)
        for index in range(max(count - 1, 1)):
            parent = self.rng.choice(self.directories)
            base = _DIR_NAMES[index % len(_DIR_NAMES)]
            name = base if index < len(_DIR_NAMES) \
                else f"{base}_{index}"
            directory = self._node(model.DIRECTORY, name, name)
            self.graph.add_edge(parent, directory, model.DIR_CONTAINS)
            self.directories.append(directory)

    def _make_files(self) -> None:
        count = self.profile.node_count(model.FILE)
        for index in range(count):
            is_header = self.rng.random() < 0.3
            suffix = "h" if is_header else "c"
            name = (f"{self.rng.choice(_PREFIXES)}_"
                    f"{self.rng.choice(_NOUNS)}{index}.{suffix}")
            file_node = self._node(model.FILE, name, name)
            directory = self.rng.choice(self.directories)
            self.graph.add_edge(directory, file_node, model.DIR_CONTAINS)
            self.files.append(file_node)
            if not is_header:
                self.source_files.append(file_node)
        # includes edges: each source includes a few headers
        headers = [f for f in self.files if f not in self.source_files]
        if headers:
            for source in self.source_files:
                for header in self.rng.sample(
                        headers, k=min(len(headers),
                                       self.rng.randint(1, 4))):
                    self.graph.add_edge(
                        source, header, model.INCLUDES,
                        use_file_id=source,
                        use_start_line=self.rng.randint(1, 20))

    def _make_macros(self) -> None:
        count = self.profile.node_count(model.MACRO)
        self.null_macro = self._node(model.MACRO,
                                     PLANTED["null_macro"])
        self._contain(self.null_macro)
        self.macros.append(self.null_macro)
        for index in range(count - 1):
            name = (f"CONFIG_{self.rng.choice(_PREFIXES).upper()}_"
                    f"{self.rng.choice(_NOUNS).upper()}_{index}")
            macro = self._node(model.MACRO, name)
            self._contain(macro)
            self.macros.append(macro)

    def _make_records(self) -> None:
        struct_count = self.profile.node_count(model.STRUCT)
        union_count = self.profile.node_count(model.UNION)
        field_count = self.profile.node_count(model.FIELD)
        records = []
        for index in range(struct_count):
            name = (f"{self.rng.choice(_PREFIXES)}_"
                    f"{self.rng.choice(_NOUNS)}_{index}")
            struct = self._node(model.STRUCT, name)
            self._contain(struct)
            self.structs.append(struct)
            records.append(struct)
        for index in range(union_count):
            union = self._node(
                model.UNION,
                f"{self.rng.choice(_NOUNS)}_u{index}")
            self._contain(union)
            records.append(union)
        for index in range(field_count):
            record = self.rng.choice(records)
            field_name = (f"{self.rng.choice(_NOUNS)}_{index}"
                          if self.rng.random() > 0.02 else "id")
            record_name = self.graph.node_property(record,
                                                   model.P_SHORT_NAME)
            field = self._node(model.FIELD, field_name,
                               f"{record_name}::{field_name}")
            self.graph.add_edge(record, field, model.CONTAINS)
            self._contain(field, same_as=record)
            self.graph.add_edge(field, self._random_type(),
                                model.ISA_TYPE)
            self.fields.append(field)

    def _make_enums(self) -> None:
        enum_count = self.profile.node_count(model.ENUM_DEF)
        enumerator_count = self.profile.node_count(model.ENUMERATOR)
        enums = []
        for index in range(enum_count):
            enum = self._node(
                model.ENUM_DEF,
                f"{self.rng.choice(_PREFIXES)}_state_{index}")
            self._contain(enum)
            enums.append(enum)
        for index in range(enumerator_count):
            enum = self.rng.choice(enums)
            enumerator = self._node(
                model.ENUMERATOR,
                f"{self.rng.choice(_NOUNS).upper()}_{index}",
                value=index % 32)
            self.graph.add_edge(enum, enumerator, model.CONTAINS)
            self.enumerators.append(enumerator)

    def _make_typedefs(self) -> None:
        for index in range(self.profile.node_count(model.TYPEDEF)):
            typedef = self._node(
                model.TYPEDEF,
                f"{self.rng.choice(_NOUNS)}{index}_t")
            self._contain(typedef)
            self.graph.add_edge(typedef, self._random_type(),
                                model.ISA_TYPE)
            self.typedefs.append(typedef)
        for index in range(self.profile.node_count(model.FUNCTION_TYPE)):
            self._node(model.FUNCTION_TYPE,
                       f"int (cb{index})(void *)")

    def _make_globals(self) -> None:
        for index in range(self.profile.node_count(model.GLOBAL)):
            name = (f"{self.rng.choice(_PREFIXES)}_"
                    f"{self.rng.choice(_NOUNS)}_{index}")
            global_node = self._node(model.GLOBAL, name)
            self._contain(global_node)
            self.graph.add_edge(global_node, self._random_type(),
                                model.ISA_TYPE)
            self.globals.append(global_node)
        for index in range(self.profile.node_count(model.GLOBAL_DECL)):
            decl = self._node(model.GLOBAL_DECL, f"extern_g{index}")
            self._contain(decl)
            if self.globals:
                self.graph.add_edge(decl, self.rng.choice(self.globals),
                                    model.DECLARES)

    def _make_functions(self) -> None:
        function_count = self.profile.node_count(model.FUNCTION)
        param_budget = self.profile.node_count(model.PARAMETER)
        local_budget = self.profile.node_count(model.LOCAL)
        static_local_budget = self.profile.node_count(model.STATIC_LOCAL)
        decl_count = self.profile.node_count(model.FUNCTION_DECL)
        for index in range(function_count):
            name = self._fresh_name("{prefix}_{verb}_{noun}_{n}")
            function = self._node(model.FUNCTION, name,
                                  long_name=f"{name}(...)")
            home_file = self.rng.choice(self.source_files) \
                if self.source_files else self._contain(function)
            if self.source_files:
                self.graph.add_edge(home_file, function,
                                    model.FILE_CONTAINS)
            self.function_home[function] = (
                home_file, self.rng.randint(1, 2000))
            self.functions.append(function)
            self.graph.add_edge(function, self._random_type(),
                                model.HAS_RET_TYPE)
            params = min(param_budget,
                         self._poisson(self.profile.params_per_function))
            param_budget -= params
            for position in range(params):
                param = self._node(model.PARAMETER,
                                   f"arg{position}",
                                   f"{name}::arg{position}")
                self.graph.add_edge(function, param, model.HAS_PARAM,
                                    index=position)
                self.graph.add_edge(param, self._random_type(),
                                    model.ISA_TYPE)
            locals_ = min(local_budget,
                          self._poisson(self.profile.locals_per_function))
            local_budget -= locals_
            for position in range(locals_):
                local = self._node(model.LOCAL,
                                   self.rng.choice(_NOUNS),
                                   f"{name}::{position}")
                self.graph.add_edge(function, local, model.HAS_LOCAL)
                self.graph.add_edge(local, self._random_type(),
                                    model.ISA_TYPE)
            if static_local_budget and self.rng.random() < 0.03:
                static_local_budget -= 1
                static = self._node(model.STATIC_LOCAL, "cache",
                                    f"{name}::cache")
                self.graph.add_edge(function, static, model.HAS_LOCAL)
                self.graph.add_edge(static, self._random_type(),
                                    model.ISA_TYPE)
        headers = [f for f in self.files if f not in self.source_files]
        for index in range(decl_count):
            if not self.functions:
                break
            target = self.rng.choice(self.functions)
            decl = self._node(
                model.FUNCTION_DECL,
                self.graph.node_property(target, model.P_SHORT_NAME))
            if headers:
                self.graph.add_edge(self.rng.choice(headers), decl,
                                    model.FILE_CONTAINS)
            self.graph.add_edge(decl, target, model.DECLARES)

    def _make_modules(self) -> None:
        module_count = max(2, self.profile.node_count(model.MODULE))
        object_count = max(module_count - 2, 1)
        objects = []
        sources = list(self.source_files)
        self.rng.shuffle(sources)
        share = max(1, len(sources) // max(object_count, 1))
        for index in range(object_count):
            object_node = self._node(model.MODULE, f"built_in_{index}.o")
            slice_ = sources[index * share:(index + 1) * share]
            for source in slice_:
                self.graph.add_edge(object_node, source,
                                    model.COMPILED_FROM)
            objects.append(object_node)
        executable = self._node(model.MODULE, PLANTED["executable"])
        for order, object_node in enumerate(objects):
            self.graph.add_edge(executable, object_node,
                                model.LINKED_FROM, link_order=order)
        self.wakeup_module = self._node(model.MODULE, PLANTED["module"])
        if objects:
            self.graph.add_edge(self.wakeup_module, objects[0],
                                model.LINKED_FROM, link_order=0)

    # -- paper-specific plants ----------------------------------------------------

    def _plant_paper_entities(self) -> None:
        graph = self.graph
        # Figure 3: a struct with a field 'id' inside wakeup.elf's files
        wakeup_file = self._node(model.FILE, "wakeup_core.c")
        self.files.append(wakeup_file)
        self.source_files.append(wakeup_file)
        graph.add_edge(self.directories[0], wakeup_file,
                       model.DIR_CONTAINS)
        graph.add_edge(self.wakeup_module, wakeup_file,
                       model.COMPILED_FROM)
        event = self._node(model.STRUCT, "wakeup_event")
        graph.add_edge(wakeup_file, event, model.FILE_CONTAINS)
        id_field = self._node(model.FIELD, PLANTED["search_field"],
                              "wakeup_event::id")
        graph.add_edge(event, id_field, model.CONTAINS)
        graph.add_edge(wakeup_file, id_field, model.FILE_CONTAINS)
        graph.add_edge(id_field, self.primitives["int"], model.ISA_TYPE)
        self.fields.append(id_field)
        self.structs.append(event)

        # Figure 4: a reference to that field at exactly 104:16
        poller = self._plant_function("wakeup_poll", wakeup_file)
        graph.add_edge(
            poller, id_field, model.READS_MEMBER,
            use_file_id=wakeup_file, use_start_line=104,
            use_start_col=9, use_end_line=104, use_end_col=18,
            name_file_id=wakeup_file, name_start_line=104,
            name_start_col=16, name_end_line=104, name_end_col=17)

        # Figure 5: the sr_media_change debugging scenario
        sr_file = self._node(model.FILE, "sr.c")
        self.files.append(sr_file)
        self.source_files.append(sr_file)
        graph.add_edge(self.directories[0], sr_file, model.DIR_CONTAINS)
        packet = self._node(model.STRUCT, PLANTED["debug_container"])
        graph.add_edge(sr_file, packet, model.FILE_CONTAINS)
        cmd = self._node(model.FIELD, PLANTED["debug_field"],
                         "packet_command::cmd")
        graph.add_edge(packet, cmd, model.CONTAINS)
        graph.add_edge(sr_file, cmd, model.FILE_CONTAINS)
        graph.add_edge(cmd, self.primitives["unsigned char"],
                       model.ISA_TYPE)
        media_change = self._plant_function(PLANTED["debug_from"],
                                            sr_file)
        sectorsize = self._plant_function(PLANTED["debug_to"], sr_file)
        do_ioctl = self._plant_function("sr_do_ioctl", sr_file)
        packet_fn = self._plant_function("sr_packet", sr_file)
        self._call(media_change, packet_fn, sr_file, 230)
        self._call(media_change, sectorsize, sr_file, 236)
        self._call(sectorsize, do_ioctl, sr_file, 41)
        self._call(packet_fn, do_ioctl, sr_file, 88)
        graph.add_edge(do_ioctl, cmd, model.WRITES_MEMBER,
                       use_file_id=sr_file, use_start_line=57,
                       use_start_col=5, use_end_line=57,
                       use_end_col=20, name_file_id=sr_file,
                       name_start_line=57, name_start_col=9,
                       name_end_line=57, name_end_col=11)

        # Figure 6: the closure seed, wired into the existing call graph
        seed = self._plant_function(PLANTED["closure_seed"], sr_file)
        for target in self.rng.sample(
                self.functions, k=min(4, len(self.functions))):
            self._call(seed, target, sr_file,
                       self.rng.randint(100, 400))

    def _plant_function(self, name: str, file_node: int) -> int:
        function = self._node(model.FUNCTION, name,
                              long_name=f"{name}(...)")
        self.graph.add_edge(file_node, function, model.FILE_CONTAINS)
        self.graph.add_edge(function, self.primitives["int"],
                            model.HAS_RET_TYPE)
        self.function_home[function] = (file_node,
                                        self.rng.randint(1, 500))
        self.functions.append(function)
        return function

    def _call(self, caller: int, callee: int, file_node: int,
              line: int) -> None:
        self.graph.add_edge(
            caller, callee, model.CALLS,
            use_file_id=file_node, use_start_line=line,
            use_start_col=5, use_end_line=line, use_end_col=40,
            name_file_id=file_node, name_start_line=line,
            name_start_col=5, name_end_line=line, name_end_col=25)

    # -- reference-edge fill -----------------------------------------------------------

    def _fill_reference_edges(self) -> None:
        budget = int(self.profile.edges_per_node
                     * self.graph.node_count()) - self.graph.edge_count()
        if budget <= 0:
            return
        mix = self.profile.normalized_reference_mix()
        edge_types = list(mix)
        weights = [mix[edge_type] for edge_type in edge_types]
        choices = self.rng.choices(edge_types, weights, k=budget)
        for edge_type in choices:
            owner = self.rng.choice(self.functions)
            target = self._reference_target(edge_type)
            if target is None or target == owner:
                continue
            home_file, base_line = self.function_home.get(
                owner, (self.files[0], 1))
            line = base_line + self.rng.randint(0, 80)
            column = self.rng.randint(1, 60)
            self.graph.add_edge(
                owner, target, edge_type,
                use_file_id=home_file, use_start_line=line,
                use_start_col=column, use_end_line=line,
                use_end_col=column + self.rng.randint(3, 30),
                name_file_id=home_file, name_start_line=line,
                name_start_col=column, name_end_line=line,
                name_end_col=column + self.rng.randint(2, 12))

    def _reference_target(self, edge_type: str) -> int | None:
        if edge_type == model.CALLS:
            return self._preferential("functions", self.functions)
        if edge_type in (model.READS, model.WRITES,
                         model.TAKES_ADDRESS_OF, model.DEREFERENCES):
            return self._preferential("globals", self.globals)
        if edge_type in (model.READS_MEMBER, model.WRITES_MEMBER,
                         model.DEREFERENCES_MEMBER,
                         model.TAKES_ADDRESS_OF_MEMBER):
            return self._preferential("fields", self.fields)
        if edge_type == model.USES_ENUMERATOR:
            return self._preferential("enumerators", self.enumerators)
        if edge_type in (model.CASTS_TO, model.GETS_SIZE_OF,
                         model.GETS_ALIGN_OF):
            return self._random_type()
        if edge_type == model.EXPANDS_MACRO:
            # a fat share of expansions hit NULL: the Figure 7 hub
            if self.null_macro is not None and self.rng.random() < 0.25:
                return self.null_macro
            return self._preferential("macros", self.macros)
        if edge_type == model.INTERROGATES_MACRO:
            return self._preferential("macros", self.macros)
        return None

    def _preferential(self, pool_name: str,
                      population: Sequence[int]) -> int | None:
        """Barabási-style rich-get-richer target selection."""
        if not population:
            return None
        pool = self._pools.setdefault(pool_name, [])
        if pool and self.rng.random() < 0.6:
            choice = self.rng.choice(pool)
        else:
            choice = self.rng.choice(population)
        pool.append(choice)
        return choice

    # -- helpers ---------------------------------------------------------------------------

    def _random_type(self) -> int:
        roll = self.rng.random()
        if roll < 0.72 or not self.structs:
            names = list(self.primitives)
            return self.primitives[self.rng.choices(
                names, _PRIMITIVE_WEIGHTS[:len(names)])[0]]
        if roll < 0.92:
            return self.rng.choice(self.structs)
        if self.typedefs and roll < 0.97:
            return self.rng.choice(self.typedefs)
        return self.rng.choice(self.structs)

    def _contain(self, node: int, same_as: int | None = None) -> int:
        """Attach a node to a file via file_contains; returns the file."""
        if same_as is not None:
            for edge_id in self.graph.edges_of(same_as):
                if self.graph.edge_type(edge_id) == model.FILE_CONTAINS \
                        and self.graph.edge_target(edge_id) == same_as:
                    file_node = self.graph.edge_source(edge_id)
                    self.graph.add_edge(file_node, node,
                                        model.FILE_CONTAINS)
                    return file_node
        file_node = self.rng.choice(self.files) if self.files \
            else self._node(model.FILE, "misc.c")
        self.graph.add_edge(file_node, node, model.FILE_CONTAINS)
        return file_node

    def _poisson(self, mean: float) -> int:
        """Small-mean Poisson sample (Knuth's method)."""
        import math
        limit = math.exp(-mean)
        product = self.rng.random()
        count = 0
        while product > limit:
            product *= self.rng.random()
            count += 1
        return count


def generate_kernel_graph(profile: KernelProfile,
                          seed: int | None = None) -> PropertyGraph:
    """Synthesize one kernel-shaped dependency graph."""
    return _Synthesizer(profile, seed).build()
