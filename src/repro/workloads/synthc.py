"""Synthetic C source trees, compiled through the real front end.

Where :mod:`~repro.workloads.graphgen` fakes the graph statistically,
this generator writes actual C — subsystem headers with structs,
macros and prototypes, driver files with functions that read/write
fields, expand macros and call across subsystems — and a build script
for the :class:`~repro.build.buildsys.Build` replayer. Everything in
the output parses with :mod:`repro.lang`, so the full extractor path
is exercised end to end.

:func:`evolve` produces the next "release" of a codebase with a small,
controlled change rate — the input for the versioned-store experiments
(paper Section 6.3: "large codebases evolve slowly").
"""

from __future__ import annotations

import dataclasses
import random

_SUBSYSTEMS = ("scsi", "net", "sched", "mm", "usb", "pci", "tty", "blk",
               "irq", "acpi")
_FIELDS = ("count", "flags", "state", "capacity", "offset", "errors")
_VERBS = ("init", "probe", "read", "write", "update", "flush", "reset",
          "poll")


@dataclasses.dataclass
class SyntheticCodebase:
    """One generated source tree plus how to build it."""

    files: dict[str, str]
    build_script: str
    subsystems: tuple[str, ...]
    version: int = 0

    @property
    def line_count(self) -> int:
        return sum(content.count("\n") + 1
                   for content in self.files.values())


def generate_codebase(subsystems: int = 4, files_per_subsystem: int = 3,
                      functions_per_file: int = 4,
                      seed: int = 0) -> SyntheticCodebase:
    """Generate a kernel-flavoured C tree of the requested size."""
    rng = random.Random(seed)
    chosen = tuple(_SUBSYSTEMS[index % len(_SUBSYSTEMS)]
                   + ("" if index < len(_SUBSYSTEMS)
                      else str(index // len(_SUBSYSTEMS)))
                   for index in range(subsystems))
    files: dict[str, str] = {
        "include/types.h": _types_header(),
    }
    all_functions: dict[str, list[str]] = {}
    for subsystem in chosen:
        files[f"include/{subsystem}.h"] = _subsystem_header(
            subsystem, files_per_subsystem, functions_per_file)
        all_functions[subsystem] = [
            f"{subsystem}_{_VERBS[fn % len(_VERBS)]}_{unit}"
            for unit in range(files_per_subsystem)
            for fn in range(functions_per_file)]
    for subsystem in chosen:
        for unit in range(files_per_subsystem):
            path = f"{subsystem}/{subsystem}_{unit}.c"
            files[path] = _unit_source(subsystem, unit,
                                       functions_per_file, chosen,
                                       all_functions, rng)
    files["init/main.c"] = _main_source(chosen)
    script_lines = []
    objects = []
    for subsystem in chosen:
        for unit in range(files_per_subsystem):
            source = f"{subsystem}/{subsystem}_{unit}.c"
            obj = f"{subsystem}/{subsystem}_{unit}.o"
            script_lines.append(f"gcc -Iinclude {source} -c -o {obj}")
            objects.append(obj)
    script_lines.append("gcc -Iinclude init/main.c -c -o init/main.o")
    objects.append("init/main.o")
    script_lines.append(f"gcc {' '.join(objects)} -o vmlinux")
    return SyntheticCodebase(files, "\n".join(script_lines), chosen)


def evolve(codebase: SyntheticCodebase, seed: int | None = None,
           change_fraction: float = 0.05) -> SyntheticCodebase:
    """The next release: a small fraction of units get modified.

    Each selected unit gains one function (appended, so the existing
    entities and their order — and therefore their extracted node
    ids — are untouched); one global counter bumps in each, modelling
    a point change.
    """
    rng = random.Random(codebase.version + 1 if seed is None else seed)
    files = dict(codebase.files)
    sources = [path for path in files
               if path.endswith(".c") and not path.startswith("init/")]
    change_count = max(1, int(len(sources) * change_fraction))
    for path in rng.sample(sources, k=min(change_count, len(sources))):
        subsystem = path.split("/")[0]
        addition = (
            f"\nint {subsystem}_hotfix_{codebase.version + 1}"
            f"(struct {subsystem}_dev *dev) {{\n"
            f"    dev->flags = dev->flags + 1;\n"
            f"    return dev->flags;\n"
            f"}}\n")
        files[path] = files[path] + addition
    return SyntheticCodebase(files, codebase.build_script,
                             codebase.subsystems,
                             version=codebase.version + 1)


def _types_header() -> str:
    return (
        "#ifndef TYPES_H\n"
        "#define TYPES_H\n"
        "typedef unsigned long size_t;\n"
        "typedef unsigned char u8;\n"
        "typedef unsigned int u32;\n"
        "#define NULL ((void *)0)\n"
        "#endif\n")


def _subsystem_header(subsystem: str, units: int,
                      functions_per_file: int) -> str:
    guard = f"{subsystem.upper()}_H"
    lines = [
        f"#ifndef {guard}",
        f"#define {guard}",
        '#include "types.h"',
        f"#define {subsystem.upper()}_MAX 64",
        f"#define {subsystem.upper()}_CHECK(x) ((x) < "
        f"{subsystem.upper()}_MAX)",
        f"enum {subsystem}_status {{ {subsystem.upper()}_OK, "
        f"{subsystem.upper()}_BUSY = 2, {subsystem.upper()}_DEAD }};",
        f"struct {subsystem}_dev {{",
    ]
    for field in _FIELDS:
        lines.append(f"    u32 {field};")
    lines.append(f"    u8 buffer[{subsystem.upper()}_MAX];")
    lines.append("};")
    for unit in range(units):
        for fn in range(functions_per_file):
            name = f"{subsystem}_{_VERBS[fn % len(_VERBS)]}_{unit}"
            lines.append(
                f"int {name}(struct {subsystem}_dev *dev, int value);")
    lines.append("#endif")
    return "\n".join(lines) + "\n"


def _unit_source(subsystem: str, unit: int, functions_per_file: int,
                 subsystems: tuple[str, ...],
                 all_functions: dict[str, list[str]],
                 rng: random.Random) -> str:
    other = rng.choice([s for s in subsystems if s != subsystem]
                       or [subsystem])
    lines = [f'#include "{subsystem}.h"', f'#include "{other}.h"',
             f"static u32 {subsystem}_{unit}_counter;"]
    names = [f"{subsystem}_{_VERBS[fn % len(_VERBS)]}_{unit}"
             for fn in range(functions_per_file)]
    for position, name in enumerate(names):
        field = _FIELDS[position % len(_FIELDS)]
        callee = None
        if position + 1 < len(names):
            callee = names[position + 1]
        elif rng.random() < 0.8:
            callee = rng.choice(all_functions[other])
        body = [
            f"int {name}(struct {subsystem}_dev *dev, int value) {{",
            f"    int scratch = value + {subsystem.upper()}_MAX;",
            f"    if (!{subsystem.upper()}_CHECK(value)) {{",
            f"        return {subsystem.upper()}_BUSY;",
            "    }",
            f"    dev->{field} = (u32)scratch;",
            f"    {subsystem}_{unit}_counter += 1;",
        ]
        if callee is not None and callee.startswith(subsystem):
            body.append(f"    return {callee}(dev, scratch);")
        elif callee is not None:
            body.append(f"    struct {other}_dev peer;")
            body.append(f"    peer.state = dev->{field};")
            body.append(f"    return {callee}(&peer, scratch);")
        else:
            body.append(f"    return dev->{field};")
        body.append("}")
        lines.extend(body)
    return "\n".join(lines) + "\n"


def _main_source(subsystems: tuple[str, ...]) -> str:
    lines = ['#include "types.h"']
    for subsystem in subsystems:
        lines.append(f'#include "{subsystem}.h"')
    lines.append("int start_kernel(void) {")
    lines.append("    int total = 0;")
    for subsystem in subsystems:
        lines.append(f"    struct {subsystem}_dev {subsystem}_dev;")
        lines.append(f"    {subsystem}_dev.state = 0;")
        first = f"{subsystem}_{_VERBS[0]}_0"
        lines.append(f"    total += {first}(&{subsystem}_dev, total);")
    lines.append("    return total;")
    lines.append("}")
    return "\n".join(lines) + "\n"
