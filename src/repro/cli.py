"""The ``frappe`` command-line interface.

Subcommands::

    frappe index   <source-dir> --script build.sh --out store/
    frappe fsck    <store>
    frappe compact <store>     (rebuild compiled CSR + dictionary)
    frappe search  <store> NAME [--type T] [--module M]
    frappe query   <store> 'MATCH (n:function) RETURN n.short_name'
    frappe serve   <store> --workers 4    (queries from stdin)
    frappe explain <store> '<cypher>'
    frappe profile <store> '<cypher>'
    frappe refs    <store> NAME [--type T]
    frappe slice   <store> FUNCTION [--forward]
    frappe cycles  <store> [--edges calls,includes]
    frappe map     <store> [--svg out.svg] [--highlight NAME]
    frappe stats   <store>
    frappe generate --scale 0.02 --out store/   (synthetic kernel)
    frappe shard-split <store> --by-subtree --shards 4 --out shards/
    frappe serve   --http PORT --shards shards/   (scatter/gather)

A "store" argument is a directory produced by ``frappe index``/
``generate`` (or by :meth:`repro.core.frappe.Frappe.save`);
``fsck`` and ``serve --shards`` also accept a shard root produced by
``shard-split``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.codemap import build_hierarchy, layout_map, render_ascii, render_svg
from repro.codemap.render import overlay_nodes
from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.errors import FrappeError
from repro.graphdb import stats
from repro.graphdb import storage
from repro.graphdb.storage import GraphStore
from repro.lang.source import VirtualFileSystem
from repro.build.buildsys import FAIL_FAST, KEEP_GOING, Build
from repro.core.extractor import extract_build


def build_arg_parser() -> argparse.ArgumentParser:
    """The frappe CLI argument parser (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="frappe",
        description="Query and visualize C dependency graphs "
                    "(GRADES'15 Frappé reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    index = commands.add_parser(
        "index", help="compile a source tree and build its store")
    index.add_argument("source_dir")
    index.add_argument("--script", required=True,
                       help="build script of gcc command lines")
    index.add_argument("--out", required=True, help="store directory")
    index.add_argument("-I", "--include", action="append", default=[],
                       help="additional include path")
    index.add_argument("--ignore-missing-includes", action="store_true")
    index.add_argument("--keep-going", action="store_true",
                       help="record failed units as diagnostics and "
                       "index what survives (default: stop at the "
                       "first front-end error)")
    index.add_argument("--max-errors", type=int, default=None,
                       help="with --keep-going, abort once this many "
                       "errors accumulate")
    index.add_argument("-j", "--jobs", type=int, default=1,
                       help="compile units on this many worker "
                       "processes (default 1 = serial)")

    fsck = commands.add_parser(
        "fsck", help="verify a store's checksums and record structure")
    fsck.add_argument("store")

    compact = commands.add_parser(
        "compact", help="rewrite a store (or every shard of a shard "
        "root) in the current compiled format: persistent CSR "
        "adjacency segments + string dictionary page; also the repair "
        "for damaged CSR files")
    compact.add_argument("store")

    search = commands.add_parser("search", help="code search (Fig. 3)")
    search.add_argument("store")
    search.add_argument("name", help="symbol name (wildcards allowed)")
    search.add_argument("--type", dest="node_type")
    search.add_argument("--module")

    query = commands.add_parser("query", help="run a Cypher query")
    query.add_argument("store")
    query.add_argument("cypher")
    query.add_argument("--timeout", type=float, default=None)
    query.add_argument("--max-rows", type=int, default=None,
                       help="truncate the result after this many rows")
    query.add_argument("--no-rewrite", action="store_true",
                       help="disable the var-length reachability "
                       "rewrite (reproduces the Sec. 6.1 blow-up)")
    query.add_argument("--json", action="store_true",
                       help="print the canonical ResultPayload JSON "
                       "instead of a text table")
    _add_read_path_flags(query)

    serve = commands.add_parser(
        "serve", help="serve queries: from stdin on a worker pool "
        "(default), or over HTTP with --http PORT")
    serve.add_argument("store", nargs="?", default=None,
                       help="store directory (omit with --shards)")
    serve.add_argument("--shards", default=None, metavar="DIR",
                       help="with --http: scatter/gather over a "
                       "shard root from 'frappe shard-split' "
                       "(per-shard replica processes + a gateway "
                       "over the composite view)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads (default 4)")
    serve.add_argument("--queue", type=int, default=64,
                       help="admission queue capacity (default 64)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-query budget, counted from submit")
    serve.add_argument("--http", type=int, default=None,
                       metavar="PORT",
                       help="serve the HTTP/JSON wire protocol on "
                       "this port instead of reading stdin "
                       "(POST /v1/query, GET /v1/health, "
                       "GET /v1/metrics)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --http "
                       "(default 127.0.0.1)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="with --http: serve from this many "
                       "mmap'd worker processes (0 = in-process "
                       "thread pool)")
    serve.add_argument("--max-per-client", type=int, default=None,
                       help="fair-share bound on one client's "
                       "in-flight queries")
    serve.add_argument("--json", action="store_true",
                       help="stdin mode: print one canonical "
                       "ResultPayload JSON object per query")
    _add_read_path_flags(serve)

    explain = commands.add_parser(
        "explain", help="show a query's execution plan")
    explain.add_argument("store")
    explain.add_argument("cypher")

    profile = commands.add_parser(
        "profile", help="run a query and show its measured operator "
        "tree (rows, db hits, time per operator)")
    profile.add_argument("store")
    profile.add_argument("cypher")
    profile.add_argument("--timeout", type=float, default=None)
    profile.add_argument("--no-rewrite", action="store_true",
                         help="disable the var-length reachability "
                         "rewrite while profiling")
    _add_read_path_flags(profile)

    refs = commands.add_parser(
        "refs", help="find references to a symbol (Sec. 4.2)")
    refs.add_argument("store")
    refs.add_argument("name")
    refs.add_argument("--type", dest="node_type")

    slice_cmd = commands.add_parser(
        "slice", help="call-graph slice of a function (Fig. 6)")
    slice_cmd.add_argument("store")
    slice_cmd.add_argument("function")
    slice_cmd.add_argument("--forward", action="store_true",
                           help="forward slice (default backward)")

    cycles = commands.add_parser(
        "cycles", help="find dependency cycles (calls or includes)")
    cycles.add_argument("store")
    cycles.add_argument("--edges", default="calls",
                        help="comma-separated edge types "
                        "(default: calls)")

    map_cmd = commands.add_parser("map", help="render the code map")
    map_cmd.add_argument("store")
    map_cmd.add_argument("--svg", help="write an SVG to this path")
    map_cmd.add_argument("--highlight", action="append", default=[],
                         help="short_name to highlight (repeatable)")
    map_cmd.add_argument("--width", type=int, default=100)
    map_cmd.add_argument("--height", type=int, default=30)

    stats_cmd = commands.add_parser(
        "stats", help="graph metrics (Tables 3-4, Fig. 7)")
    stats_cmd.add_argument("store")
    stats_cmd.add_argument("--top", type=int, default=10,
                           help="how many hub nodes to list")

    generate = commands.add_parser(
        "generate", help="synthesize a kernel-shaped store")
    generate.add_argument("--scale", type=float, default=0.02,
                          help="fraction of UEK size (default 0.02)")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True)

    shard_split = commands.add_parser(
        "shard-split", help="partition a store into per-subtree "
        "shard stores under a shard root")
    shard_split.add_argument("store")
    shard_split.add_argument("--shards", type=int, required=True,
                             help="number of shards")
    shard_split.add_argument("--out", required=True,
                             help="shard root directory")
    shard_split.add_argument("--by-subtree", action="store_true",
                             default=True,
                             help="shard by top-level directory "
                             "subtree (the only — and default — "
                             "strategy)")
    return parser


def _add_read_path_flags(subparser: argparse.ArgumentParser) -> None:
    """Flags shared by the store-querying subcommands."""
    subparser.add_argument(
        "--execution-mode", choices=("auto", "batch", "rows"),
        default="auto",
        help="Cypher engine: 'batch' forces vectorized morsel "
        "execution, 'rows' the generator pipeline, 'auto' (default) "
        "picks batch when every clause has a batch kernel")
    subparser.add_argument(
        "--morsel-size", type=int, default=None,
        help="rows per batch under batch execution (default 1024)")
    subparser.add_argument(
        "--parallelism", type=int, default=0,
        help="morsel tasks per batch query: 0 (default) sizes to the "
        "serving pool when one is running (serial otherwise), 1 forces "
        "serial, N caps the fan-out at N tasks")
    subparser.add_argument(
        "--mmap", action="store_true",
        help="memory-map the store files (zero-copy reads) instead "
        "of the buffered LRU page cache")
    subparser.add_argument(
        "--no-csr", action="store_true",
        help="ignore the store's persistent compiled CSR segments "
        "and decode adjacency from records at runtime (the "
        "cold-start ablation)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except FrappeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "compact":
        return _cmd_compact(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "refs":
        return _cmd_refs(args)
    if args.command == "cycles":
        return _cmd_cycles(args)
    if args.command == "slice":
        return _cmd_slice(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "shard-split":
        return _cmd_shard_split(args)
    raise AssertionError(f"unhandled command {args.command}")


def _open(store: str, args: argparse.Namespace | None = None) -> Frappe:
    if args is None:
        return Frappe.open(store)
    return Frappe.open(store, config=_store_config(args))


def _store_config(args: argparse.Namespace) -> StoreConfig:
    return StoreConfig(
        mmap=getattr(args, "mmap", False),
        execution_mode=getattr(args, "execution_mode", "auto"),
        morsel_size=getattr(args, "morsel_size", None),
        parallelism=getattr(args, "parallelism", 0),
        use_compiled_csr=not getattr(args, "no_csr", False))


def _cmd_index(args: argparse.Namespace) -> int:
    filesystem = VirtualFileSystem()
    count = filesystem.add_tree(args.source_dir)
    with open(args.script, encoding="utf-8") as handle:
        script = handle.read()
    build = Build(filesystem, include_paths=args.include,
                  ignore_missing_includes=args.ignore_missing_includes,
                  policy=KEEP_GOING if args.keep_going else FAIL_FAST,
                  max_errors=args.max_errors, jobs=args.jobs)
    build.run_script(script)
    graph = extract_build(build)
    sizes = GraphStore.write(graph, args.out)
    print(f"indexed {count} files -> {graph.node_count()} nodes, "
          f"{graph.edge_count()} edges")
    report = build.report
    if report.outcomes or report.link_diagnostics:
        print(f"build: {report.summary()}")
    for diagnostic in report.diagnostics:
        print(f"  {diagnostic}", file=sys.stderr)
    print(f"store: {args.out} ({sizes['total'] / 1024:.1f} KiB)")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    if storage.is_shard_root(args.store):
        verification = storage.verify_shard_root(args.store)
    else:
        verification = GraphStore.verify(args.store)
    print(verification.summary())
    for problem in verification.problems:
        print(f"  {problem}")
    _print_fsck_breakdown(verification.files)
    if verification.status == storage.CORRUPT:
        return 1
    if verification.status == storage.REPAIRABLE:
        return 2
    return 0


def _print_fsck_breakdown(files: dict) -> None:
    """The Table-4-style per-file size/record-count report of fsck."""
    if not files:
        return
    print(f"{'file':<42} {'category':<14} {'bytes':>12} {'records':>12}")
    total = 0
    by_category: dict[str, int] = {}
    for name in sorted(files):
        report = files[name]
        size = report.get("bytes", 0)
        total += size
        category = report.get("category", "?")
        by_category[category] = by_category.get(category, 0) + size
        count = report.get("records")
        print(f"{name:<42} {category:<14} {size:>12}"
              f" {count if count is not None else '-':>12}")
    for category in sorted(by_category):
        print(f"{'':<42} {category:<14} {by_category[category]:>12}")
    print(f"{'total':<42} {'':<14} {total:>12}")


def _cmd_compact(args: argparse.Namespace) -> int:
    if storage.is_shard_root(args.store):
        breakdowns = storage.compact_shard_root(args.store)
        for shard_dir in sorted(breakdowns):
            sizes = breakdowns[shard_dir]
            print(f"{shard_dir}: {sizes['total'] / 1024:.1f} KiB "
                  f"(csr {sizes.get('csr', 0) / 1024:.1f} KiB, "
                  f"dictionary {sizes.get('dictionary', 0) / 1024:.1f} "
                  f"KiB)")
        return 0
    sizes = storage.compact_store(args.store)
    print(f"compacted {args.store}: {sizes['total'] / 1024:.1f} KiB "
          f"(csr {sizes.get('csr', 0) / 1024:.1f} KiB, "
          f"dictionary {sizes.get('dictionary', 0) / 1024:.1f} KiB)")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        nodes = frappe.search(args.name, args.node_type, args.module)
        for node_id in nodes:
            info = frappe.describe(node_id)
            print(f"{info['type']:<14} {info.get('name', '')}")
        print(f"({len(nodes)} results)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.cypher import QueryOptions
    with _open(args.store, args) as frappe:
        options = QueryOptions(
            timeout=args.timeout, max_rows=args.max_rows,
            use_reachability_rewrite=False if args.no_rewrite else None)
        result = frappe.query(args.cypher, options=options)
        if args.json:
            import json
            print(json.dumps(result.to_dict()))
            return 0
        print("\t".join(result.columns))
        for row in result.rows:
            print("\t".join(str(value) for value in row))
        truncated = " (truncated)" if result.stats.truncated else ""
        print(f"({len(result)} rows{truncated}, "
              f"{result.stats.elapsed_seconds * 1000:.1f} ms, "
              f"{result.stats.execution_mode} mode)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.shards is not None and args.http is None:
        raise FrappeError("--shards requires --http PORT")
    if args.store is None and args.shards is None:
        raise FrappeError("serve needs a store directory or --shards")
    if args.http is not None:
        return _cmd_serve_http(args)
    from repro.cypher import QueryOptions
    from repro.errors import AdmissionError, QueryTimeoutError
    options = QueryOptions(timeout=args.timeout)
    with _open(args.store, args) as frappe:
        executor = frappe.serve(args.workers,
                                queue_capacity=args.queue)
        print(f"serving with {executor.workers} workers "
              f"(queue {executor.queue_capacity}); one query per "
              "line, EOF to finish", file=sys.stderr)
        futures = []
        for line in sys.stdin:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                futures.append(
                    (text, frappe.query_async(text, options=options)))
            except AdmissionError as error:
                print(f"[{len(futures)}] rejected: {error}",
                      file=sys.stderr)
        failures = 0
        for index, (text, future) in enumerate(futures):
            try:
                result = future.result()
            except QueryTimeoutError as error:
                failures += 1
                print(f"[{index}] timeout: {error}", file=sys.stderr)
            except FrappeError as error:
                failures += 1
                print(f"[{index}] error: {error}", file=sys.stderr)
            else:
                if args.json:
                    import json
                    print(json.dumps(result.to_dict()))
                    continue
                rows = "; ".join(
                    "\t".join(str(value) for value in row)
                    for row in result.rows[:5])
                more = "" if len(result) <= 5 else \
                    f" (+{len(result) - 5} more)"
                print(f"[{index}] {len(result)} rows in "
                      f"{result.stats.elapsed_seconds * 1000:.1f} ms: "
                      f"{rows}{more}")
        wait = frappe.counters().histogram("server.queue_wait_seconds")
        max_wait = (wait.max or 0.0) if wait is not None else 0.0
        print(f"({len(futures)} queries, {failures} failed, "
              f"max queue wait {max_wait * 1000:.1f} ms)",
              file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    from repro.server.http import ExecutorBackend, HttpServer
    if args.shards is not None:
        from repro.server.shard import ShardBackend, ShardRouter
        config = _store_config(args)
        if not config.mmap:
            config = dataclasses.replace(config, mmap=True)
        router = ShardRouter(
            args.shards,
            args.replicas if args.replicas > 0 else 2,
            config=config)
        backend = ShardBackend(
            router, workers=args.workers, queue_capacity=args.queue,
            max_per_client=args.max_per_client)
        backend_alive = router.alive()
        topology = (f"{router.shard_count} shards x "
                    f"{backend_alive[0] if backend_alive else 0} "
                    f"replica processes + gateway")
    elif args.replicas > 0:
        from repro.server.replica import ReplicaBackend, ReplicaSet
        config = _store_config(args)
        if not config.mmap:
            config = dataclasses.replace(config, mmap=True)
        replicas = ReplicaSet(args.store, args.replicas, config=config)
        backend = ReplicaBackend(
            replicas, workers=args.workers,
            queue_capacity=args.queue,
            max_per_client=args.max_per_client)
        topology = f"{args.replicas} mmap replica processes " \
                   f"(pids {replicas.pids()})"
    else:
        frappe = Frappe.open(args.store, config=_store_config(args))
        backend = ExecutorBackend(
            frappe, workers=args.workers, queue_capacity=args.queue,
            max_per_client=args.max_per_client)
        topology = f"in-process pool of {args.workers} threads"
    server = HttpServer(backend, host=args.host, port=args.http)
    print(f"frappe serving http://{args.host}:{args.http} "
          f"({topology}); POST /v1/query, GET /v1/health, "
          "GET /v1/metrics; Ctrl-C to stop", file=sys.stderr)
    server.run()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        print(frappe.engine.explain(args.cypher))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.cypher import QueryOptions
    with _open(args.store, args) as frappe:
        options = QueryOptions(
            timeout=args.timeout, profile=True,
            use_reachability_rewrite=False if args.no_rewrite else None)
        result = frappe.query(args.cypher, options=options)
        plan = result.profile
        print(plan.pretty())
        print(f"({len(result)} rows, "
              f"{result.stats.elapsed_seconds * 1000:.1f} ms, "
              f"{plan.total_db_hits()} db hits, "
              f"cache hit ratio {frappe.cache_hit_ratio():.2f})")
        hottest = plan.hottest()
        if hottest is not None and hottest.time_ms is not None:
            print(f"hottest operator: {hottest.name} "
                  f"({hottest.time_ms:.1f} ms)")
    return 0


def _cmd_refs(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        targets = frappe.search(args.name, args.node_type)
        total = 0
        for target in targets:
            info = frappe.describe(target)
            references = frappe.find_references(target)
            total += len(references)
            print(f"{info['type']} {info.get('name', '')} "
                  f"({len(references)} references)")
            for reference in references:
                source = frappe.describe(reference.from_node)
                location = (f"file {reference.use_file_id} line "
                            f"{reference.use_start_line}"
                            if reference.use_start_line is not None
                            else "")
                print(f"  {reference.edge_type:<22} from "
                      f"{source.get('name', '')} {location}")
        print(f"({total} references across {len(targets)} symbols)")
    return 0


def _cmd_cycles(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        edge_types = tuple(name.strip()
                           for name in args.edges.split(",") if name)
        cycles = frappe.cycles(edge_types)
        for index, cycle in enumerate(cycles):
            names = ", ".join(
                str(frappe.view.node_property(node, "short_name"))
                for node in cycle)
            print(f"cycle {index} ({len(cycle)} members): {names}")
        print(f"({len(cycles)} cycles over {args.edges})")
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        nodes = (frappe.forward_slice(args.function) if args.forward
                 else frappe.backward_slice(args.function))
        for node_id in sorted(nodes):
            info = frappe.describe(node_id)
            print(f"{info['type']:<14} {info.get('name', '')}")
        print(f"({len(nodes)} entities)")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        root = build_hierarchy(frappe.view)
        highlights: set[int] = set()
        for name in args.highlight:
            found = frappe.search(name)
            highlights |= overlay_nodes(frappe.view, root, found)
        if args.svg:
            box = layout_map(root, 1000, 700)
            with open(args.svg, "w", encoding="utf-8") as handle:
                handle.write(render_svg(box, highlights=highlights))
            print(f"wrote {args.svg}")
        else:
            box = layout_map(root, float(args.width * 10),
                             float(args.height * 10))
            print(render_ascii(box, args.width, args.height,
                               highlights=highlights))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open(args.store) as frappe:
        metrics = frappe.metrics()
        print(f"nodes:   {metrics.node_count}")
        print(f"edges:   {metrics.edge_count}")
        print(f"density: {metrics.density:.6g}")
        print(f"ratio:   1:{metrics.edge_node_ratio:.1f}")
        sizes = GraphStore.size_breakdown(args.store)
        for category in ("properties", "nodes", "relationships",
                         "indexes", "total"):
            print(f"{category:<14} {sizes[category] / 1024:10.1f} KiB")
        print(f"top {args.top} hubs:")
        for node_id, degree in stats.top_degree_nodes(frappe.view,
                                                      args.top):
            name = frappe.view.node_property(node_id, "short_name")
            print(f"  {degree:>8}  {name}")
        print("node types:")
        node_types = stats.node_type_distribution(frappe.view)
        for type_name, count in sorted(node_types.items(),
                                       key=lambda kv: -kv[1])[:args.top]:
            print(f"  {count:>8}  {type_name}")
        print("edge types:")
        edge_types = stats.edge_type_distribution(frappe.view)
        for type_name, count in sorted(edge_types.items(),
                                       key=lambda kv: -kv[1])[:args.top]:
            print(f"  {count:>8}  {type_name}")
    return 0


def _cmd_shard_split(args: argparse.Namespace) -> int:
    manifest = storage.split_store(args.store, args.out, args.shards,
                                   by="subtree")
    for entry in manifest["shards"]:
        prefixes = ",".join(entry["path_prefixes"]) or "-"
        print(f"{entry['directory']}: {entry['nodes']} nodes, "
              f"{entry['edges']} edges, {entry['ghosts']} ghosts, "
              f"{entry['boundary_edges']} boundary edges "
              f"[{prefixes}]")
    source = manifest["source"]
    print(f"split {source['node_count']} nodes / "
          f"{source['edge_count']} edges into "
          f"{manifest['shard_count']} shards -> {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads import generate_kernel_graph
    from repro.workloads.profiles import UEK_PROFILE
    profile = UEK_PROFILE.scaled(args.scale)
    graph = generate_kernel_graph(profile, args.seed)
    sizes = GraphStore.write(graph, args.out)
    print(f"generated {graph.node_count()} nodes, "
          f"{graph.edge_count()} edges "
          f"({sizes['total'] / 1024 / 1024:.1f} MiB store) -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
