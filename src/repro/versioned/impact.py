"""Cross-version change-impact analysis.

"Understanding what has changed between versions and the wider effects
of those changes is a common and difficult task in large codebases,
known as software change impact analysis" (paper Section 6.3, citing
Arnold & Bohner). Given two versions, this module computes:

* the directly changed entities (from the structural delta), and
* the ripple: the forward call slice of every changed function in the
  *new* version — everything whose behaviour could differ.
"""

from __future__ import annotations

import dataclasses

from repro.core import model
from repro.graphdb import algo
from repro.graphdb.view import Direction, GraphView
from repro.versioned.delta import GraphDelta, diff_graphs


@dataclasses.dataclass
class ImpactReport:
    """The result of a cross-version impact query."""

    changed_nodes: set[int]          # directly touched by the delta
    impacted_nodes: set[int]         # changed + transitive callers
    changed_functions: set[int]
    impacted_functions: set[int]

    @property
    def amplification(self) -> float:
        """Impact size over change size (the 'ripple factor')."""
        if not self.changed_functions:
            return 0.0
        return len(self.impacted_functions) / len(self.changed_functions)


def change_impact(old: GraphView, new: GraphView,
                  delta: GraphDelta | None = None) -> ImpactReport:
    """Impact of the old -> new change, evaluated in the new version."""
    if delta is None:
        delta = diff_graphs(old, new)
    changed = _directly_changed(new, delta)
    changed_functions = {node_id for node_id in changed
                         if new.has_node(node_id)
                         and model.FUNCTION in new.node_labels(node_id)}
    impacted_functions = set(changed_functions)
    for function_node in changed_functions:
        impacted_functions |= algo.reachable_nodes(
            new, function_node, (model.CALLS,), Direction.IN)
    impacted = changed | impacted_functions
    return ImpactReport(changed_nodes=changed, impacted_nodes=impacted,
                        changed_functions=changed_functions,
                        impacted_functions=impacted_functions)


def _directly_changed(new: GraphView, delta: GraphDelta) -> set[int]:
    changed: set[int] = set()
    for node_id, _labels, _properties in delta.added_nodes:
        changed.add(node_id)
    for node_id, _key, _old, _new in delta.node_property_changes:
        changed.add(node_id)
    for edge_id, source, target, _type, _properties in delta.added_edges:
        changed.add(source)
        changed.add(target)
    for edge_id, _key, _old, _new in delta.edge_property_changes:
        if new.has_edge(edge_id):
            changed.add(new.edge_source(edge_id))
            changed.add(new.edge_target(edge_id))
    # removed elements: their former neighbours in the new version are
    # the survivors that felt the change; removed node ids themselves
    # no longer exist in `new`, so only keep ones that still resolve
    changed = {node_id for node_id in changed if new.has_node(node_id)}
    return changed
