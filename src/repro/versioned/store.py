"""The multi-version graph store.

Two storage modes, matching the paper's Section 6.3 design space:

* ``isolated`` — every version is a complete snapshot ("store and
  query each version in isolation"); checkout is O(1)-ish but storage
  duplicates everything unchanged.
* ``delta`` — the first version is a full snapshot, later versions are
  delta files against their parent (the LLAMA-flavoured option);
  storage is proportional to what actually changed, checkout replays
  the chain.

Versions form a chain or tree (a version's parent defaults to the
previous commit). Benchmark E12 commits k versions of an evolving
synthetic codebase in both modes and compares bytes and checkout
latency.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.errors import VersionError
from repro.graphdb.graph import PropertyGraph, clone_graph
from repro.graphdb.storage import GraphStore
from repro.graphdb.view import GraphView
from repro.versioned.delta import GraphDelta, apply_delta, diff_graphs

MODE_ISOLATED = "isolated"
MODE_DELTA = "delta"


@dataclasses.dataclass
class VersionRecord:
    version_id: str
    parent: Optional[str]
    node_count: int
    edge_count: int
    storage_bytes: int
    is_snapshot: bool


class VersionedGraphStore:
    """Commits versions of a graph; checks any version back out."""

    def __init__(self, directory: str, mode: str = MODE_DELTA) -> None:
        if mode not in (MODE_ISOLATED, MODE_DELTA):
            raise VersionError(f"unknown mode {mode!r}")
        self.directory = directory
        self.mode = mode
        os.makedirs(directory, exist_ok=True)
        self._records: dict[str, VersionRecord] = {}
        self._order: list[str] = []

    # -- commit -----------------------------------------------------------------

    def commit(self, graph: GraphView, version_id: str | None = None,
               parent: str | None = None) -> str:
        """Store a version; returns its id.

        ``parent`` defaults to the latest commit. In delta mode the
        first commit (or any commit with no parent) is a snapshot.
        """
        if version_id is None:
            version_id = f"v{len(self._order)}"
        if version_id in self._records:
            raise VersionError(f"version {version_id!r} already exists")
        if parent is None and self._order:
            parent = self._order[-1]
        if parent is not None and parent not in self._records:
            raise VersionError(f"unknown parent version {parent!r}")

        if self.mode == MODE_ISOLATED or parent is None:
            storage = self._write_snapshot(graph, version_id)
            record = VersionRecord(version_id, parent,
                                   graph.node_count(),
                                   graph.edge_count(), storage,
                                   is_snapshot=True)
        else:
            parent_graph = self.checkout(parent)
            delta = diff_graphs(parent_graph, graph)
            data = delta.to_bytes()
            with open(self._delta_path(version_id), "wb") as handle:
                handle.write(data)
            record = VersionRecord(version_id, parent,
                                   graph.node_count(),
                                   graph.edge_count(), len(data),
                                   is_snapshot=False)
        self._records[version_id] = record
        self._order.append(version_id)
        return version_id

    # -- checkout ------------------------------------------------------------------

    def checkout(self, version_id: str) -> PropertyGraph:
        """Materialize one version as a mutable in-memory graph."""
        record = self._require(version_id)
        if record.is_snapshot:
            with GraphStore.open(self._snapshot_path(version_id)) as store:
                return clone_graph(store)
        # replay the delta chain from the nearest snapshot ancestor
        chain: list[VersionRecord] = []
        cursor: Optional[VersionRecord] = record
        while cursor is not None and not cursor.is_snapshot:
            chain.append(cursor)
            cursor = self._records.get(cursor.parent or "")
        if cursor is None:
            raise VersionError(
                f"version {version_id!r} has no snapshot ancestor")
        with GraphStore.open(self._snapshot_path(cursor.version_id)) \
                as store:
            graph = clone_graph(store)
        for link in reversed(chain):
            apply_delta(graph, self._load_delta(link.version_id))
        return graph

    # -- introspection ---------------------------------------------------------------

    def versions(self) -> list[VersionRecord]:
        return [self._records[version_id] for version_id in self._order]

    def has_version(self, version_id: str) -> bool:
        return version_id in self._records

    def total_storage_bytes(self) -> int:
        return sum(record.storage_bytes
                   for record in self._records.values())

    def diff(self, old_version: str, new_version: str) -> GraphDelta:
        """Structural diff between any two stored versions."""
        return diff_graphs(self.checkout(old_version),
                           self.checkout(new_version))

    def chain_length(self, version_id: str) -> int:
        """Deltas to replay for a checkout (0 for snapshots)."""
        record = self._require(version_id)
        length = 0
        while not record.is_snapshot:
            length += 1
            record = self._require(record.parent or "")
        return length

    # -- internals -----------------------------------------------------------------------

    def _require(self, version_id: str) -> VersionRecord:
        record = self._records.get(version_id)
        if record is None:
            raise VersionError(f"unknown version {version_id!r}")
        return record

    def _snapshot_path(self, version_id: str) -> str:
        return os.path.join(self.directory, f"{version_id}.store")

    def _delta_path(self, version_id: str) -> str:
        return os.path.join(self.directory, f"{version_id}.delta")

    def _write_snapshot(self, graph: GraphView, version_id: str) -> int:
        if not isinstance(graph, PropertyGraph):
            graph = clone_graph(graph)
        sizes = GraphStore.write(graph, self._snapshot_path(version_id))
        return sizes["total"]

    def _load_delta(self, version_id: str) -> GraphDelta:
        with open(self._delta_path(version_id), "rb") as handle:
            return GraphDelta.from_bytes(handle.read())
