"""Structural graph deltas: diff, apply, invert, serialize.

A delta captures the difference between two graphs *by identity*
(node/edge ids): added and removed nodes/edges plus property changes
on surviving elements. Extractors that re-index a changed codebase
keep ids stable for unchanged entities (the workload generator's
evolution simulator guarantees this), which is what makes delta
storage as small as the actual change — the property the paper wants
("most of the graph data extracted remains the same from one version
to the next").
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.errors import VersionError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.properties import properties_equal
from repro.graphdb.view import GraphView


@dataclasses.dataclass
class GraphDelta:
    """The difference new - old between two graph versions."""

    added_nodes: list[tuple[int, tuple[str, ...], dict[str, Any]]] = \
        dataclasses.field(default_factory=list)
    removed_nodes: list[int] = dataclasses.field(default_factory=list)
    added_edges: list[tuple[int, int, int, str, dict[str, Any]]] = \
        dataclasses.field(default_factory=list)
    removed_edges: list[int] = dataclasses.field(default_factory=list)
    #: (node id, key, old value or None, new value or None)
    node_property_changes: list[tuple[int, str, Any, Any]] = \
        dataclasses.field(default_factory=list)
    edge_property_changes: list[tuple[int, str, Any, Any]] = \
        dataclasses.field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added_nodes or self.removed_nodes
                    or self.added_edges or self.removed_edges
                    or self.node_property_changes
                    or self.edge_property_changes)

    def change_count(self) -> int:
        return (len(self.added_nodes) + len(self.removed_nodes)
                + len(self.added_edges) + len(self.removed_edges)
                + len(self.node_property_changes)
                + len(self.edge_property_changes))

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact JSON encoding (measured by the E12 benchmark)."""
        payload = {
            "an": [[node_id, list(labels), properties]
                   for node_id, labels, properties in self.added_nodes],
            "rn": self.removed_nodes,
            "ae": [[edge_id, source, target, edge_type, properties]
                   for edge_id, source, target, edge_type, properties
                   in self.added_edges],
            "re": self.removed_edges,
            "np": [list(change) for change in self.node_property_changes],
            "ep": [list(change) for change in self.edge_property_changes],
        }
        return json.dumps(payload, separators=(",", ":"),
                          ensure_ascii=False).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "GraphDelta":
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise VersionError(f"corrupt delta: {error}") from None
        return cls(
            added_nodes=[(node_id, tuple(labels), properties)
                         for node_id, labels, properties
                         in payload["an"]],
            removed_nodes=list(payload["rn"]),
            added_edges=[(edge_id, source, target, edge_type, properties)
                         for edge_id, source, target, edge_type,
                         properties in payload["ae"]],
            removed_edges=list(payload["re"]),
            node_property_changes=[tuple(change)
                                   for change in payload["np"]],
            edge_property_changes=[tuple(change)
                                   for change in payload["ep"]])

    def inverted(self) -> "GraphDelta":
        """The delta that undoes this one (needs the old graph for the
        removed elements' payloads, so inversion is only available on
        deltas produced by :func:`diff_graphs` with ``record_removed``)."""
        raise VersionError(
            "plain deltas are forward-only; use diff_graphs(new, old) "
            "to compute the reverse direction")


def diff_graphs(old: GraphView, new: GraphView) -> GraphDelta:
    """Compute new - old by node/edge identity."""
    delta = GraphDelta()
    old_nodes = set(old.node_ids())
    new_nodes = set(new.node_ids())
    for node_id in sorted(new_nodes - old_nodes):
        delta.added_nodes.append((node_id,
                                  tuple(sorted(new.node_labels(node_id))),
                                  new.node_properties(node_id)))
    delta.removed_nodes = sorted(old_nodes - new_nodes)
    for node_id in sorted(old_nodes & new_nodes):
        old_properties = old.node_properties(node_id)
        new_properties = new.node_properties(node_id)
        if not properties_equal(old_properties, new_properties):
            for key in sorted(set(old_properties) | set(new_properties)):
                old_value = old_properties.get(key)
                new_value = new_properties.get(key)
                if old_value != new_value:
                    delta.node_property_changes.append(
                        (node_id, key, old_value, new_value))
    old_edges = set(old.edge_ids())
    new_edges = set(new.edge_ids())
    for edge_id in sorted(new_edges - old_edges):
        delta.added_edges.append((edge_id, new.edge_source(edge_id),
                                  new.edge_target(edge_id),
                                  new.edge_type(edge_id),
                                  new.edge_properties(edge_id)))
    delta.removed_edges = sorted(old_edges - new_edges)
    for edge_id in sorted(old_edges & new_edges):
        old_properties = old.edge_properties(edge_id)
        new_properties = new.edge_properties(edge_id)
        if not properties_equal(old_properties, new_properties):
            for key in sorted(set(old_properties) | set(new_properties)):
                old_value = old_properties.get(key)
                new_value = new_properties.get(key)
                if old_value != new_value:
                    delta.edge_property_changes.append(
                        (edge_id, key, old_value, new_value))
    return delta


def apply_delta(graph: PropertyGraph, delta: GraphDelta) -> PropertyGraph:
    """Apply a delta in place (old -> new); returns the graph."""
    # removals first: edges, then nodes (so incident edges are gone)
    for edge_id in delta.removed_edges:
        if graph.has_edge(edge_id):
            graph.remove_edge(edge_id)
    for node_id in delta.removed_nodes:
        if not graph.has_node(node_id):
            raise VersionError(f"delta removes unknown node {node_id}")
        graph.remove_node(node_id)
    for node_id, labels, properties in delta.added_nodes:
        graph.add_node_with_id(node_id, labels, properties)
    for edge_id, source, target, edge_type, properties in \
            delta.added_edges:
        graph.add_edge_with_id(edge_id, source, target, edge_type,
                               properties)
    for node_id, key, _old, new in delta.node_property_changes:
        if new is None:
            graph.remove_node_property(node_id, key)
        else:
            graph.set_node_property(node_id, key, new)
    for edge_id, key, _old, new in delta.edge_property_changes:
        if new is None:
            graph.remove_edge_property(edge_id, key)
        else:
            graph.set_edge_property(edge_id, key, new)
    return graph
