"""Evolving codebases as temporal graphs (paper Section 6.3).

The paper identifies versioned dependency graphs as an open challenge
and sketches the design space: shipping the store with the VCS (too
big), storing each version in isolation (duplicates everything), or
storing deltas (LLAMA-style). This package implements the latter two
so benchmark E12 can measure the trade-off:

* :mod:`~repro.versioned.delta` — structural graph deltas
  (diff / apply / invert / binary serialization),
* :mod:`~repro.versioned.store` — a multi-version store supporting
  both ``isolated`` (snapshot per version) and ``delta`` (base +
  chain) modes,
* :mod:`~repro.versioned.impact` — cross-version change-impact
  analysis ("software change impact analysis", the use case the paper
  says isolation forgoes).
"""

from repro.versioned.align import align_graph, default_node_key
from repro.versioned.delta import GraphDelta, apply_delta, diff_graphs
from repro.versioned.impact import ImpactReport, change_impact
from repro.versioned.store import VersionedGraphStore

__all__ = ["GraphDelta", "ImpactReport", "VersionedGraphStore",
           "align_graph", "apply_delta", "change_impact",
           "default_node_key", "diff_graphs"]
