"""Aligning re-extracted graphs onto a previous version's identity.

Deltas (:mod:`repro.versioned.delta`) compare graphs *by id*. The
extractor, however, numbers nodes in discovery order, so re-indexing a
codebase after a small change shifts the ids of everything extracted
later — a one-function patch would masquerade as a near-total rewrite
and delta storage would save nothing.

:func:`align_graph` fixes that the way incremental indexers do: each
entity gets a *stable identity key* (its type + qualified names, plus
source coordinates for reference edges); entities of the new graph
that match a key in the old graph keep the old id, genuinely new
entities get fresh ids above the old graph's high-water mark. The
result is id-comparable with the old version, and
``diff_graphs(old, aligned)`` is proportional to the true change.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.view import GraphView

NodeKeyFn = Callable[[GraphView, int], Hashable]


def default_node_key(view: GraphView, node_id: int) -> Hashable:
    """Identity of a node: its type and qualified names.

    Sufficient for extracted dependency graphs: USR-style uniqueness is
    already folded into NAME/LONG_NAME by the extractor (statics carry
    their unit, locals their function and position).
    """
    properties = view.node_properties(node_id)
    return tuple(_freeze(properties.get(key))
                 for key in ("type", "name", "long_name", "short_name"))


def _freeze(value: Any) -> Hashable:
    if isinstance(value, list):
        return tuple(value)
    return value


def _edge_key(view: GraphView, edge_id: int,
              node_keys: dict[int, Hashable]) -> Hashable:
    properties = view.edge_properties(edge_id)
    return (node_keys[view.edge_source(edge_id)],
            node_keys[view.edge_target(edge_id)],
            view.edge_type(edge_id),
            _freeze(properties.get("use_file_id")),
            _freeze(properties.get("use_start_line")),
            _freeze(properties.get("use_start_col")),
            _freeze(properties.get("index")),
            _freeze(properties.get("link_order")))


def _disambiguated(keys: list[tuple[int, Hashable]],
                   ) -> dict[int, Hashable]:
    """Suffix duplicate keys with an occurrence counter (stable in id
    order, so the n-th duplicate matches the n-th duplicate)."""
    seen: dict[Hashable, int] = {}
    result: dict[int, Hashable] = {}
    for element_id, key in sorted(keys):
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        result[element_id] = (key, occurrence)
    return result


def align_graph(old: GraphView, new: GraphView,
                node_key: NodeKeyFn = default_node_key) -> PropertyGraph:
    """Renumber *new* so matching entities reuse *old*'s ids.

    Returns a fresh :class:`PropertyGraph` with the same content as
    *new* (labels, properties, structure) whose node and edge ids agree
    with *old* wherever the identity keys match.
    """
    old_node_keys = _disambiguated(
        [(node_id, node_key(old, node_id)) for node_id in old.node_ids()])
    new_node_keys = _disambiguated(
        [(node_id, node_key(new, node_id)) for node_id in new.node_ids()])
    old_by_key = {key: node_id
                  for node_id, key in old_node_keys.items()}
    next_node_id = max(old.node_ids(), default=-1) + 1
    node_map: dict[int, int] = {}
    for new_id in sorted(new.node_ids()):
        matched = old_by_key.get(new_node_keys[new_id])
        if matched is not None:
            node_map[new_id] = matched
        else:
            node_map[new_id] = next_node_id
            next_node_id += 1

    aligned = PropertyGraph(
        auto_index_keys=getattr(
            new.indexes, "auto_index_keys",
            PropertyGraph.DEFAULT_AUTO_INDEX_KEYS))
    for new_id in sorted(new.node_ids()):
        aligned.add_node_with_id(node_map[new_id],
                                 new.node_labels(new_id),
                                 new.node_properties(new_id))

    plain_old_node_keys = {node_id: key
                           for node_id, key in old_node_keys.items()}
    old_edge_keys = _disambiguated(
        [(edge_id, _edge_key(old, edge_id, plain_old_node_keys))
         for edge_id in old.edge_ids()])
    # express new edge keys in the same vocabulary: map new endpoints to
    # their aligned key (the old key when matched)
    aligned_node_keys = {node_map[new_id]: new_node_keys[new_id]
                         for new_id in new.node_ids()}
    # for matched nodes the key tuples differ only by occurrence
    # counters computed per graph; normalize via the old key when the
    # node id is shared
    merged_keys: dict[int, Hashable] = {}
    for aligned_id, key in aligned_node_keys.items():
        if aligned_id in plain_old_node_keys:
            merged_keys[aligned_id] = plain_old_node_keys[aligned_id]
        else:
            merged_keys[aligned_id] = key
    old_edge_by_key = {key: edge_id
                       for edge_id, key in old_edge_keys.items()}
    new_edge_keys = _disambiguated(
        [(edge_id, _edge_key_mapped(new, edge_id, node_map, merged_keys))
         for edge_id in new.edge_ids()])
    next_edge_id = max(old.edge_ids(), default=-1) + 1
    for new_edge in sorted(new.edge_ids()):
        matched = old_edge_by_key.get(new_edge_keys[new_edge])
        if matched is not None:
            edge_id = matched
        else:
            edge_id = next_edge_id
            next_edge_id += 1
        aligned.add_edge_with_id(edge_id,
                                 node_map[new.edge_source(new_edge)],
                                 node_map[new.edge_target(new_edge)],
                                 new.edge_type(new_edge),
                                 new.edge_properties(new_edge))
    return aligned


def _edge_key_mapped(view: GraphView, edge_id: int,
                     node_map: dict[int, int],
                     merged_keys: dict[int, Hashable]) -> Hashable:
    properties = view.edge_properties(edge_id)
    return (merged_keys[node_map[view.edge_source(edge_id)]],
            merged_keys[node_map[view.edge_target(edge_id)]],
            view.edge_type(edge_id),
            _freeze(properties.get("use_file_id")),
            _freeze(properties.get("use_start_line")),
            _freeze(properties.get("use_start_col")),
            _freeze(properties.get("index")),
            _freeze(properties.get("link_order")))
