"""Exception hierarchy for the Frappé reproduction.

Every error raised by the library derives from :class:`FrappeError` so
callers can catch one base class at API boundaries. Subsystems define
narrower classes here (rather than in their own modules) to avoid import
cycles between the graph database, the query language and the front end.
"""

from __future__ import annotations


class FrappeError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Graph database
# --------------------------------------------------------------------------

class GraphError(FrappeError):
    """Base class for property-graph storage and access errors."""


class NodeNotFoundError(GraphError):
    """A node id did not resolve to a live node."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"no such node: {node_id}")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """An edge id did not resolve to a live edge."""

    def __init__(self, edge_id: int) -> None:
        super().__init__(f"no such edge: {edge_id}")
        self.edge_id = edge_id


class PropertyTypeError(GraphError):
    """A property value is not one of the supported storable types."""


class IndexError_(GraphError):
    """An index was queried or updated inconsistently."""


class StoreError(GraphError):
    """The on-disk store is missing, corrupt, or incompatible."""


class StoreFormatError(StoreError):
    """A store file failed validation (bad magic, version, or record)."""


# --------------------------------------------------------------------------
# Query languages
# --------------------------------------------------------------------------

class QueryError(FrappeError):
    """Base class for query compilation and execution errors."""


class CypherSyntaxError(QueryError):
    """The Cypher text failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CypherSemanticError(QueryError):
    """The Cypher query parsed but is not executable (unknown variable...)."""


class QueryTimeoutError(QueryError):
    """Query execution exceeded its configured time budget.

    This mirrors the paper's Section 5.2 observation that the Figure 6
    transitive-closure query "does not terminate within 15 minutes" — the
    executor raises this instead of running forever.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"query aborted after {seconds:.3f}s time budget")
        self.seconds = seconds


class SqlError(QueryError):
    """The mini-SQL text failed to parse or referred to unknown relations."""


class LuceneQueryError(QueryError):
    """A legacy `node_auto_index` query string failed to parse."""


# --------------------------------------------------------------------------
# C front end / build
# --------------------------------------------------------------------------

class FrontEndError(FrappeError):
    """Base class for lexing/preprocessing/parsing/semantic errors."""

    def __init__(self, message: str, filename: str = "", line: int = 0,
                 column: int = 0) -> None:
        location = f"{filename}:{line}:{column}: " if filename else ""
        super().__init__(f"{location}{message}")
        self.filename = filename
        self.line = line
        self.column = column


class LexError(FrontEndError):
    """Invalid character or malformed token in C source."""


class PreprocessorError(FrontEndError):
    """Invalid directive, missing include, or malformed macro."""


class ParseError(FrontEndError):
    """The C parser could not derive a valid construct."""


class SemanticError(FrontEndError):
    """Symbol resolution or type checking failed."""


class LinkError(FrappeError):
    """The linker simulator could not resolve or merge symbols."""


class BuildError(FrappeError):
    """A build description or compiler command line is invalid."""


# --------------------------------------------------------------------------
# Versioned store
# --------------------------------------------------------------------------

class VersionError(FrappeError):
    """Unknown version id or inconsistent delta chain."""
