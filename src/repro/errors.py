"""Exception hierarchy for the Frappé reproduction.

Every error raised by the library derives from :class:`FrappeError` so
callers can catch one base class at API boundaries. Subsystems define
narrower classes here (rather than in their own modules) to avoid import
cycles between the graph database, the query language and the front end.
"""

from __future__ import annotations


class FrappeError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Graph database
# --------------------------------------------------------------------------

class GraphError(FrappeError):
    """Base class for property-graph storage and access errors."""


class NodeNotFoundError(GraphError):
    """A node id did not resolve to a live node."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"no such node: {node_id}")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """An edge id did not resolve to a live edge."""

    def __init__(self, edge_id: int) -> None:
        super().__init__(f"no such edge: {edge_id}")
        self.edge_id = edge_id


class PropertyTypeError(GraphError):
    """A property value is not one of the supported storable types."""


class GraphIndexError(GraphError):
    """An index was queried or updated inconsistently."""


#: Deprecated alias for :class:`GraphIndexError` (the historical name
#: shadowed the ``IndexError`` builtin and needed a trailing underscore).
IndexError_ = GraphIndexError


class StoreError(GraphError):
    """The on-disk store is missing, corrupt, or incompatible."""


class StoreFormatError(StoreError):
    """A store file failed validation (bad magic, version, or record)."""


class StoreCorruptionError(StoreFormatError, ValueError):
    """A store file holds bytes that cannot be what the writer wrote.

    Raised instead of decoding garbage when a read lands past the end of
    a (likely truncated) store file or a record fails validation.
    Carries the offending ``file`` path and byte ``offset`` so ``frappe
    fsck`` and crash post-mortems can point at the exact damage.

    Also subclasses :class:`ValueError` for compatibility with callers
    that treated out-of-bounds store reads as value errors.
    """

    def __init__(self, message: str, file: str = "",
                 offset: int | None = None) -> None:
        location = ""
        if file:
            location = f" [{file}" + (
                f" @ byte {offset}]" if offset is not None else "]")
        super().__init__(f"{message}{location}")
        self.file = file
        self.offset = offset


# --------------------------------------------------------------------------
# Query languages
# --------------------------------------------------------------------------

class QueryError(FrappeError):
    """Base class for query compilation and execution errors."""


class CypherSyntaxError(QueryError):
    """The Cypher text failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CypherSemanticError(QueryError):
    """The Cypher query parsed but is not executable (unknown variable...)."""


class QueryTimeoutError(QueryError):
    """Query execution exceeded its configured time budget.

    This mirrors the paper's Section 5.2 observation that the Figure 6
    transitive-closure query "does not terminate within 15 minutes" — the
    executor raises this instead of running forever.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"query aborted after {seconds:.3f}s time budget")
        self.seconds = seconds


class SqlError(QueryError):
    """The mini-SQL text failed to parse or referred to unknown relations."""


class LuceneQueryError(QueryError):
    """A legacy `node_auto_index` query string failed to parse."""


# --------------------------------------------------------------------------
# C front end / build
# --------------------------------------------------------------------------

class FrontEndError(FrappeError):
    """Base class for lexing/preprocessing/parsing/semantic errors."""

    def __init__(self, message: str, filename: str = "", line: int = 0,
                 column: int = 0) -> None:
        location = f"{filename}:{line}:{column}: " if filename else ""
        super().__init__(f"{location}{message}")
        self.message = message  # bare text, without the location prefix
        self.filename = filename
        self.line = line
        self.column = column


class LexError(FrontEndError):
    """Invalid character or malformed token in C source."""


class PreprocessorError(FrontEndError):
    """Invalid directive, missing include, or malformed macro."""


class ParseError(FrontEndError):
    """The C parser could not derive a valid construct."""


class SemanticError(FrontEndError):
    """Symbol resolution or type checking failed."""


class LinkError(FrappeError):
    """The linker simulator could not resolve or merge symbols."""


class BuildError(FrappeError):
    """A build description or compiler command line is invalid."""


class BuildDiagnosticError(BuildError):
    """A fault-tolerant build exceeded its error budget.

    Under the ``keep_going`` failure policy, per-unit front-end errors
    are captured as structured diagnostics in the
    :class:`~repro.build.buildsys.BuildReport` instead of aborting the
    build.  When ``max_errors`` is configured and the number of failed
    units crosses it, the build stops by raising this error, carrying
    the diagnostics collected so far in ``diagnostics``.
    """

    def __init__(self, message: str, diagnostics: list | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


# --------------------------------------------------------------------------
# Versioned store
# --------------------------------------------------------------------------

class VersionError(FrappeError):
    """Unknown version id or inconsistent delta chain."""


# --------------------------------------------------------------------------
# Concurrent serving
# --------------------------------------------------------------------------

class ServerError(FrappeError):
    """Base class for the concurrent query-serving layer."""


class AdmissionError(ServerError):
    """The executor refused a submission — backpressure.

    Raised when the bounded queue is full or the submitting client is
    over its fair share of it. The request was *not* enqueued; the
    caller should retry later or shed load. ``client`` names the
    submitter the limit was applied to (None for the global bound).
    """

    def __init__(self, message: str, client: str | None = None) -> None:
        super().__init__(message)
        self.client = client


class ServerClosedError(ServerError):
    """The serving layer closed underneath a query.

    Raised deterministically for every query still waiting in the
    admission queue when :meth:`~repro.server.executor.Executor.close`
    drains it (instead of a hang or a bare ``CancelledError``), and
    for submissions arriving after the close. The HTTP tier maps it to
    a 503 response.
    """


class ExecutorShutdownError(ServerClosedError):
    """A query was submitted to an executor that has shut down.

    Kept as the historical submit-after-shutdown error; it now
    *is-a* :class:`ServerClosedError` so callers can catch one class
    for every "the server is gone" outcome.
    """


class ReplicaCrashedError(ServerError):
    """A replica worker process died while holding in-flight queries.

    Internal to the routing tier: the router catches it and retries
    the query on a surviving replica (the store is immutable, so a
    replay is safe), so it reaches a client only when *every* replica
    is gone.
    """


class ShardCrashedError(ServerError):
    """Every worker of one shard is gone and retries are exhausted.

    The scatter/gather router's structured escalation of
    :class:`ReplicaCrashedError`: a single worker death stays
    invisible (the shard's replica set retries on a survivor and
    respawns in the background), so a client sees this only when a
    whole shard's worker tier is unrecoverable. ``shard`` names the
    shard so operators know which partition to revive.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
