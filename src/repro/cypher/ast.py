"""Abstract syntax for the Cypher dialect.

The query is a sequence of clauses. Patterns are chains of node
elements joined by relationship elements (Cypher 1.x allows bare
identifiers as node elements, which the paper's Figure 5 uses:
``writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Marker base class for expressions."""


@dataclasses.dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclasses.dataclass(frozen=True)
class Parameter(Expr):
    name: str


@dataclasses.dataclass(frozen=True)
class Variable(Expr):
    name: str


@dataclasses.dataclass(frozen=True)
class PropertyAccess(Expr):
    subject: Expr
    key: str  # normalized to lower case by the parser


@dataclasses.dataclass(frozen=True)
class Unary(Expr):
    op: str  # 'not' | '-'
    operand: Expr


@dataclasses.dataclass(frozen=True)
class Binary(Expr):
    op: str  # and or = <> < <= > >= + - * / % ^ =~
    left: Expr
    right: Expr


@dataclasses.dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # normalized to lower case
    args: tuple[Expr, ...]
    distinct: bool = False

    AGGREGATES = frozenset({"count", "collect", "sum", "min", "max", "avg"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES


@dataclasses.dataclass(frozen=True)
class CountStar(Expr):
    """``count(*)``."""


@dataclasses.dataclass(frozen=True)
class PatternPredicate(Expr):
    """A pattern used as a boolean (exists) inside WHERE."""

    pattern: "Pattern"


def contains_aggregate(expr: Expr) -> bool:
    """True if any sub-expression is an aggregate call."""
    if isinstance(expr, CountStar):
        return True
    if isinstance(expr, FunctionCall):
        return expr.is_aggregate or any(contains_aggregate(arg)
                                        for arg in expr.args)
    if isinstance(expr, Unary):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Binary):
        return (contains_aggregate(expr.left)
                or contains_aggregate(expr.right))
    if isinstance(expr, PropertyAccess):
        return contains_aggregate(expr.subject)
    return False


# --------------------------------------------------------------------------
# Patterns
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class NodePattern:
    variable: Optional[str]
    labels: tuple[str, ...] = ()
    properties: tuple[tuple[str, Expr], ...] = ()


@dataclasses.dataclass(frozen=True)
class RelPattern:
    variable: Optional[str]
    types: tuple[str, ...] = ()      # empty = any type
    direction: str = "out"           # 'out' | 'in' | 'both'
    properties: tuple[tuple[str, Expr], ...] = ()
    var_length: bool = False
    min_hops: int = 1
    max_hops: Optional[int] = None   # None = unbounded
    #: planner mark: this var-length rel may run as visited-set BFS
    #: reachability (endpoint-distinct output, no rel/path variable);
    #: the executor still honors the engine's use_reachability_rewrite
    #: gate at run time
    reachability: bool = False


@dataclasses.dataclass(frozen=True)
class Pattern:
    """nodes[0] -rels[0]- nodes[1] -rels[1]- ... -rels[n-1]- nodes[n].

    ``path_variable`` binds the whole match as a path value
    (``MATCH p = ...``); ``shortest`` is 'single' or 'all' for
    ``shortestPath(...)`` / ``allShortestPaths(...)`` patterns.
    """

    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...]
    path_variable: Optional[str] = None
    shortest: Optional[str] = None  # None | 'single' | 'all'

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.rels) + 1:
            raise ValueError("pattern must alternate nodes and rels")

    def variables(self) -> list[str]:
        names = []
        if self.path_variable:
            names.append(self.path_variable)
        for node in self.nodes:
            if node.variable:
                names.append(node.variable)
        for rel in self.rels:
            if rel.variable:
                names.append(rel.variable)
        return names


# --------------------------------------------------------------------------
# Clauses
# --------------------------------------------------------------------------

class Clause:
    """Marker base class for clauses."""


@dataclasses.dataclass(frozen=True)
class IndexStartPoint:
    variable: str
    index_name: str
    query: str


@dataclasses.dataclass(frozen=True)
class NodeIdStartPoint:
    variable: str
    ids: tuple[int, ...]
    all_nodes: bool = False


StartPoint = IndexStartPoint | NodeIdStartPoint


@dataclasses.dataclass(frozen=True)
class Start(Clause):
    points: tuple[StartPoint, ...]


@dataclasses.dataclass(frozen=True)
class Match(Clause):
    patterns: tuple[Pattern, ...]
    optional: bool = False


@dataclasses.dataclass(frozen=True)
class Where(Clause):
    predicate: Expr


@dataclasses.dataclass(frozen=True)
class ReturnItem:
    expression: Expr
    alias: Optional[str] = None

    def output_name(self, rendered: str) -> str:
        return self.alias if self.alias else rendered


@dataclasses.dataclass(frozen=True)
class SortItem:
    expression: Expr
    ascending: bool = True


@dataclasses.dataclass(frozen=True)
class With(Clause):
    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[SortItem, ...] = ()
    skip: Optional[Expr] = None
    limit: Optional[Expr] = None
    where: Optional[Expr] = None


@dataclasses.dataclass(frozen=True)
class Return(Clause):
    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[SortItem, ...] = ()
    skip: Optional[Expr] = None
    limit: Optional[Expr] = None
    star: bool = False


@dataclasses.dataclass(frozen=True)
class Query:
    clauses: tuple[Clause, ...]
    text: str = ""
    #: the query text carried a leading PROFILE modifier
    profile: bool = False

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("query must have at least one clause")


def render_expr(expr: Expr) -> str:
    """Human-readable rendering, used for default column names."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, PropertyAccess):
        return f"{render_expr(expr.subject)}.{expr.key}"
    if isinstance(expr, Unary):
        return f"{expr.op} {render_expr(expr.operand)}"
    if isinstance(expr, Binary):
        return (f"{render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)}")
    if isinstance(expr, CountStar):
        return "count(*)"
    if isinstance(expr, FunctionCall):
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    if isinstance(expr, PatternPredicate):
        return "<pattern>"
    return "<expr>"
