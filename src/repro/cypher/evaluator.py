"""Expression evaluation with Cypher's three-valued null semantics.

``None`` plays SQL NULL's role: comparisons against it yield ``None``,
``AND``/``OR`` follow Kleene logic, and ``WHERE`` keeps a row only when
the predicate evaluates to exactly ``True``.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.cypher import ast
from repro.cypher.result import EdgeRef, NodeRef, PathValue
from repro.errors import CypherSemanticError, QueryTimeoutError
from repro.graphdb.view import Direction, GraphView, other_end

_DIRECTIONS = {"out": Direction.OUT, "in": Direction.IN,
               "both": Direction.BOTH}


class ExecutionContext:
    """Shared per-query state: graph view, parameters, time budget."""

    _CHECK_EVERY = 4096
    #: adjacency memo entries kept before the memo stops growing; a
    #: per-query cache, so the bound only guards pathological queries
    _ADJACENCY_MEMO_LIMIT = 100_000

    def __init__(self, view: GraphView,
                 parameters: Mapping[str, Any] | None = None,
                 timeout: float | None = None,
                 use_index_seek: bool = True,
                 profiler: Any | None = None,
                 use_reachability_rewrite: bool = True,
                 use_cost_based_planner: bool = True,
                 use_compiled_kernels: bool = True,
                 parallelism: int = 1,
                 task_spawner: Any | None = None,
                 pattern_plans: dict | None = None,
                 start_candidates: dict | None = None) -> None:
        self.view = view
        self.parameters = dict(parameters or {})
        self.timeout = timeout
        #: planner switch: anchor MATCH patterns on auto-index seeks
        #: when a node pattern carries an indexed property literal.
        #: Disabled only by the E5 planner-ablation benchmark.
        self.use_index_seek = use_index_seek
        #: honor planner reachability marks on var-length rels (the
        #: Section 6.1 ablation gate)
        self.use_reachability_rewrite = use_reachability_rewrite
        #: cost the anchor/step order from graph statistics instead of
        #: the fixed bound > label > property heuristic
        self.use_cost_based_planner = use_cost_based_planner
        #: run WHERE/projection expressions through the precompiled
        #: closure kernels (off = the interpreted evaluate() baseline,
        #: the E12 compiled-vs-interpreted ablation knob)
        self.use_compiled_kernels = use_compiled_kernels
        #: morsel tasks the batch driver may run concurrently (1 =
        #: serial); resolved by the engine (0-auto already expanded)
        self.parallelism = parallelism
        #: ``callable(fn) -> handle-with-result()`` offering work to
        #: the serving pool (None = run morsel tasks inline)
        self.task_spawner = task_spawner
        #: :class:`~repro.obs.profile.QueryProfiler` under PROFILE,
        #: else None; None keeps the unprofiled hot path branch-cheap
        self.profiler = profiler
        self.started = time.monotonic()
        self.expansions = 0
        # start one short of the check interval so the very first tick
        # verifies the deadline — tiny budgets must fail promptly even
        # on queries that never reach _CHECK_EVERY expansions
        self._tick_counter = self._CHECK_EVERY - 1
        # per-query (node, direction, types) -> edge tuple memo; the
        # matcher's bulk fast path for repeated expansions of hot nodes
        self._adjacency_memo: dict[tuple[int, Any, Any],
                                   tuple[int, ...]] = {}
        # (node, direction, types) -> [(edge, other_end)] memo for the
        # batch executor's resolved-adjacency fast path
        self._neighbor_memo: dict[tuple[int, Any, Any],
                                  list[tuple[int, int]]] = {}
        self._resolve_neighbors = getattr(view, "resolve_neighbors",
                                          None)
        self._bulk_neighbors = getattr(view, "neighbors_of", None)
        self.adjacency_hits = 0
        self.adjacency_misses = 0
        # per-clause pattern plans (anchor + step order), keyed on
        # pattern identity and the bound-variable set; the engine may
        # hand in its epoch-scoped memo so plans survive across runs
        # of the same cached query (values keep the pattern AST alive,
        # so id() keys cannot alias a recycled object)
        self._pattern_plans: dict[tuple[int, frozenset[str]], Any] = \
            pattern_plans if pattern_plans is not None else {}
        # START index-query candidates, keyed by query string; like
        # the plan memo the engine may hand in its epoch-scoped dict,
        # so repeated executions skip the postings evaluation (PROFILE
        # still charges per candidate row — only the index work is
        # memoized, not its accounting)
        self._start_candidates: dict[str, tuple[int, ...]] = \
            start_candidates if start_candidates is not None else {}
        # set on the first fork(): serializes the shared memos' miss
        # paths so the parallel pipeline charges each store read
        # exactly once per key, same as serial execution
        self._memo_lock: Any | None = None

    def fork(self, profiler: Any | None = None) -> "ExecutionContext":
        """A task-local view of this context for one parallel morsel.

        The fork shares the graph view, parameters, deadline and the
        adjacency/neighbor memos (their miss paths become lock-exact so
        db-hit totals stay byte-identical to serial execution), but
        carries its own profiler and its own expansion counter — the
        parallel driver merges both back deterministically, in task
        order, after the task completes.
        """
        if self._memo_lock is None:
            import threading
            # reentrant: the neighbor-memo miss path may route through
            # adjacency(), which takes the same lock
            self._memo_lock = threading.RLock()
        clone = object.__new__(ExecutionContext)
        clone.view = self.view
        clone.parameters = self.parameters
        clone.timeout = self.timeout
        clone.use_index_seek = self.use_index_seek
        clone.use_reachability_rewrite = self.use_reachability_rewrite
        clone.use_cost_based_planner = self.use_cost_based_planner
        clone.use_compiled_kernels = self.use_compiled_kernels
        # a task never re-parallelizes: nested fan-out would oversubscribe
        # the shared pool and break the ordered-merge accounting
        clone.parallelism = 1
        clone.task_spawner = None
        clone.profiler = profiler
        clone.started = self.started
        clone.expansions = 0
        clone._tick_counter = self._CHECK_EVERY - 1
        clone._adjacency_memo = self._adjacency_memo
        clone._neighbor_memo = self._neighbor_memo
        clone._resolve_neighbors = self._resolve_neighbors
        clone._bulk_neighbors = self._bulk_neighbors
        clone.adjacency_hits = 0
        clone.adjacency_misses = 0
        clone._pattern_plans = self._pattern_plans
        clone._start_candidates = self._start_candidates
        clone._memo_lock = self._memo_lock
        return clone

    def absorb(self, fork: "ExecutionContext") -> None:
        """Fold a completed fork's counters back into this context.

        The parallel driver calls this in *task order* (the order
        chunks were drawn), so ``result.stats.expansions`` and the
        adjacency cache counters total exactly as serial execution
        totals them. Profiler trees are merged separately via
        :func:`repro.obs.profile.merge_operator_stats`.
        """
        self.expansions += fork.expansions
        self.adjacency_hits += fork.adjacency_hits
        self.adjacency_misses += fork.adjacency_misses

    def tick(self, count: int = 1) -> None:
        """Account work; raise if the time budget is exhausted."""
        self.expansions += count
        self._tick_counter += count
        if self.timeout is not None and \
                self._tick_counter >= self._CHECK_EVERY:
            self._tick_counter = 0
            if time.monotonic() - self.started > self.timeout:
                raise QueryTimeoutError(self.timeout)

    def db_hit(self, count: int = 1) -> None:
        """Charge store accesses to the profiled operator, if any."""
        if self.profiler is not None:
            self.profiler.hit(count)

    def index_candidates(self, query: str) -> tuple[int, ...]:
        """Memoized START index lookup: one postings evaluation per
        query string (per epoch, when the engine hands in its
        persistent memo).  Execution still ticks and PROFILE still
        charges one db-hit per candidate row consumed downstream.
        """
        cached = self._start_candidates.get(query)
        if cached is None:
            cached = tuple(self.view.indexes.query(query))
            self._start_candidates[query] = cached
        return cached

    def adjacency(self, node_id: int, direction: Any,
                  types: tuple[str, ...] | None) -> tuple[int, ...]:
        """Memoized ``view.edges_of``: store layers are touched once
        per (node, direction, types) within a query.

        Callers still :meth:`tick`/:meth:`db_hit` per edge consumed;
        db-hits are charged only on the miss that actually reads the
        store, so PROFILE keeps counting real accesses.
        """
        key = (node_id, direction, types)
        edges = self._adjacency_memo.get(key)
        if edges is not None:
            self.adjacency_hits += 1
            return edges
        lock = self._memo_lock
        if lock is not None:
            # forked context: re-check under the lock so concurrent
            # morsels charge the miss exactly once (serial db-hit
            # totals are part of the batch engine's equivalence
            # contract)
            with lock:
                edges = self._adjacency_memo.get(key)
                if edges is not None:
                    self.adjacency_hits += 1
                    return edges
                return self._adjacency_miss(key)
        return self._adjacency_miss(key)

    def _adjacency_miss(self, key: tuple[int, Any, Any],
                        ) -> tuple[int, ...]:
        node_id, direction, types = key
        self.adjacency_misses += 1
        edges = tuple(self.view.edges_of(node_id, direction, types))
        self.db_hit(len(edges) or 1)
        if len(self._adjacency_memo) < self._ADJACENCY_MEMO_LIMIT:
            self._adjacency_memo[key] = edges
        return edges

    def neighbors(self, node_id: int, direction: Any,
                  types: tuple[str, ...] | None,
                  ) -> list[tuple[int, int]]:
        """Memoized, endpoint-resolved :meth:`adjacency`: the batch
        executor's expansion kernels consume ``(edge_id, other_end)``
        pairs, so the per-edge endpoint lookups happen once per
        (node, direction, types) within a query.

        Misses route through :meth:`adjacency`, so store reads are
        charged as db-hits exactly as the row kernels charge them;
        callers still :meth:`tick` per edge consumed.
        """
        key = (node_id, direction, types)
        pairs = self._neighbor_memo.get(key)
        if pairs is not None:
            self.adjacency_hits += 1
            return pairs
        lock = self._memo_lock
        if lock is not None:
            with lock:
                pairs = self._neighbor_memo.get(key)
                if pairs is not None:
                    self.adjacency_hits += 1
                    return pairs
                return self._neighbors_miss(key)
        return self._neighbors_miss(key)

    def _neighbors_miss(self, key: tuple[int, Any, Any],
                        ) -> list[tuple[int, int]]:
        node_id, direction, types = key
        if self._bulk_neighbors is not None:
            # the view caches resolved adjacency across queries; the
            # logical access is still charged here, once per key per
            # query, exactly as the adjacency() miss path charges it
            self.adjacency_misses += 1
            pairs = self._bulk_neighbors(node_id, direction, types)
            self.db_hit(len(pairs) or 1)
        else:
            edges = self.adjacency(node_id, direction, types)
            resolver = self._resolve_neighbors
            if resolver is not None:
                pairs = resolver(node_id, edges)
            else:
                view = self.view
                pairs = []
                for edge_id in edges:
                    source = view.edge_source(edge_id)
                    pairs.append((edge_id, source if source != node_id
                                  else view.edge_target(edge_id)))
        if len(self._neighbor_memo) < self._ADJACENCY_MEMO_LIMIT:
            self._neighbor_memo[key] = pairs
        return pairs

    def check_deadline(self) -> None:
        if self.timeout is not None and \
                time.monotonic() - self.started > self.timeout:
            raise QueryTimeoutError(self.timeout)

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started


def evaluate(expr: ast.Expr, row: Mapping[str, Any],
             ctx: ExecutionContext) -> Any:
    """Evaluate an expression against one row binding."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        if expr.name not in ctx.parameters:
            raise CypherSemanticError(f"missing parameter ${expr.name}")
        return ctx.parameters[expr.name]
    if isinstance(expr, ast.Variable):
        if expr.name not in row:
            raise CypherSemanticError(f"unknown variable {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, ast.PropertyAccess):
        return _property(evaluate(expr.subject, row, ctx), expr.key, ctx)
    if isinstance(expr, ast.Unary):
        return _unary(expr, row, ctx)
    if isinstance(expr, ast.Binary):
        return _binary(expr, row, ctx)
    if isinstance(expr, ast.CountStar):
        raise CypherSemanticError("count(*) outside RETURN/WITH")
    if isinstance(expr, ast.FunctionCall):
        if expr.is_aggregate:
            raise CypherSemanticError(
                f"aggregate {expr.name}() outside RETURN/WITH")
        return _function(expr, row, ctx)
    if isinstance(expr, ast.PatternPredicate):
        # resolved lazily to avoid a circular import with the matcher
        from repro.cypher.matcher import pattern_exists
        return pattern_exists(expr.pattern, row, ctx)
    raise CypherSemanticError(f"cannot evaluate {expr!r}")


def _property(subject: Any, key: str, ctx: ExecutionContext) -> Any:
    if subject is None:
        return None
    if isinstance(subject, NodeRef):
        ctx.db_hit()
        return ctx.view.node_property(subject.id, key)
    if isinstance(subject, EdgeRef):
        ctx.db_hit()
        return ctx.view.edge_property(subject.id, key)
    if isinstance(subject, Mapping):
        return subject.get(key)
    raise CypherSemanticError(
        f"cannot read property {key!r} of {type(subject).__name__}")


def _unary(expr: ast.Unary, row: Mapping[str, Any],
           ctx: ExecutionContext) -> Any:
    value = evaluate(expr.operand, row, ctx)
    if expr.op == "not":
        if value is None:
            return None
        return not _truthy(value)
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise CypherSemanticError(f"unknown unary operator {expr.op!r}")


def _binary(expr: ast.Binary, row: Mapping[str, Any],
            ctx: ExecutionContext) -> Any:
    op = expr.op
    if op in ("and", "or", "xor"):
        return _logical(op, expr, row, ctx)
    left = evaluate(expr.left, row, ctx)
    right = evaluate(expr.right, row, ctx)
    if op == "=":
        if left is None or right is None:
            return None
        return left == right
    if op == "<>":
        if left is None or right is None:
            return None
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return None
        if not _comparable(left, right):
            return None  # Cypher: incomparable orderings yield null
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op == "=~":
        import re
        if left is None or right is None:
            return None
        return re.fullmatch(str(right), str(left)) is not None
    if op == "in":
        if right is None:
            return None
        if not isinstance(right, (list, tuple)):
            raise CypherSemanticError("IN needs a list on the right")
        if left is None:
            return None
        if left in right:
            return True
        # Cypher: unknown membership when the list contains nulls
        return None if any(item is None for item in right) else False
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise CypherSemanticError("integer division by zero")
            return left // right if left * right >= 0 else -(-left // right)
        return left / right
    if op == "%":
        return left % right
    if op == "^":
        return left ** right
    raise CypherSemanticError(f"unknown operator {op!r}")


def _logical(op: str, expr: ast.Binary, row: Mapping[str, Any],
             ctx: ExecutionContext) -> Any:
    left = evaluate(expr.left, row, ctx)
    left = None if left is None else _truthy(left)
    if op == "and":
        if left is False:
            return False
        right = evaluate(expr.right, row, ctx)
        right = None if right is None else _truthy(right)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        if left is True:
            return True
        right = evaluate(expr.right, row, ctx)
        right = None if right is None else _truthy(right)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    # xor
    right = evaluate(expr.right, row, ctx)
    right = None if right is None else _truthy(right)
    if left is None or right is None:
        return None
    return left != right


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise CypherSemanticError(
        f"expected a boolean, got {type(value).__name__}")


def _comparable(left: Any, right: Any) -> bool:
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return isinstance(left, str) and isinstance(right, str)


def _function(expr: ast.FunctionCall, row: Mapping[str, Any],
              ctx: ExecutionContext) -> Any:
    args = [evaluate(arg, row, ctx) for arg in expr.args]
    return _apply_function(expr.name, args, ctx)


def _apply_function(name: str, args: list[Any],
                    ctx: ExecutionContext) -> Any:
    if name == "id":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, (NodeRef, EdgeRef)):
            return subject.id
        raise CypherSemanticError("id() needs a node or relationship")
    if name == "type":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, EdgeRef):
            return ctx.view.edge_type(subject.id)
        raise CypherSemanticError("type() needs a relationship")
    if name == "labels":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, NodeRef):
            return sorted(ctx.view.node_labels(subject.id))
        raise CypherSemanticError("labels() needs a node")
    if name == "isnull":
        return args[0] is None
    if name == "has":
        return args[0] is not None
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    if name in ("size", "length"):
        subject = args[0]
        if subject is None:
            return None
        return len(subject)  # PathValue.__len__ is the hop count
    if name == "nodes":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, PathValue):
            return list(subject.nodes)
        raise CypherSemanticError("nodes() needs a path")
    if name in ("relationships", "rels"):
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, PathValue):
            return list(subject.edges)
        raise CypherSemanticError("relationships() needs a path")
    if name == "startnode":
        subject = args[0]
        if isinstance(subject, PathValue):
            return subject.start
        raise CypherSemanticError("startNode() needs a path")
    if name == "endnode":
        subject = args[0]
        if isinstance(subject, PathValue):
            return subject.end
        raise CypherSemanticError("endNode() needs a path")
    if name == "abs":
        return None if args[0] is None else abs(args[0])
    if name == "tostring":
        return None if args[0] is None else str(args[0])
    if name == "toint":
        return None if args[0] is None else int(args[0])
    if name == "tolower":
        return None if args[0] is None else str(args[0]).lower()
    if name == "toupper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "__list__":
        return list(args)
    raise CypherSemanticError(f"unknown function {name}()")


# --------------------------------------------------------------------------
# Compiled expression kernels
# --------------------------------------------------------------------------
# The batch engine's hot loops call evaluate() per row, and evaluate()
# pays an isinstance ladder per AST node per row. compile_expr() lowers
# an expression tree ONCE into a composition of plain Python closures —
# each node's dispatch decided at compile time — with semantics
# byte-identical to evaluate(): same three-valued null logic, same
# db-hit charging points, same error messages, same evaluation order.
# Kernels are cached on the AST node itself (frozen dataclasses accept
# object.__setattr__), so they live exactly as long as the plan-cache
# entry that owns the tree: compiled once at prepare time, reused by
# every execution of the cached plan.

_KERNEL_ATTR = "_compiled_kernel"


def compile_expr(expr: ast.Expr):
    """The compiled ``(row, ctx) -> value`` kernel for *expr*, cached
    on the expression node."""
    kernel = getattr(expr, _KERNEL_ATTR, None)
    if kernel is None:
        kernel = _compile(expr)
        object.__setattr__(expr, _KERNEL_ATTR, kernel)
    return kernel


def _compile(expr: ast.Expr):
    if isinstance(expr, ast.Literal):
        value = expr.value

        def literal_kernel(row: Mapping[str, Any],
                           ctx: ExecutionContext) -> Any:
            return value

        return literal_kernel
    if isinstance(expr, ast.Parameter):
        name = expr.name

        def parameter_kernel(row: Mapping[str, Any],
                             ctx: ExecutionContext) -> Any:
            try:
                return ctx.parameters[name]
            except KeyError:
                raise CypherSemanticError(
                    f"missing parameter ${name}") from None

        return parameter_kernel
    if isinstance(expr, ast.Variable):
        name = expr.name

        def variable_kernel(row: Mapping[str, Any],
                            ctx: ExecutionContext) -> Any:
            try:
                return row[name]
            except KeyError:
                raise CypherSemanticError(
                    f"unknown variable {name!r}") from None

        return variable_kernel
    if isinstance(expr, ast.PropertyAccess):
        key = expr.key
        if isinstance(expr.subject, ast.Variable):
            # fused variable.property kernel: the overwhelmingly
            # common shape skips the intermediate variable closure
            name = expr.subject.name

            def var_property_kernel(row: Mapping[str, Any],
                                    ctx: ExecutionContext) -> Any:
                try:
                    subject = row[name]
                except KeyError:
                    raise CypherSemanticError(
                        f"unknown variable {name!r}") from None
                if subject is None:
                    return None
                if isinstance(subject, NodeRef):
                    ctx.db_hit()
                    return ctx.view.node_property(subject.id, key)
                if isinstance(subject, EdgeRef):
                    ctx.db_hit()
                    return ctx.view.edge_property(subject.id, key)
                if isinstance(subject, Mapping):
                    return subject.get(key)
                raise CypherSemanticError(
                    f"cannot read property {key!r} of "
                    f"{type(subject).__name__}")

            return var_property_kernel
        subject_kernel = compile_expr(expr.subject)

        def property_kernel(row: Mapping[str, Any],
                            ctx: ExecutionContext) -> Any:
            subject = subject_kernel(row, ctx)
            if subject is None:
                return None
            if isinstance(subject, NodeRef):
                ctx.db_hit()
                return ctx.view.node_property(subject.id, key)
            if isinstance(subject, EdgeRef):
                ctx.db_hit()
                return ctx.view.edge_property(subject.id, key)
            if isinstance(subject, Mapping):
                return subject.get(key)
            raise CypherSemanticError(
                f"cannot read property {key!r} of "
                f"{type(subject).__name__}")

        return property_kernel
    if isinstance(expr, ast.Unary):
        return _compile_unary(expr)
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr)
    if isinstance(expr, ast.CountStar):

        def countstar_kernel(row: Mapping[str, Any],
                             ctx: ExecutionContext) -> Any:
            raise CypherSemanticError("count(*) outside RETURN/WITH")

        return countstar_kernel
    if isinstance(expr, ast.FunctionCall):
        name = expr.name
        if expr.is_aggregate:

            def aggregate_kernel(row: Mapping[str, Any],
                                 ctx: ExecutionContext) -> Any:
                raise CypherSemanticError(
                    f"aggregate {name}() outside RETURN/WITH")

            return aggregate_kernel
        arg_kernels = tuple(compile_expr(arg) for arg in expr.args)

        def function_kernel(row: Mapping[str, Any],
                            ctx: ExecutionContext) -> Any:
            return _apply_function(
                name, [kernel(row, ctx) for kernel in arg_kernels], ctx)

        return function_kernel
    if isinstance(expr, ast.PatternPredicate):
        pattern = expr.pattern
        fast = _compile_exists(pattern)
        if fast is not None:
            return fast
        state: list[Any] = []

        def pattern_kernel(row: Mapping[str, Any],
                           ctx: ExecutionContext) -> Any:
            if not state:
                from repro.cypher.matcher import pattern_exists
                state.append(pattern_exists)
            return state[0](pattern, row, ctx)

        return pattern_kernel

    # anything the compiler doesn't know falls back to the interpreter
    def fallback_kernel(row: Mapping[str, Any],
                        ctx: ExecutionContext) -> Any:
        return evaluate(expr, row, ctx)

    return fallback_kernel


def _compile_unary(expr: ast.Unary):
    operand_kernel = compile_expr(expr.operand)
    if expr.op == "not":

        def not_kernel(row: Mapping[str, Any],
                       ctx: ExecutionContext) -> Any:
            value = operand_kernel(row, ctx)
            if value is None:
                return None
            return not _truthy(value)

        return not_kernel
    if expr.op == "-":

        def negate_kernel(row: Mapping[str, Any],
                          ctx: ExecutionContext) -> Any:
            value = operand_kernel(row, ctx)
            if value is None:
                return None
            return -value

        return negate_kernel
    op = expr.op

    def unknown_unary_kernel(row: Mapping[str, Any],
                             ctx: ExecutionContext) -> Any:
        raise CypherSemanticError(f"unknown unary operator {op!r}")

    return unknown_unary_kernel


def _compile_binary(expr: ast.Binary):
    op = expr.op
    if op in ("and", "or", "xor"):
        return _compile_logical(expr)
    left_kernel = compile_expr(expr.left)
    right_kernel = compile_expr(expr.right)
    if op == "=":

        def eq_kernel(row: Mapping[str, Any],
                      ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            return left == right

        return eq_kernel
    if op == "<>":

        def ne_kernel(row: Mapping[str, Any],
                      ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            return left != right

        return ne_kernel
    if op in ("<", "<=", ">", ">="):
        import operator as _operator
        compare = {"<": _operator.lt, "<=": _operator.le,
                   ">": _operator.gt, ">=": _operator.ge}[op]

        def compare_kernel(row: Mapping[str, Any],
                           ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            if not _comparable(left, right):
                return None  # Cypher: incomparable orderings yield null
            return compare(left, right)

        return compare_kernel
    if op == "=~":
        import re

        def regex_kernel(row: Mapping[str, Any],
                         ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            return re.fullmatch(str(right), str(left)) is not None

        return regex_kernel
    if op == "in":

        def in_kernel(row: Mapping[str, Any],
                      ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if right is None:
                return None
            if not isinstance(right, (list, tuple)):
                raise CypherSemanticError("IN needs a list on the right")
            if left is None:
                return None
            if left in right:
                return True
            # Cypher: unknown membership when the list contains nulls
            return None if any(item is None for item in right) else False

        return in_kernel
    if op == "/":

        def divide_kernel(row: Mapping[str, Any],
                          ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise CypherSemanticError("integer division by zero")
                return left // right if left * right >= 0 \
                    else -(-left // right)
            return left / right

        return divide_kernel
    arithmetic = {"+": lambda left, right: left + right,
                  "-": lambda left, right: left - right,
                  "*": lambda left, right: left * right,
                  "%": lambda left, right: left % right,
                  "^": lambda left, right: left ** right}
    apply = arithmetic.get(op)
    if apply is not None:

        def arithmetic_kernel(row: Mapping[str, Any],
                              ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            right = right_kernel(row, ctx)
            if left is None or right is None:
                return None
            return apply(left, right)

        return arithmetic_kernel

    def unknown_binary_kernel(row: Mapping[str, Any],
                              ctx: ExecutionContext) -> Any:
        # evaluate the operands first, exactly as the interpreter does
        left_kernel(row, ctx)
        right_kernel(row, ctx)
        raise CypherSemanticError(f"unknown operator {op!r}")

    return unknown_binary_kernel


def _compile_logical(expr: ast.Binary):
    op = expr.op
    left_kernel = compile_expr(expr.left)
    right_kernel = compile_expr(expr.right)
    if op == "and":

        def and_kernel(row: Mapping[str, Any],
                       ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            left = None if left is None else _truthy(left)
            if left is False:
                return False
            right = right_kernel(row, ctx)
            right = None if right is None else _truthy(right)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True

        return and_kernel
    if op == "or":

        def or_kernel(row: Mapping[str, Any],
                      ctx: ExecutionContext) -> Any:
            left = left_kernel(row, ctx)
            left = None if left is None else _truthy(left)
            if left is True:
                return True
            right = right_kernel(row, ctx)
            right = None if right is None else _truthy(right)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        return or_kernel

    def xor_kernel(row: Mapping[str, Any],
                   ctx: ExecutionContext) -> Any:
        left = left_kernel(row, ctx)
        left = None if left is None else _truthy(left)
        right = right_kernel(row, ctx)
        right = None if right is None else _truthy(right)
        if left is None or right is None:
            return None
        return left != right

    return xor_kernel


def _compile_exists(pattern: ast.Pattern):
    """A specialized kernel for hot WHERE exists shapes, or None.

    The Table 5 xref and debugging queries spend their WHERE time in
    2-node/1-rel existence checks, where the generic matcher pays a
    per-row plan lookup, a ``dict(row)`` copy and a generator stack
    just to learn whether one expansion yields anything. Two shapes
    compile to flat loops:

    * **single hop** (xref's ``(n) <-[{props}]- ()``): iterate the
      bound endpoint's memoized adjacency, prop-filtering each edge —
      the same work and the same db-hit charging as the generic
      ``_expand_single``/``_edge_props_ok`` walk;
    * **unbounded var-length between two bound endpoints**
      (debugging's ``direct -[:calls*]-> writer``): visited-set BFS
      with early exit. Sound because for *distinct* endpoints,
      existence under edge-unique path semantics equals plain
      reachability (any walk contains a node-simple, hence
      edge-unique, path); the ``source == target`` cycle case keeps
      the generic path-enumeration semantics via the fallback.

    Anything beyond these shapes — endpoint labels or properties, rel
    or path variables, shortestPath, longer chains, bounded hops,
    rows where the needed endpoints are unbound or bound to
    non-nodes — falls back to the generic ``pattern_exists`` (at
    runtime when the binding shape decides it).
    """
    if (pattern.shortest is not None or pattern.path_variable
            or len(pattern.nodes) != 2 or len(pattern.rels) != 1):
        return None
    left, right = pattern.nodes
    rel = pattern.rels[0]
    if rel.variable is not None:
        return None
    for node in (left, right):
        if node.labels or node.properties:
            return None
    types = rel.types or None
    forward = _DIRECTIONS[rel.direction]
    prop_kernels = compile_props(rel.properties)

    def generic(row: Mapping[str, Any],
                ctx: ExecutionContext) -> bool:
        from repro.cypher.matcher import pattern_exists
        return pattern_exists(pattern, row, ctx)

    def bound_id(variable, row):
        """The endpoint's node id, or None when unbound/non-node."""
        if not variable:
            return None
        value = row.get(variable)
        return value.id if isinstance(value, NodeRef) else None

    if not rel.var_length:

        def single_hop_exists(row: Mapping[str, Any],
                              ctx: ExecutionContext) -> bool:
            source = bound_id(left.variable, row)
            if source is not None:
                direction, target = forward, bound_id(
                    right.variable, row)
            else:
                source = bound_id(right.variable, row)
                if source is None:
                    return generic(row, ctx)
                direction, target = forward.reverse(), None
            view = ctx.view
            for edge_id in ctx.adjacency(source, direction, types):
                ctx.tick()
                ok = True
                for key, kernel in prop_kernels:
                    wanted = kernel(row, ctx)
                    ctx.db_hit()
                    if view.edge_property(edge_id, key) != wanted:
                        ok = False
                        break
                if not ok:
                    continue
                if target is None or \
                        other_end(view, edge_id, source) == target:
                    return True
            return False

        return single_hop_exists

    if rel.min_hops > 1 or rel.max_hops is not None:
        return None

    def reachability_exists(row: Mapping[str, Any],
                            ctx: ExecutionContext) -> bool:
        source = bound_id(left.variable, row)
        target = bound_id(right.variable, row)
        if source is None or target is None or source == target:
            return generic(row, ctx)
        view = ctx.view
        visited = {source}
        frontier = [source]
        while frontier:
            next_frontier = []
            for node_id in frontier:
                for edge_id in ctx.adjacency(node_id, forward, types):
                    ctx.tick()
                    ok = True
                    for key, kernel in prop_kernels:
                        wanted = kernel(row, ctx)
                        ctx.db_hit()
                        if view.edge_property(edge_id, key) != wanted:
                            ok = False
                            break
                    if not ok:
                        continue
                    neighbor = other_end(view, edge_id, node_id)
                    if neighbor == target:
                        return True
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return False

    return reachability_exists


def compile_props(properties: tuple[tuple[str, ast.Expr], ...]):
    """A pattern element's ``{key: expr}`` map as (key, kernel) pairs."""
    return tuple((key, compile_expr(expr)) for key, expr in properties)


def literal_props(properties: tuple[tuple[str, ast.Expr], ...]):
    """The map as constant (key, value) pairs when every value is a
    literal — the overwhelmingly common ``{key: 42}`` form — else
    ``None``.  Callers use this to hoist the wanted values out of
    per-edge loops; db-hit charging is theirs and stays per check.
    """
    if all(isinstance(expr, ast.Literal) for _key, expr in properties):
        return tuple((key, expr.value) for key, expr in properties)
    return None


def expr_kernel(expr: ast.Expr, ctx: ExecutionContext):
    """The evaluator for *expr* under this context's kernel gate:
    the compiled closure, or an interpreted shim for the ablation."""
    if ctx.use_compiled_kernels:
        return compile_expr(expr)

    def interpreted(row: Mapping[str, Any],
                    context: ExecutionContext) -> Any:
        return evaluate(expr, row, context)

    return interpreted


def precompile_query(query: ast.Query) -> None:
    """Compile every hot expression of a planned query, at prepare
    time, so execution (and the plan cache) reuses the kernels."""
    for clause in query.clauses:
        if isinstance(clause, ast.Where):
            compile_expr(clause.predicate)
        elif isinstance(clause, (ast.With, ast.Return)):
            for item in clause.items:
                if not ast.contains_aggregate(item.expression):
                    compile_expr(item.expression)
            for sort in clause.order_by:
                if not ast.contains_aggregate(sort.expression):
                    compile_expr(sort.expression)
            where = getattr(clause, "where", None)
            if where is not None:
                compile_expr(where)
        elif isinstance(clause, ast.Match):
            for pattern in clause.patterns:
                precompile_pattern(pattern)


def precompile_pattern(pattern: ast.Pattern) -> None:
    for node in pattern.nodes:
        compile_props(node.properties)
    for rel in pattern.rels:
        compile_props(rel.properties)
