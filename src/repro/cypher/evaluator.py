"""Expression evaluation with Cypher's three-valued null semantics.

``None`` plays SQL NULL's role: comparisons against it yield ``None``,
``AND``/``OR`` follow Kleene logic, and ``WHERE`` keeps a row only when
the predicate evaluates to exactly ``True``.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.cypher import ast
from repro.cypher.result import EdgeRef, NodeRef, PathValue
from repro.errors import CypherSemanticError, QueryTimeoutError
from repro.graphdb.view import GraphView


class ExecutionContext:
    """Shared per-query state: graph view, parameters, time budget."""

    _CHECK_EVERY = 4096
    #: adjacency memo entries kept before the memo stops growing; a
    #: per-query cache, so the bound only guards pathological queries
    _ADJACENCY_MEMO_LIMIT = 100_000

    def __init__(self, view: GraphView,
                 parameters: Mapping[str, Any] | None = None,
                 timeout: float | None = None,
                 use_index_seek: bool = True,
                 profiler: Any | None = None,
                 use_reachability_rewrite: bool = True,
                 use_cost_based_planner: bool = True) -> None:
        self.view = view
        self.parameters = dict(parameters or {})
        self.timeout = timeout
        #: planner switch: anchor MATCH patterns on auto-index seeks
        #: when a node pattern carries an indexed property literal.
        #: Disabled only by the E5 planner-ablation benchmark.
        self.use_index_seek = use_index_seek
        #: honor planner reachability marks on var-length rels (the
        #: Section 6.1 ablation gate)
        self.use_reachability_rewrite = use_reachability_rewrite
        #: cost the anchor/step order from graph statistics instead of
        #: the fixed bound > label > property heuristic
        self.use_cost_based_planner = use_cost_based_planner
        #: :class:`~repro.obs.profile.QueryProfiler` under PROFILE,
        #: else None; None keeps the unprofiled hot path branch-cheap
        self.profiler = profiler
        self.started = time.monotonic()
        self.expansions = 0
        # start one short of the check interval so the very first tick
        # verifies the deadline — tiny budgets must fail promptly even
        # on queries that never reach _CHECK_EVERY expansions
        self._tick_counter = self._CHECK_EVERY - 1
        # per-query (node, direction, types) -> edge tuple memo; the
        # matcher's bulk fast path for repeated expansions of hot nodes
        self._adjacency_memo: dict[tuple[int, Any, Any],
                                   tuple[int, ...]] = {}
        # (node, direction, types) -> [(edge, other_end)] memo for the
        # batch executor's resolved-adjacency fast path
        self._neighbor_memo: dict[tuple[int, Any, Any],
                                  list[tuple[int, int]]] = {}
        self._resolve_neighbors = getattr(view, "resolve_neighbors",
                                          None)
        self._bulk_neighbors = getattr(view, "neighbors_of", None)
        self.adjacency_hits = 0
        self.adjacency_misses = 0
        # per-clause pattern plans (anchor + step order), keyed on
        # pattern identity and the bound-variable set
        self._pattern_plans: dict[tuple[int, frozenset[str]], Any] = {}

    def tick(self, count: int = 1) -> None:
        """Account work; raise if the time budget is exhausted."""
        self.expansions += count
        self._tick_counter += count
        if self.timeout is not None and \
                self._tick_counter >= self._CHECK_EVERY:
            self._tick_counter = 0
            if time.monotonic() - self.started > self.timeout:
                raise QueryTimeoutError(self.timeout)

    def db_hit(self, count: int = 1) -> None:
        """Charge store accesses to the profiled operator, if any."""
        if self.profiler is not None:
            self.profiler.hit(count)

    def adjacency(self, node_id: int, direction: Any,
                  types: tuple[str, ...] | None) -> tuple[int, ...]:
        """Memoized ``view.edges_of``: store layers are touched once
        per (node, direction, types) within a query.

        Callers still :meth:`tick`/:meth:`db_hit` per edge consumed;
        db-hits are charged only on the miss that actually reads the
        store, so PROFILE keeps counting real accesses.
        """
        key = (node_id, direction, types)
        edges = self._adjacency_memo.get(key)
        if edges is not None:
            self.adjacency_hits += 1
            return edges
        self.adjacency_misses += 1
        edges = tuple(self.view.edges_of(node_id, direction, types))
        self.db_hit(len(edges) or 1)
        if len(self._adjacency_memo) < self._ADJACENCY_MEMO_LIMIT:
            self._adjacency_memo[key] = edges
        return edges

    def neighbors(self, node_id: int, direction: Any,
                  types: tuple[str, ...] | None,
                  ) -> list[tuple[int, int]]:
        """Memoized, endpoint-resolved :meth:`adjacency`: the batch
        executor's expansion kernels consume ``(edge_id, other_end)``
        pairs, so the per-edge endpoint lookups happen once per
        (node, direction, types) within a query.

        Misses route through :meth:`adjacency`, so store reads are
        charged as db-hits exactly as the row kernels charge them;
        callers still :meth:`tick` per edge consumed.
        """
        key = (node_id, direction, types)
        pairs = self._neighbor_memo.get(key)
        if pairs is not None:
            self.adjacency_hits += 1
            return pairs
        if self._bulk_neighbors is not None:
            # the view caches resolved adjacency across queries; the
            # logical access is still charged here, once per key per
            # query, exactly as the adjacency() miss path charges it
            self.adjacency_misses += 1
            pairs = self._bulk_neighbors(node_id, direction, types)
            self.db_hit(len(pairs) or 1)
        else:
            edges = self.adjacency(node_id, direction, types)
            resolver = self._resolve_neighbors
            if resolver is not None:
                pairs = resolver(node_id, edges)
            else:
                view = self.view
                pairs = []
                for edge_id in edges:
                    source = view.edge_source(edge_id)
                    pairs.append((edge_id, source if source != node_id
                                  else view.edge_target(edge_id)))
        if len(self._neighbor_memo) < self._ADJACENCY_MEMO_LIMIT:
            self._neighbor_memo[key] = pairs
        return pairs

    def check_deadline(self) -> None:
        if self.timeout is not None and \
                time.monotonic() - self.started > self.timeout:
            raise QueryTimeoutError(self.timeout)

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started


def evaluate(expr: ast.Expr, row: Mapping[str, Any],
             ctx: ExecutionContext) -> Any:
    """Evaluate an expression against one row binding."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        if expr.name not in ctx.parameters:
            raise CypherSemanticError(f"missing parameter ${expr.name}")
        return ctx.parameters[expr.name]
    if isinstance(expr, ast.Variable):
        if expr.name not in row:
            raise CypherSemanticError(f"unknown variable {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, ast.PropertyAccess):
        return _property(evaluate(expr.subject, row, ctx), expr.key, ctx)
    if isinstance(expr, ast.Unary):
        return _unary(expr, row, ctx)
    if isinstance(expr, ast.Binary):
        return _binary(expr, row, ctx)
    if isinstance(expr, ast.CountStar):
        raise CypherSemanticError("count(*) outside RETURN/WITH")
    if isinstance(expr, ast.FunctionCall):
        if expr.is_aggregate:
            raise CypherSemanticError(
                f"aggregate {expr.name}() outside RETURN/WITH")
        return _function(expr, row, ctx)
    if isinstance(expr, ast.PatternPredicate):
        # resolved lazily to avoid a circular import with the matcher
        from repro.cypher.matcher import pattern_exists
        return pattern_exists(expr.pattern, row, ctx)
    raise CypherSemanticError(f"cannot evaluate {expr!r}")


def _property(subject: Any, key: str, ctx: ExecutionContext) -> Any:
    if subject is None:
        return None
    if isinstance(subject, NodeRef):
        ctx.db_hit()
        return ctx.view.node_property(subject.id, key)
    if isinstance(subject, EdgeRef):
        ctx.db_hit()
        return ctx.view.edge_property(subject.id, key)
    if isinstance(subject, Mapping):
        return subject.get(key)
    raise CypherSemanticError(
        f"cannot read property {key!r} of {type(subject).__name__}")


def _unary(expr: ast.Unary, row: Mapping[str, Any],
           ctx: ExecutionContext) -> Any:
    value = evaluate(expr.operand, row, ctx)
    if expr.op == "not":
        if value is None:
            return None
        return not _truthy(value)
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise CypherSemanticError(f"unknown unary operator {expr.op!r}")


def _binary(expr: ast.Binary, row: Mapping[str, Any],
            ctx: ExecutionContext) -> Any:
    op = expr.op
    if op in ("and", "or", "xor"):
        return _logical(op, expr, row, ctx)
    left = evaluate(expr.left, row, ctx)
    right = evaluate(expr.right, row, ctx)
    if op == "=":
        if left is None or right is None:
            return None
        return left == right
    if op == "<>":
        if left is None or right is None:
            return None
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return None
        if not _comparable(left, right):
            return None  # Cypher: incomparable orderings yield null
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op == "=~":
        import re
        if left is None or right is None:
            return None
        return re.fullmatch(str(right), str(left)) is not None
    if op == "in":
        if right is None:
            return None
        if not isinstance(right, (list, tuple)):
            raise CypherSemanticError("IN needs a list on the right")
        if left is None:
            return None
        if left in right:
            return True
        # Cypher: unknown membership when the list contains nulls
        return None if any(item is None for item in right) else False
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise CypherSemanticError("integer division by zero")
            return left // right if left * right >= 0 else -(-left // right)
        return left / right
    if op == "%":
        return left % right
    if op == "^":
        return left ** right
    raise CypherSemanticError(f"unknown operator {op!r}")


def _logical(op: str, expr: ast.Binary, row: Mapping[str, Any],
             ctx: ExecutionContext) -> Any:
    left = evaluate(expr.left, row, ctx)
    left = None if left is None else _truthy(left)
    if op == "and":
        if left is False:
            return False
        right = evaluate(expr.right, row, ctx)
        right = None if right is None else _truthy(right)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        if left is True:
            return True
        right = evaluate(expr.right, row, ctx)
        right = None if right is None else _truthy(right)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    # xor
    right = evaluate(expr.right, row, ctx)
    right = None if right is None else _truthy(right)
    if left is None or right is None:
        return None
    return left != right


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise CypherSemanticError(
        f"expected a boolean, got {type(value).__name__}")


def _comparable(left: Any, right: Any) -> bool:
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return isinstance(left, str) and isinstance(right, str)


def _function(expr: ast.FunctionCall, row: Mapping[str, Any],
              ctx: ExecutionContext) -> Any:
    args = [evaluate(arg, row, ctx) for arg in expr.args]
    name = expr.name
    if name == "id":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, (NodeRef, EdgeRef)):
            return subject.id
        raise CypherSemanticError("id() needs a node or relationship")
    if name == "type":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, EdgeRef):
            return ctx.view.edge_type(subject.id)
        raise CypherSemanticError("type() needs a relationship")
    if name == "labels":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, NodeRef):
            return sorted(ctx.view.node_labels(subject.id))
        raise CypherSemanticError("labels() needs a node")
    if name == "isnull":
        return args[0] is None
    if name == "has":
        return args[0] is not None
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    if name in ("size", "length"):
        subject = args[0]
        if subject is None:
            return None
        return len(subject)  # PathValue.__len__ is the hop count
    if name == "nodes":
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, PathValue):
            return list(subject.nodes)
        raise CypherSemanticError("nodes() needs a path")
    if name in ("relationships", "rels"):
        subject = args[0]
        if subject is None:
            return None
        if isinstance(subject, PathValue):
            return list(subject.edges)
        raise CypherSemanticError("relationships() needs a path")
    if name == "startnode":
        subject = args[0]
        if isinstance(subject, PathValue):
            return subject.start
        raise CypherSemanticError("startNode() needs a path")
    if name == "endnode":
        subject = args[0]
        if isinstance(subject, PathValue):
            return subject.end
        raise CypherSemanticError("endNode() needs a path")
    if name == "abs":
        return None if args[0] is None else abs(args[0])
    if name == "tostring":
        return None if args[0] is None else str(args[0])
    if name == "toint":
        return None if args[0] is None else int(args[0])
    if name == "tolower":
        return None if args[0] is None else str(args[0]).lower()
    if name == "toupper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "__list__":
        return list(args)
    raise CypherSemanticError(f"unknown function {name}()")
