"""Bounded LRU cache for compiled (planned) queries.

Entries are keyed on query text and carry the graph-statistics epoch
they were planned at: a lookup with a newer epoch is a *stale* hit —
the graph changed underneath the plan, so anchor costs and pushdown
decisions may no longer be right — and is treated as an invalidating
miss. Capacity-bounded with least-recently-used eviction so a
long-lived engine serving ad-hoc query text cannot grow without limit
(the old implementation was an unbounded dict).

The cache is thread-safe: ``get``/``put``/``clear`` serialize on an
internal lock because the serving executor probes it from many worker
threads at once, and ``OrderedDict`` reordering is not atomic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterator

from repro.cypher import ast

DEFAULT_CAPACITY = 128


class PlanCache:
    """text -> (planned query, epoch), LRU-bounded.

    ``hits``/``misses``/``evictions``/``invalidations`` are optional
    counter objects (anything with ``inc()``) — the engine binds them
    to its metrics registry as ``planner.cache.*``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 hits: Any = None, misses: Any = None,
                 evictions: Any = None, invalidations: Any = None,
                 ) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[ast.Query, int]] = \
            OrderedDict()
        self._lock = threading.Lock()
        self._hits = hits
        self._misses = misses
        self._evictions = evictions
        self._invalidations = invalidations

    def get(self, text: str, epoch: int) -> ast.Query | None:
        """The cached plan, or None on a miss or a stale entry."""
        with self._lock:
            entry = self._entries.get(text)
            if entry is None:
                self._inc(self._misses)
                return None
            query, cached_epoch = entry
            if cached_epoch != epoch:
                # the graph mutated since this plan was costed
                del self._entries[text]
                self._inc(self._invalidations)
                self._inc(self._misses)
                return None
            self._entries.move_to_end(text)
            self._inc(self._hits)
            return query

    def put(self, text: str, query: ast.Query, epoch: int) -> None:
        with self._lock:
            self._entries[text] = (query, epoch)
            self._entries.move_to_end(text)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._inc(self._evictions)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, text: str) -> bool:
        return text in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    @staticmethod
    def _inc(counter: Any) -> None:
        if counter is not None:
            counter.inc()

    def __repr__(self) -> str:
        return (f"PlanCache({len(self._entries)}/{self.capacity} "
                "entries)")
