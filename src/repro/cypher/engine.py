"""The public query-engine facade.

:class:`CypherEngine` binds a graph view, caches parsed queries, and
runs them with per-query :class:`~repro.cypher.options.QueryOptions`
(time budget, row cap, profiling) — the budget is how the benchmark
harness reproduces the paper's "aborted after 15 minutes" protocol for
the Figure 6 comprehension query, and ``PROFILE`` execution is how the
Section 6.1 operator-level blow-up is attributed rather than asserted.

Every run is booked into the engine's
:class:`~repro.obs.Observability` bundle: query counters and latency
histogram, the slow-query log, and a trace span per execution.

Concurrency: each :meth:`CypherEngine.run` pins one epoch snapshot of
the bound view (:func:`~repro.graphdb.snapshot.pin_view`) and uses it
for plan-cache keying, planner statistics *and* execution, so a query
observes exactly one graph state even while a writer mutates the live
graph — and the plan it was given was costed at that same state. The
plan cache itself is lock-protected, making a single engine safe to
share across the serving executor's worker threads.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from repro.cypher import ast
from repro.cypher.batch import (DEFAULT_MORSEL_SIZE, batch_supported,
                                execute_batch)
from repro.cypher.evaluator import ExecutionContext, precompile_query
from repro.cypher.executor import execute
from repro.cypher.options import QueryOptions
from repro.cypher.parser import parse
from repro.cypher.plan import PlanDescription
from repro.cypher.plan_cache import DEFAULT_CAPACITY, PlanCache
from repro.cypher.planner import plan_query, prefer_rows
from repro.cypher.result import Result
from repro.errors import QueryTimeoutError
from repro.graphdb.snapshot import pin_view
from repro.graphdb.view import GraphView
from repro.obs import Observability, QueryProfiler


class CypherEngine:
    """Runs Cypher text against one graph view.

    Parameters
    ----------
    view:
        Any :class:`~repro.graphdb.view.GraphView` — the in-memory
        graph or a page-cached disk store.
    default_timeout:
        Seconds allowed per query unless overridden per run;
        ``None`` means unbounded.
    obs:
        The :class:`~repro.obs.Observability` bundle to record into;
        a private one is created when not supplied (the Frappé facade
        shares its bundle so engine and storage counters land in one
        registry).
    """

    def __init__(self, view: GraphView,
                 default_timeout: float | None = None,
                 use_index_seek: bool = True,
                 obs: Observability | None = None,
                 use_reachability_rewrite: bool = True,
                 use_cost_based_planner: bool = True,
                 plan_cache_capacity: int = DEFAULT_CAPACITY,
                 execution_mode: str = "auto",
                 morsel_size: int = DEFAULT_MORSEL_SIZE,
                 parallelism: int = 0,
                 use_compiled_kernels: bool = True,
                 use_csr_adjacency: bool = True) -> None:
        self.view = view
        self.default_timeout = default_timeout
        self.use_index_seek = use_index_seek
        if execution_mode not in ("auto", "batch", "rows"):
            raise ValueError(
                "execution_mode must be 'auto', 'batch' or 'rows'")
        #: 'auto' runs a query batch-at-a-time when every clause has a
        #: batch kernel; 'batch'/'rows' force one engine (per-query
        #: override via QueryOptions.execution_mode)
        self.execution_mode = execution_mode
        #: rows per batch in batch execution
        self.morsel_size = morsel_size
        if parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        #: morsel tasks per query in batch execution: 0 = auto (the
        #: attached pool's worker count, serial without a pool), 1 =
        #: serial, N = up to N concurrent tasks (per-query override
        #: via QueryOptions.parallelism)
        self.parallelism = parallelism
        #: run batch WHERE/projection through precompiled closure
        #: kernels (off = interpreted evaluate(), the ablation knob)
        self.use_compiled_kernels = use_compiled_kernels
        #: promote the store's CSR adjacency snapshot to the default
        #: read format for batch execution (lazily built per epoch)
        self.use_csr_adjacency = use_csr_adjacency
        #: intra-query work spawner — ``callable(fn) -> handle`` on the
        #: serving pool; Frappe.serve() wires this to
        #: Executor.spawn_task (with pool_workers as the auto
        #: parallelism), so queries parallelize onto the same
        #: fair-share pool that runs them
        self.task_spawner = None
        self.pool_workers = 0
        # engine-persistent pattern-plan memo: cached plans outlive a
        # single run so re-executions of a cached query skip replanning
        # every MATCH clause; invalidated wholesale on epoch change
        # (plans are costed against the pinned view's statistics)
        self._pattern_plan_memo: dict = {}
        # START index candidates, keyed by query string, same epoch
        # lifecycle as the plan memo
        self._start_candidate_memo: dict = {}
        self._pattern_plan_epoch: int | None = None
        #: run endpoint-distinct var-length patterns as visited-set BFS
        #: (Section 6.1 ablation gate; per-query override via
        #: QueryOptions.use_reachability_rewrite)
        self.use_reachability_rewrite = use_reachability_rewrite
        #: cost anchors/step order from GraphStatistics and push WHERE
        #: equality conjuncts into MATCH (off = legacy heuristic)
        self.use_cost_based_planner = use_cost_based_planner
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._plans_built = registry.counter("planner.plans")
        self._pushdowns = registry.counter("planner.pushed_filters")
        self._rewrites = registry.counter(
            "planner.reachability_rewrites")
        self._plan_cache = PlanCache(
            plan_cache_capacity,
            hits=registry.counter("planner.cache.hits"),
            misses=registry.counter("planner.cache.misses"),
            evictions=registry.counter("planner.cache.evictions"),
            invalidations=registry.counter(
                "planner.cache.invalidations"))

    @staticmethod
    def _epoch_of(view: Any) -> int:
        """A view's statistics epoch (0 for immutable stores)."""
        statistics = getattr(view, "statistics", None)
        return getattr(statistics, "epoch", 0)

    def _graph_epoch(self) -> int:
        """The live view's statistics epoch."""
        return self._epoch_of(self.view)

    def prepare(self, text: str, *, epoch: int | None = None) -> ast.Query:
        """Parse and plan (with caching) without executing.

        Cached plans are invalidated by graph mutation: entries carry
        the statistics epoch they were planned at, and any mutation
        bumps the epoch. ``run()`` passes the epoch of the snapshot it
        pinned so the cached plan and the executed graph state agree.
        """
        if epoch is None:
            epoch = self._graph_epoch()
        query = self._plan_cache.get(text, epoch)
        if query is None:
            query, report = plan_query(
                parse(text), pushdown=self.use_cost_based_planner)
            self._plans_built.inc()
            if report.pushed_filters:
                self._pushdowns.inc(report.pushed_filters)
            if report.reachability_rewrites:
                self._rewrites.inc(report.reachability_rewrites)
            # lower WHERE/projection expressions to closure kernels at
            # prepare time; kernels cache on the AST nodes, so they
            # live exactly as long as this plan-cache entry
            precompile_query(query)
            self._plan_cache.put(text, query, epoch)
        return query

    def run(self, text: str,
            parameters: Mapping[str, Any] | None = None,
            *deprecated: float | None,
            timeout: float | None = None,
            options: QueryOptions | None = None) -> Result:
        """Execute Cypher text and materialize the result.

        ``options`` carries the structured knobs (timeout, max_rows,
        profile, parameters); explicit ``parameters=``/``timeout=``
        keywords win over the corresponding option fields. Passing the
        timeout positionally (the pre-``QueryOptions`` signature) still
        works but emits a :class:`DeprecationWarning`.

        Raises :class:`~repro.errors.QueryTimeoutError` when the time
        budget (from whichever source) is exceeded.
        """
        timeout = self._shim_positional_timeout(deprecated, timeout)
        # QueryOptions is the one knob surface: the legacy keyword and
        # positional shims above fold into a single canonical options
        # value, and everything below reads only `opts`
        opts = QueryOptions.resolve(options, parameters=parameters,
                                    timeout=timeout)
        parameters = opts.parameters
        budget = opts.timeout
        if budget is None:
            budget = self.default_timeout
        # pin ONE graph state for planning and execution: the cache
        # key, the planner's statistics and every store read below all
        # come from this snapshot, so concurrent writers cannot slip a
        # newer epoch between plan lookup and row production
        pinned = pin_view(self.view)
        epoch = self._epoch_of(pinned)
        query = self.prepare(text, epoch=epoch)
        profiler = QueryProfiler() \
            if opts.profile or query.profile else None
        rewrite = opts.use_reachability_rewrite
        if rewrite is None:
            rewrite = self.use_reachability_rewrite
        mode = opts.execution_mode
        if mode is None:
            mode = self.execution_mode
        use_batch = mode == "batch" or \
            (mode == "auto" and batch_supported(query)
             and not self._route_to_rows(query, pinned, epoch))
        compiled = opts.use_compiled_kernels
        if compiled is None:
            compiled = self.use_compiled_kernels
        parallelism = opts.parallelism
        if parallelism is None:
            parallelism = self.parallelism
        if parallelism == 0:  # auto: fan out to the attached pool
            parallelism = self.pool_workers \
                if self.task_spawner is not None else 1
        if epoch != self._pattern_plan_epoch or \
                len(self._pattern_plan_memo) > 4096 or \
                len(self._start_candidate_memo) > 4096:
            # plans are costed against this epoch's statistics and
            # START candidates against its index state; a new epoch
            # means every cached choice is suspect
            self._pattern_plan_memo = {}
            self._start_candidate_memo = {}
            self._pattern_plan_epoch = epoch
        ctx = ExecutionContext(
            pinned, parameters, budget,
            use_index_seek=self.use_index_seek,
            profiler=profiler,
            use_reachability_rewrite=rewrite,
            use_cost_based_planner=self.use_cost_based_planner,
            use_compiled_kernels=compiled,
            parallelism=parallelism if use_batch else 1,
            task_spawner=self.task_spawner,
            pattern_plans=self._pattern_plan_memo,
            start_candidates=self._start_candidate_memo)
        morsel_size = opts.morsel_size
        if morsel_size is None:
            morsel_size = self.morsel_size
        if use_batch and self.use_csr_adjacency:
            # batch kernels read bulk adjacency; promote the pinned
            # store view's CSR snapshot to the default read format
            # (lazy: rings are decoded into the CSR on first access)
            enable_csr = getattr(pinned, "enable_csr", None)
            if enable_csr is not None:
                enable_csr()
        with self.obs.tracer.span("cypher.query", query=text):
            try:
                if use_batch:
                    result = execute_batch(query, ctx, morsel_size)
                else:
                    result = execute(query, ctx)
            except QueryTimeoutError:
                self.obs.record_query(text, ctx.elapsed, rows=None,
                                      timed_out=True)
                raise
        result.stats.epoch = epoch
        result.stats.execution_mode = "batch" if use_batch else "rows"
        if opts.max_rows is not None:
            result.truncate(opts.max_rows)
        if profiler is not None:
            profiler.finish(len(result.rows),
                            result.stats.elapsed_seconds)
            result.profile = profiler.to_plan()
            result.stats.db_hits = result.profile.total_db_hits()
        self.obs.record_query(text, result.stats.elapsed_seconds,
                              len(result.rows))
        return result

    def _route_to_rows(self, query: ast.Query, pinned: Any,
                       epoch: int) -> bool:
        """The 'auto' mode cost consult, memoized per plan + epoch.

        :func:`~repro.cypher.planner.prefer_rows` probes statistics
        (and, for START points, the index itself, bounded); caching
        the verdict on the cached plan keeps the consult off the
        per-run hot path.
        """
        hint = getattr(query, "_route_hint", None)
        if hint is not None and hint[0] == epoch:
            return hint[1]
        prefer = prefer_rows(query, pinned, self.use_index_seek)
        object.__setattr__(query, "_route_hint", (epoch, prefer))
        return prefer

    @staticmethod
    def _shim_positional_timeout(deprecated: tuple[Any, ...],
                                 timeout: float | None) -> float | None:
        if not deprecated:
            return timeout
        if len(deprecated) > 1:
            raise TypeError("run() takes at most one positional "
                            "timeout argument")
        if timeout is not None:
            raise TypeError("timeout passed both positionally and by "
                            "keyword")
        warnings.warn(
            "passing the query timeout positionally is deprecated; "
            "use timeout=... or options=QueryOptions(timeout=...)",
            DeprecationWarning, stacklevel=3)
        return deprecated[0]

    def explain(self, text: str) -> PlanDescription:
        """The structured execution plan, without running the query.

        ``str()`` of the returned tree is the classic text plan.
        """
        from repro.cypher.explain import explain
        pinned = pin_view(self.view)
        query = self.prepare(text, epoch=self._epoch_of(pinned))
        return explain(query, pinned,
                       self.use_index_seek,
                       self.use_cost_based_planner,
                       self.use_reachability_rewrite)

    def profile(self, text: str,
                parameters: Mapping[str, Any] | None = None,
                timeout: float | None = None,
                options: QueryOptions | None = None) -> Result:
        """Run with profiling on; ``result.profile`` holds the tree."""
        opts = QueryOptions.resolve(options, parameters=parameters,
                                    timeout=timeout, profile=True)
        return self.run(text, options=opts)

    def clear_cache(self) -> None:
        self._plan_cache.clear()
        self.evict_epoch_memos()

    def evict_epoch_memos(self) -> None:
        """Drop the cross-run plan and START-candidate memos (cold
        measurements must pay planning and index evaluation again)."""
        self._pattern_plan_memo = {}
        self._start_candidate_memo = {}
        self._pattern_plan_epoch = None
