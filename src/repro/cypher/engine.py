"""The public query-engine facade.

:class:`CypherEngine` binds a graph view, caches parsed queries, and
runs them with an optional time budget — the budget is how the
benchmark harness reproduces the paper's "aborted after 15 minutes"
protocol for the Figure 6 comprehension query.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.cypher import ast
from repro.cypher.evaluator import ExecutionContext
from repro.cypher.executor import execute
from repro.cypher.parser import parse
from repro.cypher.result import Result
from repro.graphdb.view import GraphView


class CypherEngine:
    """Runs Cypher text against one graph view.

    Parameters
    ----------
    view:
        Any :class:`~repro.graphdb.view.GraphView` — the in-memory
        graph or a page-cached disk store.
    default_timeout:
        Seconds allowed per query unless overridden in :meth:`run`;
        ``None`` means unbounded.
    """

    def __init__(self, view: GraphView,
                 default_timeout: float | None = None,
                 use_index_seek: bool = True) -> None:
        self.view = view
        self.default_timeout = default_timeout
        self.use_index_seek = use_index_seek
        self._plan_cache: dict[str, ast.Query] = {}

    def prepare(self, text: str) -> ast.Query:
        """Parse (with caching) without executing."""
        query = self._plan_cache.get(text)
        if query is None:
            query = parse(text)
            self._plan_cache[text] = query
        return query

    def run(self, text: str,
            parameters: Mapping[str, Any] | None = None,
            timeout: float | None = None) -> Result:
        """Execute Cypher text and materialize the result.

        Raises :class:`~repro.errors.QueryTimeoutError` when the time
        budget (``timeout`` or the engine default) is exceeded.
        """
        query = self.prepare(text)
        budget = timeout if timeout is not None else self.default_timeout
        ctx = ExecutionContext(self.view, parameters, budget,
                               use_index_seek=self.use_index_seek)
        return execute(query, ctx)

    def explain(self, text: str) -> str:
        """Describe the execution plan without running the query."""
        from repro.cypher.explain import explain
        return explain(self.prepare(text), self.view,
                       self.use_index_seek)

    def clear_cache(self) -> None:
        self._plan_cache.clear()
