"""Clause pipeline: START / MATCH / WHERE / WITH / RETURN execution.

Rows flow through the clauses as dict bindings; projection (WITH and
RETURN) handles DISTINCT, implicit-grouping aggregation, ORDER BY,
SKIP and LIMIT. Everything is generator-based so a LIMIT can stop an
expensive MATCH early, and the shared
:class:`~repro.cypher.evaluator.ExecutionContext` enforces the query
time budget throughout.
"""

from __future__ import annotations

import functools
import heapq
from typing import Any, Iterable, Iterator, Mapping

from repro.cypher import ast
from repro.cypher.evaluator import ExecutionContext, evaluate
from repro.cypher.matcher import match_clause
from repro.cypher.result import (EdgeRef, NodeRef, PathValue, QueryStats,
                                 Result)
from repro.errors import CypherSemanticError, QueryError


def execute(query: ast.Query, ctx: ExecutionContext) -> Result:
    """Run a parsed query to a materialized result.

    When ``ctx.profiler`` is set (PROFILE execution), every clause
    stage is wrapped in a timed iterator so the profiler sees rows,
    self time and db-hits per physical operator; the unprofiled path
    is untouched.
    """
    rows: Iterator[dict[str, Any]] = iter([{}])
    result: Result | None = None
    profiler = ctx.profiler
    for index, clause in enumerate(query.clauses):
        if isinstance(clause, ast.Start):
            if profiler is not None:
                node = profiler.operator(None, ("start", index), "Start")
                rows = profiler.iterate(node,
                                        _start(clause, rows, ctx, node))
            else:
                rows = _start(clause, rows, ctx)
        elif isinstance(clause, ast.Match):
            if profiler is not None:
                from repro.cypher.explain import describe_pattern
                node = profiler.operator(
                    None, ("match", index),
                    "OptionalMatch" if clause.optional else "Match",
                    pattern=", ".join(describe_pattern(pattern)
                                      for pattern in clause.patterns))
                rows = profiler.iterate(
                    node, match_clause(clause, rows, ctx, node))
            else:
                rows = match_clause(clause, rows, ctx)
        elif isinstance(clause, ast.Where):
            if profiler is not None:
                node = profiler.operator(None, ("filter", index),
                                         "Filter")
                rows = profiler.iterate(
                    node, _where(clause.predicate, rows, ctx))
            else:
                rows = _where(clause.predicate, rows, ctx)
        elif isinstance(clause, ast.With):
            if profiler is not None:
                node = profiler.operator(
                    None, ("with", index),
                    _projection_operator(clause.items),
                    distinct=clause.distinct or None)
                rows = profiler.iterate(node,
                                        _with(clause, rows, ctx, node))
            else:
                rows = _with(clause, rows, ctx)
        elif isinstance(clause, ast.Return):
            if profiler is not None:
                node = profiler.operator(
                    None, ("return", index),
                    _projection_operator(clause.items, clause.star),
                    distinct=clause.distinct or None)
                with profiler.timed(node):
                    result = _return(clause, rows, ctx, node)
                node.rows += len(result.rows)
            else:
                result = _return(clause, rows, ctx)
        else:
            raise CypherSemanticError(f"unsupported clause {clause!r}")
    if result is None:
        # queries ending in WITH: materialize its bindings as the result
        materialized = list(rows)
        columns = sorted({key for row in materialized for key in row})
        data = [tuple(row.get(column) for column in columns)
                for row in materialized]
        result = Result(columns, data)
    result.stats.expansions = ctx.expansions
    result.stats.elapsed_seconds = ctx.elapsed
    result.stats.rows_produced = len(result.rows)
    return result


# --------------------------------------------------------------------------
# START
# --------------------------------------------------------------------------

def _start(clause: ast.Start, rows: Iterator[dict[str, Any]],
           ctx: ExecutionContext,
           plan: Any | None = None) -> Iterator[dict[str, Any]]:
    for row in rows:
        yield from _start_points(clause.points, 0, row, ctx, plan)


def _start_points(points: tuple[ast.StartPoint, ...], index: int,
                  row: dict[str, Any], ctx: ExecutionContext,
                  plan: Any | None = None,
                  ) -> Iterator[dict[str, Any]]:
    if index == len(points):
        yield row
        return
    point = points[index]
    if isinstance(point, ast.IndexStartPoint):
        if point.index_name != "node_auto_index":
            raise CypherSemanticError(
                f"unknown index {point.index_name!r}")
        candidates: Iterable[int] = ctx.index_candidates(point.query)
        operator_name = "NodeByIndexQuery"
    elif point.all_nodes:
        candidates = ctx.view.node_ids()
        operator_name = "AllNodesScan"
    else:
        for node_id in point.ids:
            if not ctx.view.has_node(node_id):
                raise QueryError(f"no node with id {node_id}")
        candidates = point.ids
        operator_name = "NodeById"
    if plan is not None and ctx.profiler is not None:
        operator = ctx.profiler.operator(
            plan, ("point", index), operator_name,
            variable=point.variable,
            query=point.query
            if isinstance(point, ast.IndexStartPoint) else None)
        candidates = ctx.profiler.iterate(operator, candidates,
                                          hits_per_row=1)
    for node_id in candidates:
        ctx.tick()
        extended = dict(row)
        extended[point.variable] = NodeRef(node_id)
        yield from _start_points(points, index + 1, extended, ctx, plan)


# --------------------------------------------------------------------------
# WHERE
# --------------------------------------------------------------------------

def _where(predicate: ast.Expr, rows: Iterator[dict[str, Any]],
           ctx: ExecutionContext) -> Iterator[dict[str, Any]]:
    for row in rows:
        ctx.tick()
        if evaluate(predicate, row, ctx) is True:
            yield row


# --------------------------------------------------------------------------
# Projection (WITH / RETURN)
# --------------------------------------------------------------------------

def _projection_operator(items: tuple[ast.ReturnItem, ...],
                         star: bool = False) -> str:
    aggregated = not star and any(
        ast.contains_aggregate(item.expression) for item in items)
    return "EagerAggregation" if aggregated else "Projection"


def _with(clause: ast.With, rows: Iterator[dict[str, Any]],
          ctx: ExecutionContext,
          plan: Any | None = None) -> Iterator[dict[str, Any]]:
    columns, data = _project(clause.items, clause.distinct, clause.order_by,
                             clause.skip, clause.limit, rows, ctx,
                             star=False, plan=plan)
    for values in data:
        row = dict(zip(columns, values))
        if clause.where is None or evaluate(clause.where, row, ctx) is True:
            yield row


def _return(clause: ast.Return, rows: Iterator[dict[str, Any]],
            ctx: ExecutionContext, plan: Any | None = None) -> Result:
    columns, data = _project(clause.items, clause.distinct, clause.order_by,
                             clause.skip, clause.limit, rows, ctx,
                             star=clause.star, plan=plan)
    return Result(columns, data, QueryStats())


def _project(items: tuple[ast.ReturnItem, ...], distinct: bool,
             order_by: tuple[ast.SortItem, ...],
             skip: ast.Expr | None, limit: ast.Expr | None,
             rows: Iterator[dict[str, Any]], ctx: ExecutionContext,
             star: bool, plan: Any | None = None,
             ) -> tuple[list[str], list[tuple[Any, ...]]]:
    profiler = ctx.profiler if plan is not None else None
    if star:
        materialized = list(rows)
        columns = sorted({key for row in materialized for key in row})
        scoped = [(tuple(row.get(column) for column in columns), row)
                  for row in materialized]
    else:
        columns = _column_names(items)
        if any(ast.contains_aggregate(item.expression) for item in items):
            scoped = _aggregate(items, rows, ctx)
        else:
            scoped = []
            for row in rows:
                ctx.tick()
                values = tuple(evaluate(item.expression, row, ctx)
                               for item in items)
                scoped.append((values, row))
    if distinct:
        if profiler is not None:
            operator = profiler.operator(plan, "distinct", "Distinct")
            with profiler.timed(operator):
                scoped = _distinct(scoped)
            operator.rows += len(scoped)
        else:
            scoped = _distinct(scoped)
    if order_by:
        if profiler is not None:
            operator = profiler.operator(plan, "sort", "Sort")
            with profiler.timed(operator):
                scoped = _order(scoped, columns, order_by, ctx)
            operator.rows += len(scoped)
        else:
            scoped = _order(scoped, columns, order_by, ctx)
    data = [values for values, _scope in scoped]
    if skip is not None:
        data = data[_as_count(skip, ctx, "SKIP"):]
        if profiler is not None:
            profiler.operator(plan, "skip", "Skip").rows += len(data)
    if limit is not None:
        count = _as_count(limit, ctx, "LIMIT")
        data = data[:count]
        if profiler is not None:
            profiler.operator(plan, "limit", "Limit").rows += len(data)
    return columns, data


def _column_names(items: tuple[ast.ReturnItem, ...]) -> list[str]:
    names = []
    for item in items:
        rendered = ast.render_expr(item.expression)
        names.append(item.output_name(rendered))
    return names


def _as_count(expr: ast.Expr, ctx: ExecutionContext, what: str) -> int:
    value = evaluate(expr, {}, ctx)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise CypherSemanticError(f"{what} needs a non-negative integer")
    return value


def _distinct(scoped: list[tuple[tuple[Any, ...], Mapping[str, Any]]],
              ) -> list[tuple[tuple[Any, ...], Mapping[str, Any]]]:
    seen: set[Any] = set()
    unique = []
    for values, scope in scoped:
        key = _hashable(values)
        if key not in seen:
            seen.add(key)
            unique.append((values, scope))
    return unique


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item))
                            for key, item in value.items()))
    return value


class _Descending:
    """Inverts a ``_SortKey``'s order for a DESC sort component."""

    __slots__ = ("key",)

    def __init__(self, key: "_SortKey") -> None:
        self.key = key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.key == other.key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key


def _decorate(scoped: list[tuple[tuple[Any, ...], Mapping[str, Any]]],
              columns: list[str], order_by: tuple[ast.SortItem, ...],
              ctx: ExecutionContext,
              ) -> list[tuple[tuple[Any, ...], int,
                              tuple[tuple[Any, ...], Mapping[str, Any]]]]:
    """Compute each row's full composite sort key exactly once.

    Returns ``(key_tuple, position, entry)`` triples: sorting the
    triples (position breaks ties, so ``entry`` is never compared)
    reproduces the stable multi-pass sort the executor used to do,
    without rebuilding the merged scope and ``_SortKey`` wrappers on
    every comparison.
    """
    decorated = []
    for position, entry in enumerate(scoped):
        values, scope = entry
        merged = dict(scope)
        merged.update(zip(columns, values))
        key = tuple(
            _SortKey(evaluate(item.expression, merged, ctx))
            if item.ascending else
            _Descending(_SortKey(evaluate(item.expression, merged, ctx)))
            for item in order_by)
        decorated.append((key, position, entry))
    return decorated


def _order(scoped: list[tuple[tuple[Any, ...], Mapping[str, Any]]],
           columns: list[str], order_by: tuple[ast.SortItem, ...],
           ctx: ExecutionContext,
           ) -> list[tuple[tuple[Any, ...], Mapping[str, Any]]]:
    decorated = _decorate(scoped, columns, order_by, ctx)
    decorated.sort()
    return [entry for _key, _position, entry in decorated]


def _top_k(scoped: list[tuple[tuple[Any, ...], Mapping[str, Any]]],
           columns: list[str], order_by: tuple[ast.SortItem, ...],
           ctx: ExecutionContext, count: int,
           ) -> list[tuple[tuple[Any, ...], Mapping[str, Any]]]:
    """The first ``count`` rows of ``_order``, via a bounded heap.

    ``heapq.nsmallest`` over the same decorated triples returns
    exactly ``sorted(decorated)[:count]`` (the position tiebreak keeps
    ties in input order), so ORDER BY + LIMIT can skip the full sort
    without changing which tied rows survive.
    """
    if count <= 0:
        return []
    decorated = _decorate(scoped, columns, order_by, ctx)
    return [entry for _key, _position, entry
            in heapq.nsmallest(count, decorated)]


@functools.total_ordering
class _SortKey:
    """Total order over heterogeneous values; None sorts last."""

    __slots__ = ("rank", "value")

    _RANKS = {bool: 0, int: 1, float: 1, str: 2}

    def __init__(self, value: Any) -> None:
        if value is None:
            self.rank = 9
            self.value: Any = 0
        elif isinstance(value, NodeRef):
            self.rank = 3
            self.value = value.id
        elif isinstance(value, EdgeRef):
            self.rank = 4
            self.value = value.id
        elif isinstance(value, PathValue):
            self.rank = 6
            self.value = (len(value),
                          tuple(node.id for node in value.nodes))
        elif isinstance(value, (list, tuple)):
            self.rank = 5
            self.value = tuple(_SortKey(item) for item in value)
        else:
            self.rank = self._RANKS.get(type(value), 8)
            self.value = value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _SortKey) and self.rank == other.rank
                and self.value == other.value)

    def __lt__(self, other: "_SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.value < other.value


def _sort_key(value: Any) -> _SortKey:
    return _SortKey(value)


# --------------------------------------------------------------------------
# Aggregation (implicit grouping, as Cypher does)
# --------------------------------------------------------------------------

def _aggregate(items: tuple[ast.ReturnItem, ...],
               rows: Iterator[dict[str, Any]], ctx: ExecutionContext,
               ) -> list[tuple[tuple[Any, ...], Mapping[str, Any]]]:
    grouping_positions = [index for index, item in enumerate(items)
                          if not ast.contains_aggregate(item.expression)]
    groups: dict[Any, tuple[tuple[Any, ...], list[dict[str, Any]]]] = {}
    order: list[Any] = []
    for row in rows:
        ctx.tick()
        key_values = tuple(evaluate(items[index].expression, row, ctx)
                           for index in grouping_positions)
        key = _hashable(key_values)
        if key not in groups:
            groups[key] = (key_values, [])
            order.append(key)
        groups[key][1].append(row)
    if not groups and not grouping_positions:
        # aggregates over an empty input still produce one row
        groups[()] = ((), [])
        order.append(())
    scoped = []
    for key in order:
        key_values, group_rows = groups[key]
        key_iter = iter(key_values)
        values = []
        for index, item in enumerate(items):
            if index in grouping_positions:
                values.append(next(key_iter))
            else:
                values.append(_eval_aggregate(item.expression, group_rows,
                                              ctx))
        representative = group_rows[0] if group_rows else {}
        scoped.append((tuple(values), representative))
    return scoped


def _eval_aggregate(expr: ast.Expr, rows: list[dict[str, Any]],
                    ctx: ExecutionContext) -> Any:
    if isinstance(expr, ast.CountStar):
        return len(rows)
    if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
        return _apply_aggregate(expr, rows, ctx)
    if isinstance(expr, ast.Binary):
        left = _eval_aggregate(expr.left, rows, ctx)
        right = _eval_aggregate(expr.right, rows, ctx)
        return evaluate(ast.Binary(expr.op, ast.Literal(left),
                                   ast.Literal(right)), {}, ctx)
    if isinstance(expr, ast.Unary):
        inner = _eval_aggregate(expr.operand, rows, ctx)
        return evaluate(ast.Unary(expr.op, ast.Literal(inner)), {}, ctx)
    # group-constant sub-expression
    return evaluate(expr, rows[0] if rows else {}, ctx)


def _apply_aggregate(call: ast.FunctionCall, rows: list[dict[str, Any]],
                     ctx: ExecutionContext) -> Any:
    if len(call.args) != 1:
        raise CypherSemanticError(
            f"{call.name}() takes exactly one argument")
    raw = [evaluate(call.args[0], row, ctx) for row in rows]
    values = [value for value in raw if value is not None]
    if call.distinct:
        seen: set[Any] = set()
        unique = []
        for value in values:
            key = _hashable(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique
    name = call.name
    if name == "count":
        return len(values)
    if name == "collect":
        return values
    if name == "sum":
        return sum(values) if values else 0
    if name == "min":
        return min(values, key=_sort_key) if values else None
    if name == "max":
        return max(values, key=_sort_key) if values else None
    if name == "avg":
        return sum(values) / len(values) if values else None
    raise CypherSemanticError(f"unknown aggregate {name}()")
