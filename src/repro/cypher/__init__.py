"""A Cypher query language engine for the property-graph substrate.

Implements the dialect the paper's queries use (Figures 3–6, Table 6):

* legacy ``START var=node:node_auto_index('lucene query')`` clauses,
* ``MATCH`` with node labels, inline property maps, typed and
  multi-typed relationships, direction arrows and variable-length
  (``*``/``*min..max``) relationships,
* ``WHERE`` with boolean/comparison expressions, property access and
  *pattern predicates* (``... AND direct -[:calls*]-> writer``),
* ``WITH`` / ``RETURN`` (optionally ``DISTINCT``) with aliases and
  implicit-grouping aggregates, ``ORDER BY``, ``SKIP``, ``LIMIT``.

Variable-length relationships use Cypher's real semantics — per-match
relationship uniqueness and *path enumeration* — which is what makes
the paper's Figure 6 transitive closure intractable in Cypher while
the embedded traversal (:mod:`repro.graphdb.traversal`) answers the
same question in linear time. The executor therefore supports a
time budget (:class:`~repro.errors.QueryTimeoutError`), matching the
paper's "aborted after 15 minutes" protocol.

Queries are planned cost-based before execution
(:mod:`repro.cypher.planner`): anchors and expansion order are costed
against live :class:`~repro.graphdb.stats.GraphStatistics`, WHERE
equality conjuncts are pushed into the match, and var-length patterns
whose output is endpoint-distinct are rewritten to visited-set BFS
reachability — a semantics-preserving escape from the Figure 6
blow-up, gated by ``CypherEngine(use_reachability_rewrite=...)`` (and
per query via ``QueryOptions``) so the paper's pathology remains
reproducible. Compiled plans live in a bounded LRU keyed on the
statistics epoch (:mod:`repro.cypher.plan_cache`).

Quick start::

    from repro.cypher import CypherEngine

    engine = CypherEngine(graph)
    result = engine.run(
        "START n=node:node_auto_index('short_name: pci_read_bases') "
        "MATCH n -[:calls*]-> m RETURN distinct m")
    for row in result:
        print(row["m"])
"""

from repro.cypher.batch import (DEFAULT_MORSEL_SIZE, RowBatch,
                                batch_supported)
from repro.cypher.engine import CypherEngine
from repro.cypher.options import QueryOptions
from repro.cypher.parser import parse
from repro.cypher.plan import PlanDescription
from repro.cypher.result import EdgeRef, NodeRef, PathValue, Result

__all__ = ["CypherEngine", "DEFAULT_MORSEL_SIZE", "EdgeRef", "NodeRef",
           "PathValue", "PlanDescription", "QueryOptions", "Result",
           "RowBatch", "batch_supported", "parse"]
