"""EXPLAIN: describe how a query would execute, without running it.

The paper's Section 6.1 diagnosis ("suboptimal graph explorations
being chosen by the Cypher query language") is exactly the kind of
problem a plan description surfaces. :func:`explain` walks the parsed
clauses and reports, per MATCH pattern, which node anchors the search
and how its candidates are sourced (bound variable, auto-index seek,
label scan, or an all-nodes scan), plus where variable-length
expansions — the path-enumeration hazards — sit.
"""

from __future__ import annotations

from repro.cypher import ast
from repro.cypher.matcher import _pick_anchor, anchor_strategy
from repro.cypher.parser import parse
from repro.graphdb.view import GraphView


def explain(text_or_query: str | ast.Query, view: GraphView,
            use_index_seek: bool = True) -> str:
    """A human-readable execution plan for a query."""
    query = parse(text_or_query) if isinstance(text_or_query, str) \
        else text_or_query
    indexed_keys = tuple(getattr(view.indexes, "auto_index_keys", ()))
    known: set[str] = set()
    lines: list[str] = []
    for clause in query.clauses:
        if isinstance(clause, ast.Start):
            for point in clause.points:
                if isinstance(point, ast.IndexStartPoint):
                    lines.append(f"START {point.variable}: index query "
                                 f"{point.query!r}")
                else:
                    what = "all nodes" if point.all_nodes \
                        else f"ids {list(point.ids)}"
                    lines.append(f"START {point.variable}: {what}")
                known.add(point.variable)
        elif isinstance(clause, ast.Match):
            keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
            for pattern in clause.patterns:
                lines.append(f"{keyword} {_describe_pattern(pattern)}")
                if pattern.shortest:
                    lines.append("  strategy: BFS shortest path "
                                 f"({pattern.shortest})")
                else:
                    anchor = _pick_anchor_known(pattern, known)
                    strategy, detail = anchor_strategy(
                        pattern.nodes[anchor], known, indexed_keys,
                        use_index_seek)
                    suffix = f" on {detail}" if detail else ""
                    lines.append(f"  anchor: node {anchor} via "
                                 f"{strategy}{suffix}")
                    for index, rel in enumerate(pattern.rels):
                        if rel.var_length:
                            bound = ("unbounded" if rel.max_hops is None
                                     else f"max {rel.max_hops}")
                            lines.append(
                                f"  warning: rel {index} is "
                                f"variable-length ({bound}) — path "
                                f"enumeration may explode")
                known.update(pattern.variables())
        elif isinstance(clause, ast.Where):
            predicates = _count_pattern_predicates(clause.predicate)
            note = (f" ({predicates} pattern predicate"
                    f"{'s' if predicates != 1 else ''})"
                    if predicates else "")
            lines.append(f"WHERE filter{note}")
        elif isinstance(clause, ast.With):
            lines.append(_describe_projection("WITH", clause.items,
                                              clause.distinct))
            known = {item.output_name(ast.render_expr(item.expression))
                     for item in clause.items}
        elif isinstance(clause, ast.Return):
            lines.append(_describe_projection(
                "RETURN", clause.items, clause.distinct, clause.star))
    return "\n".join(lines)


def _pick_anchor_known(pattern: ast.Pattern, known: set[str]) -> int:
    """The matcher's anchor choice, evaluated against known variables."""
    fake_row = {name: object() for name in known}
    return _pick_anchor(pattern, fake_row)


def _describe_pattern(pattern: ast.Pattern) -> str:
    parts = []
    if pattern.path_variable:
        parts.append(f"{pattern.path_variable} = ")
    for index, node in enumerate(pattern.nodes):
        label = ":".join(node.labels)
        name = node.variable or ""
        inner = f"{name}{':' + label if label else ''}"
        parts.append(f"({inner})")
        if index < len(pattern.rels):
            rel = pattern.rels[index]
            types = "|".join(rel.types)
            star = "*" if rel.var_length else ""
            arrow_left = "<-" if rel.direction == "in" else "-"
            arrow_right = "->" if rel.direction == "out" else "-"
            rel_name = rel.variable or ""
            body = f"[{rel_name}{':' + types if types else ''}{star}]"
            parts.append(f"{arrow_left}{body}{arrow_right}")
    return "".join(parts)


def _describe_projection(keyword: str, items, distinct: bool,
                         star: bool = False) -> str:
    if star:
        body = "*"
    else:
        body = ", ".join(ast.render_expr(item.expression)
                         for item in items)
    aggregated = any(ast.contains_aggregate(item.expression)
                     for item in items)
    notes = []
    if distinct:
        notes.append("distinct")
    if aggregated:
        notes.append("aggregate")
    suffix = f" ({', '.join(notes)})" if notes else ""
    return f"{keyword} {body}{suffix}"


def _count_pattern_predicates(expr: ast.Expr) -> int:
    if isinstance(expr, ast.PatternPredicate):
        return 1
    if isinstance(expr, ast.Unary):
        return _count_pattern_predicates(expr.operand)
    if isinstance(expr, ast.Binary):
        return (_count_pattern_predicates(expr.left)
                + _count_pattern_predicates(expr.right))
    return 0
