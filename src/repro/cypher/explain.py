"""EXPLAIN: describe how a query would execute, without running it.

The paper's Section 6.1 diagnosis ("suboptimal graph explorations
being chosen by the Cypher query language") is exactly the kind of
problem a plan description surfaces. :func:`explain` walks the parsed
clauses into a :class:`~repro.cypher.plan.PlanDescription` operator
tree and reports, per MATCH pattern, which node anchors the search and
how its candidates are sourced (bound variable, auto-index seek, label
scan, or an all-nodes scan), plus where variable-length expansions —
the path-enumeration hazards — sit. Each operator carries the legacy
explain text line(s), so ``str(plan)`` reproduces the historical
output; ``PROFILE`` execution produces the same operator names
annotated with measured rows/time/db-hits.
"""

from __future__ import annotations

from repro.cypher import ast
from repro.cypher.matcher import _pick_anchor, anchor_strategy
from repro.cypher.parser import parse
from repro.cypher.plan import ANCHOR_OPERATORS, PlanDescription
from repro.cypher.planner import plan_pattern
from repro.graphdb.view import GraphView


def explain(text_or_query: str | ast.Query, view: GraphView,
            use_index_seek: bool = True,
            use_cost_based_planner: bool = True,
            use_reachability_rewrite: bool = True) -> PlanDescription:
    """A structured (and printable) execution plan for a query."""
    query = parse(text_or_query) if isinstance(text_or_query, str) \
        else text_or_query
    indexed_keys = tuple(getattr(view.indexes, "auto_index_keys", ()))
    known: set[str] = set()
    clauses: list[PlanDescription] = []
    for clause in query.clauses:
        if isinstance(clause, ast.Start):
            clauses.append(_explain_start(clause, view))
            known.update(point.variable for point in clause.points)
        elif isinstance(clause, ast.Match):
            clauses.append(_explain_match(clause, view, known,
                                          indexed_keys, use_index_seek,
                                          use_cost_based_planner,
                                          use_reachability_rewrite))
            for pattern in clause.patterns:
                known.update(pattern.variables())
        elif isinstance(clause, ast.Where):
            predicates = _count_pattern_predicates(clause.predicate)
            note = (f" ({predicates} pattern predicate"
                    f"{'s' if predicates != 1 else ''})"
                    if predicates else "")
            clauses.append(PlanDescription(
                "Filter", args={"pattern_predicates": predicates},
                text=f"WHERE filter{note}"))
        elif isinstance(clause, ast.With):
            clauses.append(_explain_projection(
                "WITH", clause.items, clause.distinct))
            known = {item.output_name(ast.render_expr(item.expression))
                     for item in clause.items}
        elif isinstance(clause, ast.Return):
            clauses.append(_explain_projection(
                "RETURN", clause.items, clause.distinct, clause.star))
    return PlanDescription("Query", children=tuple(clauses))


def _explain_start(clause: ast.Start,
                   view: GraphView) -> PlanDescription:
    points = []
    for point in clause.points:
        if isinstance(point, ast.IndexStartPoint):
            points.append(PlanDescription(
                "NodeByIndexQuery",
                args={"variable": point.variable, "query": point.query},
                estimated_rows=_safe_count(
                    lambda: view.indexes.query(point.query)),
                text=f"START {point.variable}: index query "
                     f"{point.query!r}"))
        elif point.all_nodes:
            points.append(PlanDescription(
                "AllNodesScan", args={"variable": point.variable},
                estimated_rows=_safe_count(view.node_ids),
                text=f"START {point.variable}: all nodes"))
        else:
            points.append(PlanDescription(
                "NodeById",
                args={"variable": point.variable,
                      "ids": list(point.ids)},
                estimated_rows=len(point.ids),
                text=f"START {point.variable}: ids {list(point.ids)}"))
    return PlanDescription("Start", children=tuple(points))


def _explain_match(clause: ast.Match, view: GraphView, known: set[str],
                   indexed_keys: tuple[str, ...],
                   use_index_seek: bool,
                   use_cost_based_planner: bool = True,
                   use_reachability_rewrite: bool = True,
                   ) -> PlanDescription:
    keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
    children = []
    for pattern in clause.patterns:
        pattern_text = f"{keyword} {describe_pattern(pattern)}"
        if pattern.shortest:
            children.append(PlanDescription(
                "ShortestPath", args={"mode": pattern.shortest},
                text=f"{pattern_text}\n  strategy: BFS shortest path "
                     f"({pattern.shortest})"))
            continue
        step_estimates: dict[int, float] = {}
        anchor_estimate: int | None = None
        if use_cost_based_planner:
            costed = plan_pattern(pattern, known, view, use_index_seek)
            anchor = costed.anchor
            strategy, detail = costed.strategy, costed.detail
            anchor_estimate = int(costed.anchor_estimate)
            step_estimates = {
                rel_index: estimate for (rel_index, _, _), estimate
                in zip(costed.steps, costed.step_estimates)}
        else:
            anchor = _pick_anchor_known(pattern, known)
            strategy, detail = anchor_strategy(
                pattern.nodes[anchor], known, indexed_keys,
                use_index_seek)
        suffix = f" on {detail}" if detail else ""
        expands = []
        for index, rel in enumerate(pattern.rels):
            estimate = step_estimates.get(index)
            estimated = None if estimate is None \
                else int(min(estimate, 2**62))
            reachable = rel.reachability and use_reachability_rewrite
            if rel.var_length:
                bound = ("unbounded" if rel.max_hops is None
                         else f"max {rel.max_hops}")
                if reachable:
                    note = (f"  rel {index} is variable-length "
                            f"({bound}) — runs as BFS reachability "
                            "(endpoint-distinct)")
                else:
                    note = (f"  warning: rel {index} is "
                            f"variable-length ({bound}) — path "
                            "enumeration may explode")
                expands.append(PlanDescription(
                    "VarLengthExpand",
                    args={"types": "|".join(rel.types) or None,
                          "direction": rel.direction,
                          "mode": "reachability"
                          if reachable else None},
                    estimated_rows=estimated,
                    text=note))
            else:
                expands.append(PlanDescription(
                    "Expand",
                    args={"types": "|".join(rel.types) or None,
                          "direction": rel.direction},
                    estimated_rows=estimated))
        anchor_text = (f"{pattern_text}\n  anchor: node {anchor} via "
                       f"{strategy}{suffix}")
        if anchor_estimate is not None:
            anchor_text += f"\n  estimated rows: {anchor_estimate}"
        children.append(PlanDescription(
            ANCHOR_OPERATORS[strategy],
            args={"variable": pattern.nodes[anchor].variable,
                  "on": detail or None},
            children=tuple(expands),
            estimated_rows=anchor_estimate if anchor_estimate is not None
            else _estimate_anchor(
                view, pattern.nodes[anchor], strategy, indexed_keys),
            text=anchor_text))
    return PlanDescription("OptionalMatch" if clause.optional
                           else "Match", children=tuple(children))


def _explain_projection(keyword: str, items: tuple[ast.ReturnItem, ...],
                        distinct: bool,
                        star: bool = False) -> PlanDescription:
    if star:
        body = "*"
    else:
        body = ", ".join(ast.render_expr(item.expression)
                         for item in items)
    aggregated = not star and any(
        ast.contains_aggregate(item.expression) for item in items)
    notes = []
    if distinct:
        notes.append("distinct")
    if aggregated:
        notes.append("aggregate")
    suffix = f" ({', '.join(notes)})" if notes else ""
    children = (PlanDescription("Distinct"),) if distinct else ()
    return PlanDescription(
        "EagerAggregation" if aggregated else "Projection",
        args={"items": body, "distinct": distinct or None},
        children=children,
        text=f"{keyword} {body}{suffix}")


def _estimate_anchor(view: GraphView, node: ast.NodePattern,
                     strategy: str,
                     indexed_keys: tuple[str, ...]) -> int | None:
    if strategy == "bound":
        return 1
    if strategy == "index-seek":
        for key, expr in node.properties:
            if key in indexed_keys and isinstance(expr, ast.Literal) \
                    and expr.value is not None:
                return _safe_count(
                    lambda: view.indexes.lookup(key, expr.value))
    if strategy == "label-scan":
        label_count = getattr(view.indexes, "label_count", None)
        if label_count is not None:
            try:
                return label_count(node.labels[0])
            except Exception:
                return None
        return None
    if strategy == "all-nodes":
        return _safe_count(view.node_ids)
    return None


def _safe_count(source) -> int | None:
    try:
        return sum(1 for _ in source())
    except Exception:
        return None


def _pick_anchor_known(pattern: ast.Pattern, known: set[str]) -> int:
    """The matcher's anchor choice, evaluated against known variables."""
    fake_row = {name: object() for name in known}
    return _pick_anchor(pattern, fake_row)


def describe_pattern(pattern: ast.Pattern) -> str:
    """Render a MATCH pattern back to (normalized) Cypher text."""
    parts = []
    if pattern.path_variable:
        parts.append(f"{pattern.path_variable} = ")
    for index, node in enumerate(pattern.nodes):
        label = ":".join(node.labels)
        name = node.variable or ""
        inner = f"{name}{':' + label if label else ''}"
        parts.append(f"({inner})")
        if index < len(pattern.rels):
            rel = pattern.rels[index]
            types = "|".join(rel.types)
            star = "*" if rel.var_length else ""
            arrow_left = "<-" if rel.direction == "in" else "-"
            arrow_right = "->" if rel.direction == "out" else "-"
            rel_name = rel.variable or ""
            body = f"[{rel_name}{':' + types if types else ''}{star}]"
            parts.append(f"{arrow_left}{body}{arrow_right}")
    return "".join(parts)


# back-compat alias for the pre-redesign private name
_describe_pattern = describe_pattern


def _count_pattern_predicates(expr: ast.Expr) -> int:
    if isinstance(expr, ast.PatternPredicate):
        return 1
    if isinstance(expr, ast.Unary):
        return _count_pattern_predicates(expr.operand)
    if isinstance(expr, ast.Binary):
        return (_count_pattern_predicates(expr.left)
                + _count_pattern_predicates(expr.right))
    return 0
