"""Tokenizer for the Cypher dialect.

Keywords are recognized case-insensitively at the parser level (they
come out of the lexer as plain identifiers). Arrows are *not* fused
here — ``-[``, ``]->`` and friends are assembled by the parser from
punctuation tokens, which keeps the lexer free of the minus-sign
ambiguity (``a - b`` vs ``a -[:t]-> b``).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator

from repro.errors import CypherSyntaxError

# token kinds
IDENT = "ident"
INT = "int"
FLOAT = "float"
STRING = "string"
PUNCT = "punct"
PARAM = "param"
EOF = "eof"

#: multi-char punctuation, longest first so the scanner is greedy.
_PUNCTUATION = ("<=", ">=", "<>", "!=", "..", "=~",
                "(", ")", "[", "]", "{", "}",
                ",", ":", ".", "|", "*", "=", "<", ">", "+", "-", "/",
                "%", "^", ";")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<float>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*|`[^`]+`)
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTUATION) + r""")
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'",
            '"': '"', "0": "\0"}


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str
    text: str
    value: object
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.text.upper() == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _unescape(text: str) -> str:
    body = text[1:-1]

    def replace(match: re.Match[str]) -> str:
        char = match.group(1)
        return _ESCAPES.get(char, char)

    return re.sub(r"\\(.)", replace, body)


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; a final EOF token carries the end position."""
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise CypherSyntaxError(
                f"unexpected character {text[position]!r}",
                line, position - line_start + 1)
        kind = match.lastgroup or ""
        lexeme = match.group()
        column = position - line_start + 1
        if kind in ("ws", "comment"):
            newlines = lexeme.count("\n")
            if newlines:
                line += newlines
                line_start = position + lexeme.rfind("\n") + 1
        elif kind == FLOAT:
            yield Token(FLOAT, lexeme, float(lexeme), line, column)
        elif kind == INT:
            yield Token(INT, lexeme, int(lexeme), line, column)
        elif kind == STRING:
            yield Token(STRING, lexeme, _unescape(lexeme), line, column)
        elif kind == PARAM:
            yield Token(PARAM, lexeme, lexeme[1:], line, column)
        elif kind == IDENT:
            name = lexeme[1:-1] if lexeme.startswith("`") else lexeme
            yield Token(IDENT, name, name, line, column)
        else:
            yield Token(PUNCT, lexeme, lexeme, line, column)
        position = match.end()
    yield Token(EOF, "", None, line, position - line_start + 1)
