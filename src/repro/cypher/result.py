"""Query results and graph entity references.

Rows hold :class:`NodeRef`/:class:`EdgeRef` wrappers rather than bare
ints so that callers (and the executor's type checks) can tell a node
apart from an integer property value.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator

from repro.errors import QueryError

#: Version stamp on every serialized result payload. Bump when the
#: wire shape below changes incompatibly; readers refuse versions they
#: do not know instead of misdecoding rows.
RESULT_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class NodeRef:
    """Reference to a node in the queried graph."""

    id: int

    def __repr__(self) -> str:
        return f"Node({self.id})"


@dataclasses.dataclass(frozen=True)
class EdgeRef:
    """Reference to a relationship in the queried graph."""

    id: int

    def __repr__(self) -> str:
        return f"Rel({self.id})"


@dataclasses.dataclass(frozen=True)
class PathValue:
    """A bound path: alternating nodes and relationships.

    ``len(path)`` is the hop count, matching Cypher's ``length()``.
    """

    nodes: tuple[NodeRef, ...]
    edges: tuple[EdgeRef, ...]

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def start(self) -> NodeRef:
        return self.nodes[0]

    @property
    def end(self) -> NodeRef:
        return self.nodes[-1]

    def __repr__(self) -> str:
        return f"Path({len(self.edges)} hops, {self.nodes[0]}" + \
            (f"->{self.nodes[-1]})" if len(self.nodes) > 1 else ")")


@dataclasses.dataclass
class QueryStats:
    """Execution counters, exposed for the benchmark harness."""

    rows_produced: int = 0
    expansions: int = 0
    elapsed_seconds: float = 0.0
    #: total store accesses measured by PROFILE (0 when not profiled)
    db_hits: int = 0
    #: True when QueryOptions.max_rows cut the result short
    truncated: bool = False
    #: statistics epoch of the snapshot the query was planned *and*
    #: executed against (0 for immutable stores). The concurrency
    #: harness asserts plan/execution epoch agreement with this.
    epoch: int = 0
    #: which engine ran the query: 'rows' (generator pipeline) or
    #: 'batch' (vectorized morsel execution)
    execution_mode: str = "rows"
    #: shard ids that served this query (None when the query did not
    #: pass through the scatter/gather router; omitted from the wire
    #: payload in that case, so unsharded payloads are unchanged)
    shards: list[int] | None = None


def encode_value(value: Any) -> Any:
    """One row cell as a JSON-compatible value.

    Graph references become tagged objects (``{"@node": id}``,
    ``{"@rel": id}``, ``{"@path": {...}}``) so a decoder can tell a
    node apart from an integer property; plain scalars pass through.
    """
    if isinstance(value, NodeRef):
        return {"@node": value.id}
    if isinstance(value, EdgeRef):
        return {"@rel": value.id}
    if isinstance(value, PathValue):
        return {"@path": {"nodes": [node.id for node in value.nodes],
                          "edges": [edge.id for edge in value.edges]}}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise QueryError(
        f"cannot serialize result value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "@node" in value:
            return NodeRef(value["@node"])
        if "@rel" in value:
            return EdgeRef(value["@rel"])
        if "@path" in value:
            return PathValue(
                nodes=tuple(NodeRef(node)
                            for node in value["@path"]["nodes"]),
                edges=tuple(EdgeRef(edge)
                            for edge in value["@path"]["edges"]))
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


class Result:
    """Materialized query result: named columns and a list of rows.

    When the query ran under ``PROFILE`` (or
    ``QueryOptions(profile=True)``), :attr:`profile` holds the
    measured :class:`~repro.cypher.plan.PlanDescription` tree.
    """

    def __init__(self, columns: list[str], rows: list[tuple[Any, ...]],
                 stats: QueryStats | None = None) -> None:
        self.columns = columns
        self.rows = rows
        self.stats = stats or QueryStats(rows_produced=len(rows))
        self.profile: Any | None = None

    def truncate(self, max_rows: int) -> None:
        """Keep only the first ``max_rows`` rows (QueryOptions)."""
        if max_rows < 0:
            raise QueryError("max_rows must be >= 0")
        if len(self.rows) > max_rows:
            self.rows = self.rows[:max_rows]
            self.stats.rows_produced = len(self.rows)
            self.stats.truncated = True

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def __bool__(self) -> bool:
        return bool(self.rows)

    def value(self, column: str | int = 0) -> Any:
        """The single value of the first row (convenience accessor)."""
        if not self.rows:
            raise QueryError("result is empty")
        index = column if isinstance(column, int) \
            else self.columns.index(column)
        return self.rows[0][index]

    def values(self, column: str | int = 0) -> list[Any]:
        """One column of all rows."""
        index = column if isinstance(column, int) \
            else self.columns.index(column)
        return [row[index] for row in self.rows]

    def single(self) -> dict[str, Any]:
        """The only row, as a dict; raises unless exactly one row."""
        if len(self.rows) != 1:
            raise QueryError(
                f"expected exactly one row, got {len(self.rows)}")
        return dict(zip(self.columns, self.rows[0]))

    # -- canonical wire payload (ResultPayload) ------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical serialized form of a result.

        Every JSON-producing surface — the HTTP tier, ``frappe serve``
        stdin mode, the CLI ``--json`` flag — emits exactly this
        shape; :meth:`from_dict` rebuilds an equivalent
        :class:`Result` on the other end.
        """
        stats = dataclasses.asdict(self.stats)
        if stats.get("shards") is None:
            # keep unsharded payloads byte-identical to pre-shard wire
            del stats["shards"]
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "columns": list(self.columns),
            "rows": [[encode_value(value) for value in row]
                     for row in self.rows],
            "stats": stats,
            "profile": self.profile.to_dict()
            if self.profile is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Result":
        """Rebuild a result serialized by :meth:`to_dict`.

        Raises :class:`~repro.errors.QueryError` on a payload whose
        ``schema_version`` this reader does not understand.
        """
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise QueryError(
                f"unsupported result schema_version {version!r} "
                f"(this reader speaks {RESULT_SCHEMA_VERSION})")
        stats = QueryStats(**payload.get("stats", {}))
        result = cls(list(payload["columns"]),
                     [tuple(decode_value(value) for value in row)
                      for row in payload["rows"]],
                     stats)
        profile = payload.get("profile")
        if profile is not None:
            from repro.cypher.plan import PlanDescription
            result.profile = PlanDescription.from_dict(profile)
        return result

    def __repr__(self) -> str:
        return f"Result(columns={self.columns}, rows={len(self.rows)})"
