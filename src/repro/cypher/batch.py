"""Vectorized batch-at-a-time clause execution (morsel-driven).

The row executor (:mod:`repro.cypher.executor`) pipes one ``dict``
binding per row through a stack of generators; every MATCH step copies
the whole row dict per expansion, and every ``next()`` pays generator
resumption. This module executes the same clause pipeline over
:class:`RowBatch` morsels instead: slot-addressed columns over flat
Python lists, with lightweight :class:`BatchRow` mapping views so the
expression evaluator, the matcher's expansion kernels and the
aggregation code run unchanged — the semantics (and the produced row
*order*) are identical to row mode by construction, because the batch
kernels reuse the matcher's own anchor/expand primitives and process
states in the same lexicographic order the row executor's nested
loops visit them.

Batch kernels exist for the hot operators: START scans/seeks, single
non-OPTIONAL MATCH patterns (including var-length expansion and the
planner's reachability rewrite), WHERE filters, and WITH/RETURN
projection (DISTINCT, implicit-grouping aggregation, ORDER BY — with a
bounded top-K heap when LIMIT is present — SKIP and LIMIT). A clause
with no batch kernel (OPTIONAL MATCH, multi-pattern MATCH,
shortestPath) falls back to the row executor for that clause only:
rows are materialized, the existing generator runs with identical
profiler wiring, and the output is re-batched, so every query still
runs end to end in batch mode.

Morsels keep LIMIT cheap: stages yield batches of at most
``morsel_size`` rows (default :data:`DEFAULT_MORSEL_SIZE`), and the
MATCH kernel expands anchor states in morsel-sized chunks, so a
downstream LIMIT stops pulling after a bounded amount of wasted work —
the same early-exit property the generator pipeline has.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping as MappingView
from typing import Any, Iterator, Mapping

from repro.cypher import ast
from repro.cypher import matcher as _matcher
from repro.cypher.evaluator import (ExecutionContext, compile_expr,
                                    compile_props, evaluate, expr_kernel,
                                    literal_props)
from repro.cypher.executor import (_aggregate, _as_count, _column_names,
                                   _distinct, _order, _projection_operator,
                                   _top_k)
from repro.cypher.matcher import match_clause
from repro.cypher.plan import ANCHOR_OPERATORS
from repro.cypher.result import EdgeRef, NodeRef, QueryStats, Result
from repro.errors import CypherSemanticError, QueryError

__all__ = ["DEFAULT_MORSEL_SIZE", "RowBatch", "BatchRow", "batch_supported",
           "execute_batch"]

#: Default morsel size: rows per batch flowing between operators.
DEFAULT_MORSEL_SIZE = 1024

#: Marks a pattern relationship slot not yet bound during matching.
_UNSET = object()


class RowBatch:
    """A morsel of rows in columnar form.

    ``slots`` maps a variable name to an index into ``columns``; each
    column is a flat list of ``count`` values. Batches are immutable
    once yielded by a stage (builders hand off their lists and start
    fresh ones), so a downstream operator may keep views into a batch
    while upstream processing continues.
    """

    __slots__ = ("slots", "columns", "count")

    def __init__(self, slots: dict[str, int], columns: list[list[Any]],
                 count: int) -> None:
        self.slots = slots
        self.columns = columns
        self.count = count

    @classmethod
    def unit(cls) -> "RowBatch":
        """The pipeline seed: one row with no bindings."""
        return cls({}, [], 1)

    def row_view(self, index: int) -> "BatchRow":
        return BatchRow(self, index)

    def views(self) -> Iterator["BatchRow"]:
        for index in range(self.count):
            yield BatchRow(self, index)

    def row_values(self, index: int, width: int | None = None,
                   ) -> list[Any]:
        """One row's values in slot order, padded to ``width``."""
        values = [column[index] for column in self.columns]
        if width is not None and width > len(values):
            values.extend([None] * (width - len(values)))
        return values

    def __repr__(self) -> str:
        return (f"RowBatch({self.count} rows x "
                f"{len(self.slots)} columns)")


class BatchRow(MappingView):
    """A zero-copy mapping view of one row inside a :class:`RowBatch`.

    The expression evaluator, the matcher and the aggregation helpers
    only need mapping reads (``name in row``, ``row[name]``,
    ``row.get(key)``), so a view avoids materializing a dict per row.
    """

    __slots__ = ("_batch", "_index")

    def __init__(self, batch: RowBatch, index: int) -> None:
        self._batch = batch
        self._index = index

    def __getitem__(self, key: str) -> Any:
        slot = self._batch.slots.get(key)
        if slot is None:
            raise KeyError(key)
        return self._batch.columns[slot][self._index]

    def __contains__(self, key: object) -> bool:
        return key in self._batch.slots

    def __iter__(self) -> Iterator[str]:
        return iter(self._batch.slots)

    def __len__(self) -> int:
        return len(self._batch.slots)


class _Builder:
    """Accumulates rows for one output :class:`RowBatch`."""

    __slots__ = ("slots", "columns", "count", "capacity")

    def __init__(self, slots: dict[str, int], capacity: int) -> None:
        self.slots = slots
        self.columns: list[list[Any]] = [[] for _ in slots]
        self.count = 0
        self.capacity = capacity

    def append(self, values: list[Any]) -> None:
        for column, value in zip(self.columns, values):
            column.append(value)
        self.count += 1

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    def take(self) -> RowBatch:
        batch = RowBatch(self.slots, self.columns, self.count)
        self.columns = [[] for _ in self.slots]
        self.count = 0
        return batch


# --------------------------------------------------------------------------
# Mode selection
# --------------------------------------------------------------------------

def _batchable_match(clause: ast.Match) -> bool:
    """A MATCH the batch kernel handles natively (everything else
    falls back to the row matcher for that clause)."""
    return (len(clause.patterns) == 1 and not clause.optional
            and clause.patterns[0].shortest is None)


def batch_supported(query: ast.Query) -> bool:
    """True when every clause has a native batch kernel (the 'auto'
    execution mode picks batch exactly then; a query needing per-
    clause fallbacks runs faster as a plain generator pipeline)."""
    for clause in query.clauses:
        if isinstance(clause, ast.Match):
            if not _batchable_match(clause):
                return False
        elif not isinstance(clause, (ast.Start, ast.Where, ast.With,
                                     ast.Return)):
            return False
    return True


# --------------------------------------------------------------------------
# Pipeline driver
# --------------------------------------------------------------------------

def execute_batch(query: ast.Query, ctx: ExecutionContext,
                  morsel_size: int = DEFAULT_MORSEL_SIZE) -> Result:
    """Run a parsed query batch-at-a-time to a materialized result.

    Mirrors :func:`repro.cypher.executor.execute` clause for clause —
    same operator names, keys and profiler wiring — so ``PROFILE``
    output lines up across modes (batch operators additionally report
    ``batches``).
    """
    profiler = ctx.profiler
    batches: Iterator[RowBatch] = iter((RowBatch.unit(),))
    result: Result | None = None
    for index, clause in enumerate(query.clauses):
        if isinstance(clause, ast.Start):
            if profiler is not None:
                node = profiler.operator(None, ("start", index), "Start")
                batches = profiler.iterate_batches(
                    node, _start_stage(clause, batches, ctx, morsel_size,
                                       node))
            else:
                batches = _start_stage(clause, batches, ctx, morsel_size)
        elif isinstance(clause, ast.Match) and _batchable_match(clause):
            if profiler is not None:
                from repro.cypher.explain import describe_pattern
                node = profiler.operator(
                    None, ("match", index), "Match",
                    pattern=", ".join(describe_pattern(pattern)
                                      for pattern in clause.patterns))
                batches = profiler.iterate_batches(
                    node, _match_stage(clause, batches, ctx, morsel_size,
                                       node))
            else:
                batches = _match_stage(clause, batches, ctx, morsel_size)
        elif isinstance(clause, ast.Match):
            # no batch kernel: run the row matcher for this clause
            rows = _dict_rows(batches)
            if profiler is not None:
                from repro.cypher.explain import describe_pattern
                node = profiler.operator(
                    None, ("match", index),
                    "OptionalMatch" if clause.optional else "Match",
                    pattern=", ".join(describe_pattern(pattern)
                                      for pattern in clause.patterns))
                rows = profiler.iterate(
                    node, match_clause(clause, rows, ctx, node))
            else:
                rows = match_clause(clause, rows, ctx)
            batches = _rebatch(rows, morsel_size)
        elif isinstance(clause, ast.Where):
            if profiler is not None:
                node = profiler.operator(None, ("filter", index),
                                         "Filter")
                batches = profiler.iterate_batches(
                    node, _filter_stage(clause.predicate, batches, ctx))
            else:
                batches = _filter_stage(clause.predicate, batches, ctx)
        elif isinstance(clause, ast.With):
            if profiler is not None:
                node = profiler.operator(
                    None, ("with", index),
                    _projection_operator(clause.items),
                    distinct=clause.distinct or None)
                batches = profiler.iterate_batches(
                    node, _with_stage(clause, batches, ctx, morsel_size,
                                      node))
            else:
                batches = _with_stage(clause, batches, ctx, morsel_size)
        elif isinstance(clause, ast.Return):
            if profiler is not None:
                node = profiler.operator(
                    None, ("return", index),
                    _projection_operator(clause.items, clause.star),
                    distinct=clause.distinct or None)
                with profiler.timed(node):
                    result = _return_batch(clause, batches, ctx, node)
                node.rows += len(result.rows)
            else:
                result = _return_batch(clause, batches, ctx)
        else:
            raise CypherSemanticError(f"unsupported clause {clause!r}")
    if result is None:
        # queries ending in WITH: materialize its bindings as the result
        views = [view for batch in batches for view in batch.views()]
        columns = sorted({key for view in views for key in view})
        data = [tuple(view.get(column) for column in columns)
                for view in views]
        result = Result(columns, data)
    result.stats.expansions = ctx.expansions
    result.stats.elapsed_seconds = ctx.elapsed
    result.stats.rows_produced = len(result.rows)
    return result


def _views(batches: Iterator[RowBatch]) -> Iterator[BatchRow]:
    for batch in batches:
        for index in range(batch.count):
            yield BatchRow(batch, index)


def _dict_rows(batches: Iterator[RowBatch],
               ) -> Iterator[dict[str, Any]]:
    """Materialize dict rows for a row-mode fallback clause."""
    for batch in batches:
        for index in range(batch.count):
            yield dict(BatchRow(batch, index))


def _rebatch(rows: Iterator[Mapping[str, Any]],
             morsel_size: int) -> Iterator[RowBatch]:
    """Re-batch a row stream; a new batch starts whenever the key set
    changes, so every batch has uniform slots."""
    builder: _Builder | None = None
    names: tuple[str, ...] | None = None
    for row in rows:
        row_names = tuple(row)
        if builder is None or row_names != names:
            if builder is not None and builder.count:
                yield builder.take()
            names = row_names
            builder = _Builder(
                {name: slot for slot, name in enumerate(row_names)},
                morsel_size)
        builder.append([row[name] for name in row_names])
        if builder.full:
            yield builder.take()
    if builder is not None and builder.count:
        yield builder.take()


# --------------------------------------------------------------------------
# START
# --------------------------------------------------------------------------

def _start_stage(clause: ast.Start, batches: Iterator[RowBatch],
                 ctx: ExecutionContext, morsel_size: int,
                 plan: Any | None = None) -> Iterator[RowBatch]:
    for batch in batches:
        slots = dict(batch.slots)
        for point in clause.points:
            if point.variable not in slots:
                slots[point.variable] = len(slots)
        builder = _Builder(slots, morsel_size)
        width = len(slots)
        for index in range(batch.count):
            values = batch.row_values(index, width)
            yield from _start_product(clause.points, 0, values, ctx,
                                      builder, plan)
        if builder.count:
            yield builder.take()


def _start_product(points: tuple[ast.StartPoint, ...], index: int,
                   values: list[Any], ctx: ExecutionContext,
                   builder: _Builder, plan: Any | None,
                   ) -> Iterator[RowBatch]:
    if index == len(points):
        builder.append(list(values))
        if builder.full:
            yield builder.take()
        return
    point = points[index]
    candidates, operator_name = _point_candidates(point, ctx)
    if plan is not None and ctx.profiler is not None:
        operator = ctx.profiler.operator(
            plan, ("point", index), operator_name,
            variable=point.variable,
            query=point.query
            if isinstance(point, ast.IndexStartPoint) else None)
        candidates = ctx.profiler.iterate(operator, candidates,
                                          hits_per_row=1)
    slot = builder.slots[point.variable]
    for node_id in candidates:
        ctx.tick()
        values[slot] = NodeRef(node_id)
        yield from _start_product(points, index + 1, values, ctx,
                                  builder, plan)


def _point_candidates(point: ast.StartPoint, ctx: ExecutionContext,
                      ) -> tuple[Any, str]:
    if isinstance(point, ast.IndexStartPoint):
        if point.index_name != "node_auto_index":
            raise CypherSemanticError(
                f"unknown index {point.index_name!r}")
        return ctx.index_candidates(point.query), "NodeByIndexQuery"
    if point.all_nodes:
        return ctx.view.node_ids(), "AllNodesScan"
    for node_id in point.ids:
        if not ctx.view.has_node(node_id):
            raise QueryError(f"no node with id {node_id}")
    return point.ids, "NodeById"


# --------------------------------------------------------------------------
# MATCH
# --------------------------------------------------------------------------

class _MatchRow(MappingView):
    """The evaluator-visible row during batch pattern expansion: the
    source batch row overlaid with the bindings of one in-flight match
    state (pattern nodes/rels bound so far), without copying either."""

    __slots__ = ("_base", "_node_slots", "_rel_slots", "_bound", "_rels")

    def __init__(self, base: BatchRow,
                 node_slots: Mapping[str, tuple[int, ...]],
                 rel_slots: Mapping[str, tuple[int, ...]],
                 bound: list[int | None], rels: list[Any]) -> None:
        self._base = base
        self._node_slots = node_slots
        self._rel_slots = rel_slots
        self._bound = bound
        self._rels = rels

    def __getitem__(self, key: str) -> Any:
        # the source row wins: the matcher never rebinds a variable
        # that arrived already bound
        if key in self._base:
            return self._base[key]
        for node_index in self._node_slots.get(key, ()):
            node_id = self._bound[node_index]
            if node_id is not None:
                return NodeRef(node_id)
        for rel_index in self._rel_slots.get(key, ()):
            value = self._rels[rel_index]
            if value is not _UNSET:
                return value
        raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        if key in self._base:
            return True
        return (any(self._bound[node_index] is not None
                    for node_index in self._node_slots.get(key, ()))
                or any(self._rels[rel_index] is not _UNSET
                       for rel_index in self._rel_slots.get(key, ())))

    def __iter__(self) -> Iterator[str]:
        yield from self._base
        for key in self._node_slots:
            if key not in self._base and key in self:
                yield key
        for key in self._rel_slots:
            if key not in self._base and key not in self._node_slots \
                    and key in self:
                yield key

    def __len__(self) -> int:
        return sum(1 for _key in self)


class _MatchSetup:
    """Per-(pattern, input-slot-layout) expansion state, computed once
    per MATCH clause and reused for every batch with the same slots
    (anchored queries produce many small batches; redoing plan and
    layout work per batch would swamp them)."""

    __slots__ = ("anchor", "steps", "estimates", "anchor_node",
                 "anchor_op", "node_slots", "rel_slots", "out_slots",
                 "path_slot", "new_node_out", "new_rel_out", "width",
                 "input_width")


def _match_stage(clause: ast.Match, batches: Iterator[RowBatch],
                 ctx: ExecutionContext, morsel_size: int,
                 plan: Any | None = None) -> Iterator[RowBatch]:
    pattern = clause.patterns[0]
    setups: dict[tuple[str, ...], _MatchSetup] = {}
    for batch in batches:
        key = tuple(batch.slots)
        setup = setups.get(key)
        if setup is None:
            setup = _match_setup(pattern, batch.slots, ctx, plan)
            setups[key] = setup
        yield from _match_batch(pattern, batch, ctx, morsel_size, plan,
                                setup)


def _match_setup(pattern: ast.Pattern, slots: Mapping[str, int],
                 ctx: ExecutionContext,
                 plan: Any | None) -> _MatchSetup:
    setup = _MatchSetup()
    profiler = ctx.profiler if plan is not None else None
    if ctx.use_cost_based_planner:
        pattern_plan = _matcher._plan_for(pattern, slots, ctx)
        setup.anchor = pattern_plan.anchor
        setup.steps = _matcher._steps_from_plan(pattern, pattern_plan)
        setup.estimates = {rel_index: estimate
                           for (rel_index, _, _), estimate
                           in zip(pattern_plan.steps,
                                  pattern_plan.step_estimates)}
    else:
        pattern_plan = None
        setup.anchor = _matcher._pick_anchor(pattern, slots)
        setup.steps = _matcher._build_steps(pattern, setup.anchor)
        setup.estimates = None
    setup.anchor_node = pattern.nodes[setup.anchor]
    setup.anchor_op = None
    if profiler is not None:
        if pattern_plan is not None:
            strategy, detail = pattern_plan.strategy, pattern_plan.detail
            anchor_estimate = pattern_plan.anchor_estimate
        else:
            strategy, detail = _matcher.anchor_strategy(
                setup.anchor_node, set(slots),
                tuple(getattr(ctx.view.indexes, "auto_index_keys", ())),
                ctx.use_index_seek)
            anchor_estimate = None
        setup.anchor_op = profiler.operator(
            plan, ("anchor", 0), ANCHOR_OPERATORS[strategy],
            estimated=anchor_estimate,
            variable=setup.anchor_node.variable, on=detail or None)

    node_slots: dict[str, tuple[int, ...]] = {}
    for node_index, node in enumerate(pattern.nodes):
        if node.variable:
            node_slots[node.variable] = \
                node_slots.get(node.variable, ()) + (node_index,)
    rel_slots: dict[str, tuple[int, ...]] = {}
    for rel_index, rel in enumerate(pattern.rels):
        if rel.variable:
            rel_slots[rel.variable] = \
                rel_slots.get(rel.variable, ()) + (rel_index,)
    setup.node_slots = node_slots
    setup.rel_slots = rel_slots

    # output layout: input columns, then newly bound pattern variables
    out_slots = dict(slots)
    for name in pattern.variables():
        if name not in out_slots:
            out_slots[name] = len(out_slots)
    setup.out_slots = out_slots
    setup.path_slot = out_slots[pattern.path_variable] \
        if pattern.path_variable else None
    setup.new_node_out = []
    setup.new_rel_out = []
    for name, slot in out_slots.items():
        if name in slots or name == pattern.path_variable:
            continue
        if name in node_slots:
            setup.new_node_out.append((slot, node_slots[name]))
        elif name in rel_slots:
            setup.new_rel_out.append((slot, rel_slots[name]))
    setup.width = len(out_slots)
    setup.input_width = len(slots)
    return setup


def _match_batch(pattern: ast.Pattern, batch: RowBatch,
                 ctx: ExecutionContext, morsel_size: int,
                 plan: Any | None,
                 setup: _MatchSetup) -> Iterator[RowBatch]:
    """Expand one pattern over one input batch, morsel by morsel.

    Anchor states are drawn lazily and expanded through the step list
    a chunk at a time; each chunk's surviving states append output
    rows in the exact order the row matcher's depth-first nested loops
    would yield them (states are processed in order and expansions
    appended in adjacency order, so the flattened output is the same
    lexicographic sequence).
    """
    if batch.count == 0:
        return
    profiler = ctx.profiler if plan is not None else None
    anchor = setup.anchor
    steps = setup.steps
    estimates = setup.estimates
    anchor_node = setup.anchor_node
    anchor_op = setup.anchor_op
    node_slots = setup.node_slots
    rel_slots = setup.rel_slots

    n_nodes = len(pattern.nodes)
    n_rels = len(pattern.rels)
    no_edges: frozenset[int] = frozenset()

    def anchor_states() -> Iterator[tuple[int, list[int | None],
                                          frozenset[int], list[Any]]]:
        for index in range(batch.count):
            view = batch.row_view(index)
            candidates = _matcher._anchor_candidates(anchor_node, view,
                                                     ctx)
            if profiler is not None:
                candidates = profiler.iterate(anchor_op, candidates,
                                              hits_per_row=1)
            for node_id in candidates:
                if not _matcher._node_ok(anchor_node, node_id, view,
                                         ctx):
                    continue
                bound: list[int | None] = [None] * n_nodes
                bound[anchor] = node_id
                yield index, bound, no_edges, [_UNSET] * n_rels

    path_slot = setup.path_slot
    new_node_out = setup.new_node_out
    new_rel_out = setup.new_rel_out
    width = setup.width
    input_width = setup.input_width
    builder = _Builder(setup.out_slots, morsel_size)

    def run_steps(chunk: list[Any], context: ExecutionContext,
                  prof: Any, parent: Any) -> list[Any]:
        """The per-morsel operator chain: every step over one chunk.

        ``prof``/``parent`` are the profiler wiring for *context* —
        the main profiler with the Match plan node when run inline, a
        task-local profiler with its root as parent when run on a
        worker. Operator keys are identical either way, so task trees
        merge back into the serial tree shape.
        """
        for step in steps:
            if not chunk:
                break
            if prof is not None:
                step_op = prof.operator(
                    parent, ("expand", 0, step.rel_index),
                    "VarLengthExpand" if step.rel.var_length
                    else "Expand",
                    estimated=estimates.get(step.rel_index)
                    if estimates is not None else None,
                    types="|".join(step.rel.types) or None,
                    direction=step.rel.direction,
                    bounds=_matcher._hops_text(step.rel)
                    if step.rel.var_length else None,
                    mode="reachability"
                    if _matcher._use_reachability(step, chunk[0][2],
                                                  context) else None)
                with prof.timed(step_op):
                    chunk = _expand_chunk(step, chunk, batch,
                                          node_slots, rel_slots,
                                          context)
                step_op.rows += len(chunk)
            else:
                chunk = _expand_chunk(step, chunk, batch, node_slots,
                                      rel_slots, context)
        return chunk

    input_columns = batch.columns[:input_width]
    padding = [None] * (width - input_width)

    def assemble(chunk: list[Any], context: ExecutionContext,
                 ) -> list[list[Any]]:
        """Output rows (in state order) for one fully-expanded chunk."""
        rows = []
        for src, bound, _used, rels in chunk:
            values = [column[src] for column in input_columns]
            values += padding
            for slot, node_indexes in new_node_out:
                for node_index in node_indexes:
                    node_id = bound[node_index]
                    if node_id is not None:
                        values[slot] = NodeRef(node_id)
                        break
            for slot, rel_indexes in new_rel_out:
                for rel_index in rel_indexes:
                    value = rels[rel_index]
                    if value is not _UNSET:
                        values[slot] = value
                        break
            if path_slot is not None:
                bound_map = {node_index: node_id for node_index, node_id
                             in enumerate(bound) if node_id is not None}
                rel_map = {rel_index: value for rel_index, value
                           in enumerate(rels) if value is not _UNSET}
                values[path_slot] = _matcher._build_path(
                    pattern, bound_map, rel_map, context)
            rows.append(values)
        return rows

    states = anchor_states()
    buffered: list[list[Any]] = []
    if ctx.parallelism > 1:
        # peek ahead: with a single anchor chunk there is nothing to
        # morsel-parallelize — fall through to the inline loop, where
        # var-length expansion can frontier-parallelize instead
        first = list(itertools.islice(states, morsel_size))
        if first:
            buffered.append(first)
            second = list(itertools.islice(states, morsel_size))
            if second:
                buffered.append(second)
                yield from _parallel_chunks(
                    buffered, states, morsel_size, ctx, profiler, plan,
                    run_steps, assemble, builder)
                if builder.count:
                    yield builder.take()
                return
    while True:
        if buffered:
            chunk = buffered.pop(0)
        else:
            chunk = list(itertools.islice(states, morsel_size))
        if not chunk:
            break
        chunk = run_steps(chunk, ctx, profiler, plan)
        for values in assemble(chunk, ctx):
            builder.append(values)
            if builder.full:
                yield builder.take()
    if builder.count:
        yield builder.take()


class _InlineTask:
    """`spawn` fallback when no serving pool is attached: runs the
    task immediately on the calling thread. Parallel runs without a
    pool therefore execute serially but through the identical
    fork/merge path — the determinism the equivalence suite checks is
    a property of the merge, not of the schedule."""

    __slots__ = ("_result", "_error")

    def __init__(self, fn: Any) -> None:
        try:
            self._result = fn()
            self._error = None
        except BaseException as error:  # noqa: BLE001 - re-raised below
            self._result = None
            self._error = error

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._result


def _parallel_chunks(buffered: list[list[Any]], states: Iterator[Any],
                     morsel_size: int, ctx: ExecutionContext,
                     profiler: Any, plan: Any, run_steps: Any,
                     assemble: Any, builder: "_Builder",
                     ) -> Iterator[RowBatch]:
    """The morsel-driven parallel pipeline driver.

    Anchor chunks are drawn serially on the caller (anchor-scan
    db-hits stay on the main profiler, exactly where serial execution
    charges them) and handed to the shared Executor pool as tasks; at
    most ``ctx.parallelism`` are outstanding. Results are consumed in
    draw order — the deterministic ordered merge — so output rows,
    row order and morsel boundaries are byte-identical to the serial
    loop, and each task's profiler tree / expansion counters fold back
    in that same order.
    """
    from collections import deque

    from repro.obs import QueryProfiler, merge_operator_stats

    parallelism = ctx.parallelism
    spawn = ctx.task_spawner
    if profiler is not None:
        plan.args["workers"] = parallelism

    def run_task(chunk: list[Any], fork: ExecutionContext) -> Any:
        out = run_steps(chunk, fork, fork.profiler, None)
        return assemble(out, fork), fork

    pending: Any = deque()
    drained = False
    while True:
        while not drained and len(pending) < parallelism:
            if buffered:
                chunk = buffered.pop(0)
            else:
                chunk = list(itertools.islice(states, morsel_size))
            if not chunk:
                drained = True
                break
            fork = ctx.fork(QueryProfiler()
                            if profiler is not None else None)
            fn = (lambda c=chunk, f=fork: run_task(c, f))
            pending.append(spawn(fn) if spawn is not None
                           else _InlineTask(fn))
        if not pending:
            return
        rows, fork = pending.popleft().result()
        ctx.absorb(fork)
        if profiler is not None:
            merge_operator_stats(plan, fork.profiler.root)
        for values in rows:
            builder.append(values)
            if builder.full:
                yield builder.take()


def _edge_filter(rel: ast.RelPattern, ctx: ExecutionContext):
    """A ``(edge_id, row, ctx) -> bool`` check for a relationship's
    property map — the compiled restatement of
    :func:`repro.cypher.matcher._edge_props_ok` (same per-key db-hit
    charging, same short-circuit order) — or ``None`` when the map is
    empty. Compiled checks are cached on the AST node, so they live
    with the plan; the interpreted shim serves the ablation."""
    if not rel.properties:
        return None
    if not ctx.use_compiled_kernels:

        def interpreted(edge_id: int, row: Mapping[str, Any],
                        context: ExecutionContext) -> bool:
            return _matcher._edge_props_ok(rel, edge_id, row, context)

        return interpreted
    check = getattr(rel, "_compiled_edge_check", None)
    if check is None:
        literals = literal_props(rel.properties)
        if literals is not None:
            # all-literal map: the wanted values are row-independent,
            # so the per-edge kernel calls disappear entirely
            def check(edge_id: int, row: Mapping[str, Any],
                      context: ExecutionContext) -> bool:
                edge_property = context.view.edge_property
                for key, wanted in literals:
                    context.db_hit()
                    if edge_property(edge_id, key) != wanted:
                        return False
                return True
        else:
            props = compile_props(rel.properties)

            def check(edge_id: int, row: Mapping[str, Any],
                      context: ExecutionContext) -> bool:
                edge_property = context.view.edge_property
                for key, kernel in props:
                    wanted = kernel(row, context)
                    context.db_hit()
                    if edge_property(edge_id, key) != wanted:
                        return False
                return True

        object.__setattr__(rel, "_compiled_edge_check", check)
    return check


def _node_filter(node: ast.NodePattern, ctx: ExecutionContext):
    """A ``(node_id, row, ctx) -> bool`` check mirroring
    :func:`repro.cypher.matcher._node_ok` exactly (prior-binding,
    labels, then the property map — db-hits in that order)."""
    if not ctx.use_compiled_kernels:

        def interpreted(node_id: int, row: Mapping[str, Any],
                        context: ExecutionContext) -> bool:
            return _matcher._node_ok(node, node_id, row, context)

        return interpreted
    check = getattr(node, "_compiled_node_check", None)
    if check is None:
        variable = node.variable
        labels = node.labels
        literals = literal_props(node.properties)
        props = compile_props(node.properties) \
            if literals is None else ()

        def check(node_id: int, row: Mapping[str, Any],
                  context: ExecutionContext) -> bool:
            if variable and variable in row:
                value = row[variable]
                if not isinstance(value, NodeRef) or value.id != node_id:
                    return False
            if labels:
                context.db_hit()
                node_labels = context.view.node_labels(node_id)
                if not all(label in node_labels for label in labels):
                    return False
            if literals is not None:
                for key, wanted in literals:
                    context.db_hit()
                    if context.view.node_property(node_id, key) \
                            != wanted:
                        return False
                return True
            for key, kernel in props:
                wanted = kernel(row, context)
                context.db_hit()
                if context.view.node_property(node_id, key) != wanted:
                    return False
            return True

        object.__setattr__(node, "_compiled_node_check", check)
    return check


def _expand_chunk(step: Any,
                  states: list[tuple[int, list[int | None],
                                     frozenset[int], list[Any]]],
                  batch: RowBatch,
                  node_slots: Mapping[str, tuple[int, ...]],
                  rel_slots: Mapping[str, tuple[int, ...]],
                  ctx: ExecutionContext,
                  ) -> list[tuple[int, list[int | None], frozenset[int],
                                  list[Any]]]:
    """Run one relationship step over a chunk of match states.

    The kernels below are vectorized restatements of the matcher's
    per-row generators (:func:`repro.cypher.matcher._expand_single`
    and friends): adjacency arrives endpoint-resolved in bulk from
    :meth:`ExecutionContext.neighbors`, ticks are charged per
    adjacency list instead of per edge (same totals), and filters that
    the row kernels would evaluate to a constant no-op — empty
    relationship property maps, target nodes with no labels, property
    map or prior binding — are hoisted out of the per-edge loop
    entirely. Expansion order is the adjacency order the row kernels
    iterate in, so output rows stay identical.
    """
    out = []
    rel = step.rel
    target = step.target
    source_index = step.source_index
    rel_index = step.rel_index
    target_index = source_index + (-1 if step.reversed else 1)
    direction = step.direction
    types = rel.types or None
    rel_variable = rel.variable
    has_rel_props = bool(rel.properties)
    plain_target = not target.labels and not target.properties
    target_variable = target.variable
    if rel.var_length:
        target_check = _node_filter(target, ctx)
        for src, bound, used, rels in states:
            view = _MatchRow(batch.row_view(src), node_slots,
                             rel_slots, bound, rels)
            source = bound[source_index]
            if _matcher._use_reachability(step, used, ctx):
                expansions = _expand_reachability_vec(step, source,
                                                      view, ctx)
            else:
                expansions = _expand_var_length_vec(step, source, view,
                                                    used, ctx)
            check_target = not plain_target or (
                target_variable is not None and target_variable in view)
            prior = view[rel_variable] if rel_variable \
                and rel_variable in view else _UNSET
            for target_node, rel_value, edges in expansions:
                if check_target and not target_check(target_node, view,
                                                     ctx):
                    continue
                oriented = tuple(reversed(rel_value)) \
                    if step.reversed else rel_value
                if prior is not _UNSET and prior != oriented:
                    continue
                new_bound = list(bound)
                new_bound[target_index] = target_node
                new_rels = list(rels)
                new_rels[rel_index] = oriented
                out.append((src, new_bound, used | edges, new_rels))
        return out
    target_labels = target.labels
    target_props = target.properties
    target_prop_literals = literal_props(target_props) \
        if target_props and ctx.use_compiled_kernels else None
    target_prop_checks = compile_props(target_props) \
        if target_props and ctx.use_compiled_kernels \
        and target_prop_literals is None else None
    edge_ok = _edge_filter(rel, ctx)
    view_node_labels = ctx.view.node_labels
    view_node_property = ctx.view.node_property
    bulk_labels = getattr(ctx.view, "labels_of", None) \
        if target_labels else None
    db_hit = ctx.db_hit
    for src, bound, used, rels in states:
        view = _MatchRow(batch.row_view(src), node_slots, rel_slots,
                         bound, rels)
        source = bound[source_index]
        pairs = ctx.neighbors(source, direction, types)
        ctx.tick(len(pairs))
        # per-state constants the row kernel re-derives per edge:
        # required target id when the variable is already bound (None
        # = bound to a non-node, matches nothing), prior rel binding
        if target_variable is not None and target_variable in view:
            value = view[target_variable]
            required = value.id if isinstance(value, NodeRef) else None
        else:
            required = _UNSET
        prior = view[rel_variable] if rel_variable \
            and rel_variable in view else _UNSET
        # bulk-resolve the label sets for the whole adjacency list
        # when every edge will be label-checked anyway (db hits are
        # still charged per edge below, exactly as the row kernel
        # charges them)
        labelsets = bulk_labels([n for _e, n in pairs]) \
            if bulk_labels is not None and required is _UNSET \
            and not has_rel_props else None
        for index, (edge_id, neighbor) in enumerate(pairs):
            if edge_id in used:
                continue
            if has_rel_props and not edge_ok(edge_id, view, ctx):
                continue
            # inline _node_ok, in its exact check (and db-hit) order:
            # prior binding, then labels, then the property map
            if required is not _UNSET and neighbor != required:
                continue
            if target_labels:
                db_hit()
                labels = labelsets[index] if labelsets is not None \
                    else view_node_labels(neighbor)
                if not all(label in labels
                           for label in target_labels):
                    continue
            if target_props:
                ok = True
                if target_prop_literals is not None:
                    for key, wanted in target_prop_literals:
                        db_hit()
                        if view_node_property(neighbor, key) != wanted:
                            ok = False
                            break
                elif target_prop_checks is not None:
                    for key, kernel in target_prop_checks:
                        wanted = kernel(view, ctx)
                        db_hit()
                        if view_node_property(neighbor, key) != wanted:
                            ok = False
                            break
                else:
                    for key, expr in target_props:
                        wanted = evaluate(expr, view, ctx)
                        db_hit()
                        if view_node_property(neighbor, key) != wanted:
                            ok = False
                            break
                if not ok:
                    continue
            oriented = EdgeRef(edge_id)
            if prior is not _UNSET and prior != oriented:
                continue
            new_bound = list(bound)
            new_bound[target_index] = neighbor
            new_rels = list(rels)
            new_rels[rel_index] = oriented
            out.append((src, new_bound, used | {edge_id}, new_rels))
    return out


def _expand_var_length_vec(step: Any, source: int,
                           view: Mapping[str, Any],
                           used: frozenset[int], ctx: ExecutionContext,
                           ) -> list[tuple[int, Any, frozenset[int]]]:
    """Vectorized :func:`repro.cypher.matcher._expand_var_length`:
    same depth-first path enumeration and per-path edge uniqueness,
    over bulk-resolved adjacency."""
    rel = step.rel
    direction = step.direction
    types = rel.types or None
    min_hops = rel.min_hops
    max_hops = rel.max_hops
    edge_ok = _edge_filter(rel, ctx)
    results: list[tuple[int, Any, frozenset[int]]] = []
    if min_hops == 0:
        results.append((source, (), frozenset()))
    stack: list[tuple[int, tuple[int, ...]]] = [(source, ())]
    while stack:
        node_id, path_edges = stack.pop()
        if max_hops is not None and len(path_edges) >= max_hops:
            continue
        pairs = ctx.neighbors(node_id, direction, types)
        ctx.tick(len(pairs))
        for edge_id, neighbor in pairs:
            if edge_id in path_edges or edge_id in used:
                continue
            if edge_ok is not None and not edge_ok(edge_id, view, ctx):
                continue
            new_path = path_edges + (edge_id,)
            if len(new_path) >= min_hops:
                results.append((neighbor,
                                tuple(EdgeRef(edge)
                                      for edge in new_path),
                                frozenset(new_path)))
            stack.append((neighbor, new_path))
    return results


def _expand_reachability_vec(step: Any, source: int,
                             view: Mapping[str, Any],
                             ctx: ExecutionContext,
                             ) -> list[tuple[int, Any, frozenset[int]]]:
    """Vectorized :func:`repro.cypher.matcher._expand_reachability`:
    the same visited-set BFS (endpoints yielded once, in first-reach
    order), over bulk-resolved adjacency."""
    rel = step.rel
    direction = step.direction
    types = rel.types or None
    max_hops = rel.max_hops
    edge_ok = _edge_filter(rel, ctx)
    no_edges: frozenset[int] = frozenset()
    results: list[tuple[int, Any, frozenset[int]]] = []
    visited = {source}
    yielded = set()
    if rel.min_hops == 0:
        yielded.add(source)
        results.append((source, (), no_edges))
    frontier = [source]
    depth = 0
    while frontier and (max_hops is None or depth < max_hops):
        depth += 1
        next_frontier: list[int] = []
        if ctx.parallelism > 1 and len(frontier) > 1:
            # frontier-parallel level: neighbor lists come back in
            # frontier order, and the yielded/visited updates below
            # run serially in that order, so first-reach order — and
            # therefore the result rows — match the serial BFS exactly
            for neighbors in _frontier_parallel(frontier, direction,
                                                types, edge_ok, view,
                                                ctx):
                for neighbor in neighbors:
                    if neighbor not in yielded:
                        yielded.add(neighbor)
                        results.append((neighbor, (), no_edges))
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
            continue
        for node_id in frontier:
            pairs = ctx.neighbors(node_id, direction, types)
            ctx.tick(len(pairs))
            for edge_id, neighbor in pairs:
                if edge_ok is not None and not edge_ok(edge_id, view,
                                                       ctx):
                    continue
                if neighbor not in yielded:
                    yielded.add(neighbor)
                    results.append((neighbor, (), no_edges))
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return results


def _frontier_parallel(frontier: list[int], direction: Any,
                       types: tuple[str, ...] | None, edge_ok: Any,
                       view: Mapping[str, Any], ctx: ExecutionContext,
                       ) -> list[list[int]]:
    """Expand one BFS level on the pool: the frontier splits into
    ``ctx.parallelism`` contiguous slices, each slice's nodes resolve
    (and edge-filter) their adjacency on a forked context, and the
    per-node neighbor lists come back concatenated in frontier order.

    Accounting merges in slice order: expansion ticks via
    :meth:`ExecutionContext.absorb` and db-hits onto whichever
    operator frame the caller holds open (the VarLengthExpand step) —
    the same operator serial expansion charges. Adjacency memos are
    shared and lock-exact, so each store read is charged once per key
    regardless of which slice got there first.
    """
    from repro.obs import QueryProfiler

    spawn = ctx.task_spawner
    profiled = ctx.profiler is not None
    size = -(-len(frontier) // ctx.parallelism)
    slices = [frontier[start:start + size]
              for start in range(0, len(frontier), size)]

    def expand(nodes: list[int], fork: ExecutionContext) -> list[list[int]]:
        out = []
        for node_id in nodes:
            pairs = fork.neighbors(node_id, direction, types)
            fork.tick(len(pairs))
            if edge_ok is None:
                out.append([neighbor for _edge, neighbor in pairs])
            else:
                out.append([neighbor for edge_id, neighbor in pairs
                            if edge_ok(edge_id, view, fork)])
        return out

    tasks = []
    for nodes in slices:
        fork = ctx.fork(QueryProfiler() if profiled else None)
        fn = (lambda n=nodes, f=fork: (expand(n, f), f))
        tasks.append(spawn(fn) if spawn is not None else _InlineTask(fn))
    results: list[list[int]] = []
    for task in tasks:
        out, fork = task.result()
        ctx.absorb(fork)
        if profiled:
            ctx.db_hit(fork.profiler.root.db_hits)
        results.extend(out)
    return results


# --------------------------------------------------------------------------
# WHERE
# --------------------------------------------------------------------------

def _filter_stage(predicate: ast.Expr, batches: Iterator[RowBatch],
                  ctx: ExecutionContext) -> Iterator[RowBatch]:
    kernel = expr_kernel(predicate, ctx)
    for batch in batches:
        keep = []
        append = keep.append
        ctx.tick(batch.count)  # same totals as the per-row tick
        # one reusable row view: the predicate kernels read the row
        # only inside the call, so re-pointing the index is safe
        row = BatchRow(batch, 0)
        for index in range(batch.count):
            row._index = index
            if kernel(row, ctx) is True:
                append(index)
        if not keep:
            continue
        if len(keep) == batch.count:
            yield batch
            continue
        columns = [[column[index] for index in keep]
                   for column in batch.columns]
        yield RowBatch(batch.slots, columns, len(keep))


# --------------------------------------------------------------------------
# Projection (WITH / RETURN)
# --------------------------------------------------------------------------

def _with_stage(clause: ast.With, batches: Iterator[RowBatch],
                ctx: ExecutionContext, morsel_size: int,
                plan: Any | None = None) -> Iterator[RowBatch]:
    columns, data = _project_batch(
        clause.items, clause.distinct, clause.order_by, clause.skip,
        clause.limit, batches, ctx, star=False, plan=plan)
    # duplicate output names collapse to the last occurrence, exactly
    # as the row executor's dict(zip(columns, values)) does
    last = {name: position for position, name in enumerate(columns)}
    slots = {name: slot for slot, name in enumerate(last)}
    sources = list(last.values())
    where_kernel = expr_kernel(clause.where, ctx) \
        if clause.where is not None else None
    builder = _Builder(slots, morsel_size)
    for values in data:
        if where_kernel is not None:
            row = dict(zip(columns, values))
            if where_kernel(row, ctx) is not True:
                continue
        builder.append([values[source] for source in sources])
        if builder.full:
            yield builder.take()
    if builder.count:
        yield builder.take()


def _return_batch(clause: ast.Return, batches: Iterator[RowBatch],
                  ctx: ExecutionContext,
                  plan: Any | None = None) -> Result:
    columns, data = _project_batch(
        clause.items, clause.distinct, clause.order_by, clause.skip,
        clause.limit, batches, ctx, star=clause.star, plan=plan)
    return Result(columns, data, QueryStats())


#: Shared scope placeholder for projected rows whose scope can never
#: be read back (no ORDER BY): skips a BatchRow allocation per row.
_EMPTY_SCOPE: dict[str, Any] = {}


def _column_kernel(expr: ast.Expr):
    """A column-at-a-time evaluator for *expr*, or None.

    Covers the projection shapes that dominate the paper's workload —
    ``RETURN n``, ``RETURN n.prop`` and literals — with the exact
    per-row semantics of :func:`evaluate` (including its unknown-
    variable error and ``_property``'s null/db-hit behaviour), minus
    the per-row AST dispatch.
    """
    if isinstance(expr, ast.Variable):
        name = expr.name

        def variable_kernel(batch: RowBatch, ctx: ExecutionContext,
                            ) -> list[Any]:
            slot = batch.slots.get(name)
            if slot is None:
                raise CypherSemanticError(f"unknown variable {name!r}")
            return batch.columns[slot]

        return variable_kernel
    if isinstance(expr, ast.Literal):
        value = expr.value

        def literal_kernel(batch: RowBatch, ctx: ExecutionContext,
                           ) -> list[Any]:
            return [value] * batch.count

        return literal_kernel
    if isinstance(expr, ast.PropertyAccess) and \
            isinstance(expr.subject, ast.Variable):
        name = expr.subject.name
        key = expr.key

        def property_kernel(batch: RowBatch, ctx: ExecutionContext,
                            ) -> list[Any]:
            slot = batch.slots.get(name)
            if slot is None:
                raise CypherSemanticError(f"unknown variable {name!r}")
            view = ctx.view
            node_property = view.node_property
            edge_property = view.edge_property
            hits = 0
            out = []
            for subject in batch.columns[slot]:
                if subject is None:
                    out.append(None)
                elif isinstance(subject, NodeRef):
                    hits += 1
                    out.append(node_property(subject.id, key))
                elif isinstance(subject, EdgeRef):
                    hits += 1
                    out.append(edge_property(subject.id, key))
                elif isinstance(subject, MappingView):
                    out.append(subject.get(key))
                else:
                    raise CypherSemanticError(
                        f"cannot read property {key!r} of "
                        f"{type(subject).__name__}")
            if hits:
                ctx.db_hit(hits)
            return out

        return property_kernel
    return None


def _compiled_column_kernel(expr: ast.Expr):
    """Column kernel for any non-aggregate expression: the compiled
    row kernel mapped over per-row batch views. Slower than the
    shape-specialized kernels above (one BatchRow per row), still well
    ahead of per-row AST dispatch."""
    row_kernel = compile_expr(expr)

    def column(batch: RowBatch, ctx: ExecutionContext) -> list[Any]:
        return [row_kernel(BatchRow(batch, index), ctx)
                for index in range(batch.count)]

    return column


def _project_batch(items: tuple[ast.ReturnItem, ...], distinct: bool,
                   order_by: tuple[ast.SortItem, ...],
                   skip: ast.Expr | None, limit: ast.Expr | None,
                   batches: Iterator[RowBatch], ctx: ExecutionContext,
                   star: bool, plan: Any | None = None,
                   ) -> tuple[list[str], list[tuple[Any, ...]]]:
    """The batch projection kernel; row-mode ``_project`` semantics
    over batch views, with a top-K heap when ORDER BY meets LIMIT."""
    profiler = ctx.profiler if plan is not None else None
    if star:
        views = [view for batch in batches for view in batch.views()]
        columns = sorted({key for view in views for key in view})
        scoped = [(tuple(view.get(column) for column in columns), view)
                  for view in views]
    else:
        columns = _column_names(items)
        if any(ast.contains_aggregate(item.expression)
               for item in items):
            scoped = _aggregate(items, _views(batches), ctx)
        else:
            kernels = [_column_kernel(item.expression)
                       for item in items]
            if ctx.use_compiled_kernels:
                kernels = [kernel if kernel is not None
                           else _compiled_column_kernel(item.expression)
                           for kernel, item in zip(kernels, items)]
            vectorized = all(kernel is not None for kernel in kernels)
            # scope rows are only ever read back by ORDER BY's key
            # evaluation; everything else uses the value tuples
            need_scope = bool(order_by)
            scoped = []
            for batch in batches:
                count = batch.count
                if not count:
                    continue
                ctx.tick(count)
                if vectorized:
                    out_columns = [kernel(batch, ctx)
                                   for kernel in kernels]
                    scopes = batch.views() if need_scope \
                        else itertools.repeat(_EMPTY_SCOPE, count)
                    scoped.extend(zip(zip(*out_columns), scopes))
                else:
                    for index in range(count):
                        view = batch.row_view(index)
                        values = tuple(
                            evaluate(item.expression, view, ctx)
                            for item in items)
                        scoped.append((values, view))
    if distinct:
        if profiler is not None:
            operator = profiler.operator(plan, "distinct", "Distinct")
            with profiler.timed(operator):
                scoped = _distinct(scoped)
            operator.rows += len(scoped)
        else:
            scoped = _distinct(scoped)
    if order_by:
        if limit is not None:
            keep = _as_count(limit, ctx, "LIMIT")
            if skip is not None:
                keep += _as_count(skip, ctx, "SKIP")
            if profiler is not None:
                operator = profiler.operator(plan, "sort", "Sort")
                with profiler.timed(operator):
                    scoped = _top_k(scoped, columns, order_by, ctx,
                                    keep)
                operator.rows += len(scoped)
            else:
                scoped = _top_k(scoped, columns, order_by, ctx, keep)
        elif profiler is not None:
            operator = profiler.operator(plan, "sort", "Sort")
            with profiler.timed(operator):
                scoped = _order(scoped, columns, order_by, ctx)
            operator.rows += len(scoped)
        else:
            scoped = _order(scoped, columns, order_by, ctx)
    data = [values for values, _scope in scoped]
    if skip is not None:
        data = data[_as_count(skip, ctx, "SKIP"):]
        if profiler is not None:
            profiler.operator(plan, "skip", "Skip").rows += len(data)
    if limit is not None:
        count = _as_count(limit, ctx, "LIMIT")
        data = data[:count]
        if profiler is not None:
            profiler.operator(plan, "limit", "Limit").rows += len(data)
    return columns, data
