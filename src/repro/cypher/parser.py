"""Recursive-descent parser for the Cypher dialect.

Dialect notes (matching the paper's usage):

* Clauses: ``START``, ``MATCH``, ``OPTIONAL MATCH``, ``WHERE``,
  ``WITH``, ``RETURN``, plus ``ORDER BY``/``SKIP``/``LIMIT`` attached
  to ``WITH``/``RETURN``.
* Node elements may be bare identifiers (Cypher 1.x style, as in the
  paper's Figure 5) or parenthesized with labels and property maps
  (Cypher 2.x style, Table 6).
* Property keys, labels, relationship types and function names are
  normalized to lower case: the paper's queries spell the same key
  both ``SHORT_NAME`` and ``short_name``, and the graph model stores
  lower-case keys.
* Pattern predicates are allowed wherever a boolean expression is
  (``WHERE r.x >= s.x AND direct -[:calls*]-> writer``).
"""

from __future__ import annotations

from typing import Optional

from repro.cypher import ast
from repro.cypher.lexer import EOF, IDENT, INT, PARAM, PUNCT, STRING, Token, tokenize
from repro.errors import CypherSyntaxError

_CLAUSE_KEYWORDS = {"START", "MATCH", "OPTIONAL", "WHERE", "WITH", "RETURN",
                    "ORDER", "SKIP", "LIMIT", "AND", "OR", "NOT", "AS",
                    "DISTINCT", "ASC", "DESC", "BY", "XOR", "IS", "NULL",
                    "TRUE", "FALSE"}


def parse(text: str) -> ast.Query:
    """Parse Cypher text into a :class:`~repro.cypher.ast.Query`."""
    return _Parser(text).parse_query()


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(tokenize(text))
        self._index = 0

    # -- plumbing ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> CypherSyntaxError:
        token = token or self._peek()
        found = token.text or "end of query"
        return CypherSyntaxError(f"{message} (found {found!r})",
                                 token.line, token.column)

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token.kind != PUNCT or token.text != text:
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _at_punct(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == PUNCT and token.text == text

    def _at_keyword(self, word: str, offset: int = 0) -> bool:
        return self._peek(offset).is_keyword(word)

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind != IDENT:
            raise self._error(f"expected {what}")
        self._advance()
        return token.text

    # -- query / clause structure ----------------------------------------------

    def parse_query(self) -> ast.Query:
        # PROFILE is a query modifier, not a clause: it requests an
        # operator-level execution profile on the result
        profile = False
        if self._peek().is_keyword("PROFILE"):
            self._advance()
            profile = True
        clauses: list[ast.Clause] = []
        while not self._peek().kind == EOF:
            if self._at_punct(";"):
                self._advance()
                continue
            clauses.append(self._clause())
        if not clauses:
            raise CypherSyntaxError("empty query")
        query = ast.Query(tuple(clauses), self._text, profile)
        self._validate(query)
        return query

    def _clause(self) -> ast.Clause:
        if self._at_keyword("START"):
            return self._start_clause()
        if self._at_keyword("MATCH"):
            return self._match_clause(optional=False)
        if self._at_keyword("OPTIONAL"):
            self._advance()
            self._expect_keyword("MATCH")
            return self._match_clause(optional=True, consumed=True)
        if self._at_keyword("WHERE"):
            self._advance()
            return ast.Where(self._expression())
        if self._at_keyword("WITH"):
            return self._with_clause()
        if self._at_keyword("RETURN"):
            return self._return_clause()
        raise self._error("expected a clause keyword")

    def _start_clause(self) -> ast.Start:
        self._expect_keyword("START")
        points = [self._start_point()]
        while self._at_punct(","):
            self._advance()
            points.append(self._start_point())
        return ast.Start(tuple(points))

    def _start_point(self) -> ast.StartPoint:
        variable = self._expect_ident("start-point variable")
        self._expect_punct("=")
        source = self._expect_ident("'node'")
        if source.lower() != "node":
            raise self._error("only node start points are supported")
        if self._at_punct(":"):
            self._advance()
            index_name = self._expect_ident("index name")
            self._expect_punct("(")
            token = self._peek()
            if token.kind != STRING:
                raise self._error("expected index query string")
            self._advance()
            self._expect_punct(")")
            return ast.IndexStartPoint(variable, index_name,
                                       str(token.value))
        self._expect_punct("(")
        if self._at_punct("*"):
            self._advance()
            self._expect_punct(")")
            return ast.NodeIdStartPoint(variable, (), all_nodes=True)
        ids = [self._expect_int()]
        while self._at_punct(","):
            self._advance()
            ids.append(self._expect_int())
        self._expect_punct(")")
        return ast.NodeIdStartPoint(variable, tuple(ids))

    def _expect_int(self) -> int:
        token = self._peek()
        if token.kind != INT:
            raise self._error("expected integer")
        self._advance()
        return int(token.value)  # type: ignore[arg-type]

    def _match_clause(self, optional: bool, consumed: bool = False,
                      ) -> ast.Match:
        if not consumed:
            self._expect_keyword("MATCH")
        patterns = [self._match_pattern()]
        while self._at_punct(","):
            self._advance()
            patterns.append(self._match_pattern())
        return ast.Match(tuple(patterns), optional=optional)

    def _match_pattern(self) -> ast.Pattern:
        """One MATCH pattern, optionally `path = [shortestPath](...)`."""
        path_variable = None
        if self._peek().kind == IDENT and self._at_punct("=", 1) and \
                not self._at_punct("=", 2):
            path_variable = self._advance().text
            self._advance()  # '='
        shortest = None
        token = self._peek()
        if token.kind == IDENT and token.text.lower() in (
                "shortestpath", "allshortestpaths") and \
                self._at_punct("(", 1):
            shortest = "single" if token.text.lower() == "shortestpath" \
                else "all"
            self._advance()
            self._expect_punct("(")
            pattern = self._pattern()
            self._expect_punct(")")
        else:
            pattern = self._pattern()
        if path_variable is None and shortest is None:
            return pattern
        if shortest is not None and not any(rel.var_length
                                            for rel in pattern.rels):
            raise CypherSyntaxError(
                "shortestPath() needs a variable-length relationship")
        return ast.Pattern(pattern.nodes, pattern.rels,
                           path_variable=path_variable,
                           shortest=shortest)

    def _with_clause(self) -> ast.With:
        self._expect_keyword("WITH")
        distinct = self._accept_keyword("DISTINCT")
        items = self._return_items()
        order_by, skip, limit = self._modifiers()
        where = None
        if self._at_keyword("WHERE"):
            self._advance()
            where = self._expression()
        return ast.With(tuple(items), distinct=distinct,
                        order_by=tuple(order_by), skip=skip, limit=limit,
                        where=where)

    def _return_clause(self) -> ast.Return:
        self._expect_keyword("RETURN")
        distinct = self._accept_keyword("DISTINCT")
        if self._at_punct("*"):
            self._advance()
            order_by, skip, limit = self._modifiers()
            return ast.Return((), distinct=distinct, star=True,
                              order_by=tuple(order_by), skip=skip,
                              limit=limit)
        items = self._return_items()
        order_by, skip, limit = self._modifiers()
        return ast.Return(tuple(items), distinct=distinct,
                          order_by=tuple(order_by), skip=skip, limit=limit)

    def _return_items(self) -> list[ast.ReturnItem]:
        items = [self._return_item()]
        while self._at_punct(","):
            self._advance()
            items.append(self._return_item())
        return items

    def _return_item(self) -> ast.ReturnItem:
        expression = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        return ast.ReturnItem(expression, alias)

    def _modifiers(self) -> tuple[list[ast.SortItem],
                                  Optional[ast.Expr], Optional[ast.Expr]]:
        order_by: list[ast.SortItem] = []
        skip = limit = None
        if self._at_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by.append(self._sort_item())
            while self._at_punct(","):
                self._advance()
                order_by.append(self._sort_item())
        if self._at_keyword("SKIP"):
            self._advance()
            skip = self._expression()
        if self._at_keyword("LIMIT"):
            self._advance()
            limit = self._expression()
        return order_by, skip, limit

    def _sort_item(self) -> ast.SortItem:
        expression = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.SortItem(expression, ascending)

    # -- patterns ----------------------------------------------------------------

    def _pattern(self, first: ast.NodePattern | None = None) -> ast.Pattern:
        nodes = [first if first is not None else self._node_pattern()]
        rels: list[ast.RelPattern] = []
        while self._at_rel_start():
            rels.append(self._rel_pattern())
            nodes.append(self._node_pattern())
        return ast.Pattern(tuple(nodes), tuple(rels))

    def _at_rel_start(self) -> bool:
        if self._at_punct("<") and self._at_punct("-", 1):
            return True
        if self._at_punct("-"):
            return (self._at_punct("[", 1) or self._at_punct("-", 1))
        return False

    def _node_pattern(self) -> ast.NodePattern:
        token = self._peek()
        if token.kind == IDENT:
            if token.text.upper() in _CLAUSE_KEYWORDS:
                raise self._error("expected node pattern")
            self._advance()
            return ast.NodePattern(token.text)
        if self._at_punct("("):
            self._advance()
            variable = None
            if self._peek().kind == IDENT and \
                    self._peek().text.upper() not in _CLAUSE_KEYWORDS:
                variable = self._advance().text
            labels = []
            while self._at_punct(":"):
                self._advance()
                labels.append(self._expect_ident("label").lower())
            properties = ()
            if self._at_punct("{"):
                properties = self._property_map()
            self._expect_punct(")")
            return ast.NodePattern(variable, tuple(labels), properties)
        raise self._error("expected node pattern")

    def _rel_pattern(self) -> ast.RelPattern:
        direction = "both"
        if self._at_punct("<"):
            self._advance()
            self._expect_punct("-")
            direction = "in"
        else:
            self._expect_punct("-")
        variable = None
        types: list[str] = []
        properties: tuple[tuple[str, ast.Expr], ...] = ()
        var_length = False
        min_hops, max_hops = 1, None
        if self._at_punct("["):
            self._advance()
            if self._peek().kind == IDENT:
                variable = self._advance().text
            if self._at_punct(":"):
                self._advance()
                types.append(self._expect_ident("relationship type").lower())
                while self._at_punct("|"):
                    self._advance()
                    if self._at_punct(":"):
                        self._advance()
                    types.append(
                        self._expect_ident("relationship type").lower())
            if self._at_punct("?"):
                self._advance()  # legacy optional-relationship marker
            if self._at_punct("*"):
                self._advance()
                var_length = True
                min_hops, max_hops = self._hop_range()
            if self._at_punct("{"):
                properties = self._property_map()
            self._expect_punct("]")
            self._expect_punct("-")
        else:
            # bare arrow: the second dash of '--', '-->' or '<--'
            self._expect_punct("-")
        if self._at_punct(">"):
            self._advance()
            if direction == "in":
                raise self._error("relationship cannot point both ways")
            direction = "out"
        elif direction != "in":
            direction = "both"
        return ast.RelPattern(variable, tuple(types), direction, properties,
                              var_length, min_hops, max_hops)

    def _hop_range(self) -> tuple[int, Optional[int]]:
        min_hops, max_hops = 1, None
        if self._peek().kind == INT:
            first = self._expect_int()
            if self._at_punct(".."):
                self._advance()
                min_hops = first
                if self._peek().kind == INT:
                    max_hops = self._expect_int()
            else:
                min_hops = max_hops = first
        elif self._at_punct(".."):
            self._advance()
            if self._peek().kind == INT:
                max_hops = self._expect_int()
        return min_hops, max_hops

    def _property_map(self) -> tuple[tuple[str, ast.Expr], ...]:
        self._expect_punct("{")
        entries: list[tuple[str, ast.Expr]] = []
        if not self._at_punct("}"):
            entries.append(self._property_entry())
            while self._at_punct(","):
                self._advance()
                entries.append(self._property_entry())
        self._expect_punct("}")
        return tuple(entries)

    def _property_entry(self) -> tuple[str, ast.Expr]:
        key = self._expect_ident("property key").lower()
        self._expect_punct(":")
        return key, self._expression()

    # -- expressions --------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._at_keyword("OR") or self._at_keyword("XOR"):
            op = self._advance().text.lower()
            left = ast.Binary(op, left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._at_keyword("AND"):
            self._advance()
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._at_keyword("NOT"):
            self._advance()
            return ast.Unary("not", self._not_expr())
        pattern = self._try_pattern_predicate()
        if pattern is not None:
            return pattern
        return self._comparison()

    def _try_pattern_predicate(self) -> ast.Expr | None:
        """Speculatively parse ``<node element> <rel> ...`` as a pattern."""
        saved = self._index
        try:
            node = self._node_pattern()
        except CypherSyntaxError:
            self._index = saved
            return None
        if not self._at_rel_start():
            self._index = saved
            return None
        try:
            pattern = self._pattern(first=node)
        except CypherSyntaxError:
            self._index = saved
            return None
        return ast.PatternPredicate(pattern)

    _COMPARISONS = ("=", "<>", "!=", "<=", ">=", "<", ">", "=~")

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        while True:
            token = self._peek()
            if token.kind == PUNCT and token.text in self._COMPARISONS:
                self._advance()
                op = "<>" if token.text == "!=" else token.text
                left = ast.Binary(op, left, self._additive())
            elif token.is_keyword("IN"):
                self._advance()
                left = ast.Binary("in", left, self._additive())
            elif token.is_keyword("IS"):
                self._advance()
                negate = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                check: ast.Expr = ast.FunctionCall("isnull", (left,))
                left = ast.Unary("not", check) if negate else check
            else:
                return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._at_punct("+"):
                self._advance()
                left = ast.Binary("+", left, self._multiplicative())
            elif (self._at_punct("-") and not self._at_punct("[", 1)
                    and not self._at_punct("-", 1) and not
                    self._at_punct(">", 1)):
                self._advance()
                left = ast.Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == PUNCT and token.text in ("*", "/", "%", "^"):
                self._advance()
                left = ast.Binary(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._at_punct("-"):
            self._advance()
            return ast.Unary("-", self._unary())
        if self._at_punct("+"):
            self._advance()
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expression = self._primary()
        while self._at_punct("."):
            self._advance()
            key = self._expect_ident("property name").lower()
            expression = ast.PropertyAccess(expression, key)
        return expression

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (INT, "float", STRING):
            self._advance()
            return ast.Literal(token.value)
        if token.kind == PARAM:
            self._advance()
            return ast.Parameter(str(token.value))
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.kind == IDENT:
            if self._at_punct("(", 1):
                return self._function_call()
            if token.text.upper() in _CLAUSE_KEYWORDS:
                raise self._error("expected expression")
            self._advance()
            return ast.Variable(token.text)
        if self._at_punct("("):
            self._advance()
            inner = self._expression()
            self._expect_punct(")")
            return inner
        if self._at_punct("["):
            return self._list_literal()
        raise self._error("expected expression")

    def _function_call(self) -> ast.Expr:
        name = self._expect_ident().lower()
        self._expect_punct("(")
        if name == "count" and self._at_punct("*"):
            self._advance()
            self._expect_punct(")")
            return ast.CountStar()
        distinct = self._accept_keyword("DISTINCT")
        args: list[ast.Expr] = []
        if not self._at_punct(")"):
            args.append(self._expression())
            while self._at_punct(","):
                self._advance()
                args.append(self._expression())
        self._expect_punct(")")
        return ast.FunctionCall(name, tuple(args), distinct)

    def _list_literal(self) -> ast.Expr:
        self._expect_punct("[")
        items: list[ast.Expr] = []
        if not self._at_punct("]"):
            items.append(self._expression())
            while self._at_punct(","):
                self._advance()
                items.append(self._expression())
        self._expect_punct("]")
        return ast.FunctionCall("__list__", tuple(items))

    # -- validation ---------------------------------------------------------------

    def _validate(self, query: ast.Query) -> None:
        last = query.clauses[-1]
        if not isinstance(last, (ast.Return, ast.With)):
            raise CypherSyntaxError(
                "query must end with RETURN (or WITH)")
        for clause in query.clauses[:-1]:
            if isinstance(clause, ast.Return):
                raise CypherSyntaxError("RETURN must be the final clause")
