"""Cost-based query planning over live graph statistics.

The planner makes three kinds of decisions, all fed by
:class:`~repro.graphdb.stats.GraphStatistics` (label and edge-type
cardinalities, average out-degree, index selectivity via
``indexes.seek_count``):

* **Anchor choice** — which pattern node sources candidates. Each
  candidate anchor is costed as its estimated candidate count times
  the cumulative fanout of the expansions it forces; the cheapest
  total wins (ties break towards the leftmost node, matching the old
  heuristic's reading order).
* **Expansion order** — from the anchor, the left and right step
  frontiers are interleaved greedily by estimated fanout, so a
  selective relationship prunes the row stream before a prolific one
  multiplies it.
* **Prepare-time rewrites** (:func:`plan_query`) — equality conjuncts
  of a trailing ``WHERE`` are *copied* into the preceding ``MATCH``'s
  node patterns (filtering at expand time and enabling index-seek
  anchors; the ``Filter`` operator stays, so observed plans keep their
  shape), and var-length relationships whose output is
  endpoint-distinct are marked for the visited-set BFS reachability
  expansion (see :mod:`repro.cypher.matcher`), which turns the paper's
  Section 6.1 exponential path enumeration into a linear traversal.

Everything here is shared by the matcher and ``explain()`` so plan
descriptions can never drift from what actually runs.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

from repro.cypher import ast
from repro.graphdb.stats import GraphStatistics, graph_statistics_for

#: depth assumed for an unbounded var-length expansion when estimating
#: fanout — deep enough to dominate single hops, small enough not to
#: overflow floats on dense graphs
VAR_LENGTH_DEPTH_ASSUMPTION = 3


def anchor_strategy(node: ast.NodePattern, known_variables: set[str],
                    indexed_keys: tuple[str, ...],
                    use_index_seek: bool = True,
                    ) -> tuple[str, str]:
    """How the planner will source candidates for a pattern node.

    Returns (strategy, detail); shared by the matcher and EXPLAIN so
    the plan description can never drift from what actually runs.
    Strategies: 'bound', 'index-seek', 'label-scan', 'all-nodes'.
    """
    if node.variable and node.variable in known_variables:
        return "bound", node.variable
    if use_index_seek and node.properties:
        for key, expr in node.properties:
            if key in indexed_keys and isinstance(expr, ast.Literal) \
                    and expr.value is not None:
                return "index-seek", f"{key} = {expr.value!r}"
    if node.labels:
        return "label-scan", node.labels[0]
    return "all-nodes", ""


def estimate_anchor(node: ast.NodePattern, strategy: str,
                    view: Any, stats: GraphStatistics) -> float:
    """Estimated candidate count for anchoring on *node*."""
    if strategy == "bound":
        return 1.0
    if strategy == "index-seek":
        seek_count = getattr(view.indexes, "seek_count", None)
        if seek_count is not None:
            for key, expr in node.properties:
                if isinstance(expr, ast.Literal) and expr.value is not None:
                    try:
                        return float(seek_count(key, expr.value))
                    except Exception:
                        break
        return 1.0
    if strategy == "label-scan":
        return float(stats.label_count(node.labels[0]))
    return float(stats.node_count)


def step_fanout(rel: ast.RelPattern, stats: GraphStatistics) -> float:
    """Estimated rows-out-per-row-in for one relationship expansion."""
    fanout = stats.avg_out_degree(rel.types)
    if rel.direction == "both":
        fanout *= 2.0
    if rel.var_length:
        depth = rel.max_hops if rel.max_hops is not None \
            else VAR_LENGTH_DEPTH_ASSUMPTION
        depth = min(depth, VAR_LENGTH_DEPTH_ASSUMPTION)
        # geometric series of path counts up to the assumed depth
        total = 0.0
        level = 1.0
        for _ in range(max(depth, 1)):
            level *= fanout
            total += level
            if total > 1e18:
                break
        fanout = total
    return fanout


@dataclasses.dataclass(frozen=True)
class PatternPlan:
    """A costed traversal order for one pattern.

    ``steps`` are ``(rel_index, source_node_index, reversed)`` triples
    in execution order; ``step_estimates`` carries the estimated row
    count *after* each step (anchor estimate times cumulative fanout).
    """

    anchor: int
    strategy: str
    detail: str
    anchor_estimate: float
    steps: tuple[tuple[int, int, bool], ...]
    step_estimates: tuple[float, ...]
    cost: float


def _ordered_steps(pattern: ast.Pattern, anchor: int,
                   stats: GraphStatistics,
                   ) -> Iterable[tuple[int, int, bool, float]]:
    """Greedy cheapest-fanout-first interleave of the two frontiers."""
    right = anchor       # next rel to the right is rels[right]
    left = anchor        # next rel to the left is rels[left - 1]
    count = len(pattern.rels)
    while right < count or left > 0:
        right_fanout = step_fanout(pattern.rels[right], stats) \
            if right < count else None
        left_fanout = step_fanout(pattern.rels[left - 1], stats) \
            if left > 0 else None
        take_right = left_fanout is None or (
            right_fanout is not None and right_fanout <= left_fanout)
        if take_right:
            yield right, right, False, right_fanout  # type: ignore[misc]
            right += 1
        else:
            yield left - 1, left, True, left_fanout  # type: ignore[misc]
            left -= 1


def plan_pattern(pattern: ast.Pattern, known_variables: set[str],
                 view: Any, use_index_seek: bool = True,
                 stats: GraphStatistics | None = None) -> PatternPlan:
    """Pick the cheapest anchor and expansion order for one pattern."""
    if stats is None:
        stats = graph_statistics_for(view)
    indexed_keys = tuple(getattr(view.indexes, "auto_index_keys", ()))
    best: PatternPlan | None = None
    for index, node in enumerate(pattern.nodes):
        strategy, detail = anchor_strategy(node, known_variables,
                                           indexed_keys, use_index_seek)
        anchor_estimate = estimate_anchor(node, strategy, view, stats)
        steps: list[tuple[int, int, bool]] = []
        estimates: list[float] = []
        rows = anchor_estimate
        cost = anchor_estimate
        for rel_index, source, reverse, fanout in _ordered_steps(
                pattern, index, stats):
            steps.append((rel_index, source, reverse))
            rows *= fanout
            estimates.append(rows)
            cost += rows
        candidate = PatternPlan(
            anchor=index, strategy=strategy, detail=detail,
            anchor_estimate=anchor_estimate, steps=tuple(steps),
            step_estimates=tuple(estimates), cost=cost)
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None  # patterns always have >= 1 node
    return best


# --------------------------------------------------------------------------
# Execution-mode routing (the 'auto' cost consult)
# --------------------------------------------------------------------------

#: estimated source rows below which 'auto' execution runs the row
#: pipeline: batch setup (per-clause layout work, morsel plumbing) is
#: only recouped once morsels actually fill up
ROW_MODE_SOURCE_THRESHOLD = 64


def _point_estimate(point: ast.StartPoint, view: Any,
                    limit: int) -> float:
    """Candidate count for one START point, probed up to *limit*."""
    if isinstance(point, ast.IndexStartPoint):
        if point.index_name != "node_auto_index":
            return float(limit)
        try:
            probe = view.indexes.query(point.query)
        except Exception:
            return float(limit)
        import itertools
        return float(len(list(itertools.islice(probe, limit))))
    if point.all_nodes:
        return float(view.node_count())
    return float(len(point.ids))


def prefer_rows(query: ast.Query, view: Any,
                use_index_seek: bool = True) -> bool:
    """True when 'auto' execution should run the row pipeline.

    Batch execution wins by amortizing per-clause work over morsels
    and by bulk adjacency on traversals. Two rules, both costed from
    the same statistics the planner uses:

    * any var-length relationship forces batch — reachability/DFS
      expansion over bulk adjacency dominates regardless of source
      size (the Figure 6 comprehension query);
    * otherwise, when the pipeline's source (the START points'
      cartesian product, or the first MATCH pattern's costed anchor)
      is estimated under :data:`ROW_MODE_SOURCE_THRESHOLD` rows, the
      generator pipeline wins — short pipelines like the Table 5
      debugging query never fill a morsel, so batch setup is pure
      overhead.
    """
    for clause in query.clauses:
        if isinstance(clause, ast.Match):
            for pattern in clause.patterns:
                if any(rel.var_length for rel in pattern.rels):
                    return False
    source = next((clause for clause in query.clauses
                   if isinstance(clause, (ast.Start, ast.Match))), None)
    if source is None:
        return True  # expression-only query: one row
    threshold = ROW_MODE_SOURCE_THRESHOLD
    if isinstance(source, ast.Start):
        cardinality = 1.0
        for point in source.points:
            cardinality *= _point_estimate(point, view, threshold + 1)
            if cardinality > threshold:
                return False
        return True
    if source.optional or len(source.patterns) != 1:
        return False  # row-fallback clauses; batch handles per clause
    try:
        plan = plan_pattern(source.patterns[0], set(), view,
                            use_index_seek)
    except Exception:
        return False
    return plan.anchor_estimate <= threshold


# --------------------------------------------------------------------------
# Prepare-time query rewrites
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PlanReport:
    """What :func:`plan_query` did, for planner counters and EXPLAIN."""

    pushed_filters: int = 0
    reachability_rewrites: int = 0


def plan_query(query: ast.Query, *, pushdown: bool = True,
               mark_reachability: bool = True,
               ) -> tuple[ast.Query, PlanReport]:
    """Return a planned copy of *query* plus a report of the rewrites.

    Two semantics-preserving transformations:

    * **Predicate pushdown** — top-level AND conjuncts of a WHERE of
      the form ``v.key = <literal|parameter>``, where ``v`` is a node
      variable of the immediately preceding non-optional MATCH, are
      copied into that MATCH's node patterns. Sound because a row
      survives WHERE only when the whole conjunction is exactly true,
      which requires each conjunct exactly true; the WHERE clause is
      kept, so residual conjuncts (and the Filter operator) stay.
    * **Reachability marking** — var-length relationships satisfying
      :func:`reachability_eligible` get ``reachability=True``, telling
      the matcher it may expand them as visited-set BFS when the
      engine's ``use_reachability_rewrite`` gate is on.
    """
    clauses = list(query.clauses)
    pushed = 0
    rewritten = 0
    if pushdown:
        for index in range(len(clauses) - 1):
            clause, following = clauses[index], clauses[index + 1]
            if not isinstance(clause, ast.Match) or clause.optional:
                continue
            if not isinstance(following, ast.Where):
                continue
            clauses[index], count = _push_conjuncts(clause,
                                                    following.predicate)
            pushed += count
    if mark_reachability:
        for index, clause in enumerate(clauses):
            if isinstance(clause, ast.Match):
                if not _consumer_is_distinct(clauses[index + 1:]):
                    continue
                clauses[index], count = _mark_reachability(clause)
                rewritten += count
            elif isinstance(clause, ast.Where):
                # pattern predicates are pure existence tests, which
                # are multiplicity-insensitive by construction
                predicate, count = _mark_predicate_patterns(
                    clause.predicate)
                if count:
                    clauses[index] = dataclasses.replace(
                        clause, predicate=predicate)
                    rewritten += count
            elif isinstance(clause, (ast.With, ast.Return)) \
                    and getattr(clause, "where", None) is not None:
                where, count = _mark_predicate_patterns(clause.where)
                if count:
                    clauses[index] = dataclasses.replace(clause,
                                                         where=where)
                    rewritten += count
    planned = dataclasses.replace(query, clauses=tuple(clauses))
    return planned, PlanReport(pushed_filters=pushed,
                               reachability_rewrites=rewritten)


def _conjuncts(expr: ast.Expr) -> Iterable[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _pushable(expr: ast.Expr) -> tuple[str, str, ast.Expr] | None:
    """``v.key = <const>`` (either side) -> (variable, key, value)."""
    if not isinstance(expr, ast.Binary) or expr.op != "=":
        return None
    for access, value in ((expr.left, expr.right),
                          (expr.right, expr.left)):
        if (isinstance(access, ast.PropertyAccess)
                and isinstance(access.subject, ast.Variable)
                and isinstance(value, (ast.Literal, ast.Parameter))):
            if isinstance(value, ast.Literal) and value.value is None:
                continue  # `= null` is never true; leave it to WHERE
            return access.subject.name, access.key, value
    return None


def _push_conjuncts(clause: ast.Match,
                    predicate: ast.Expr) -> tuple[ast.Match, int]:
    wanted: dict[str, list[tuple[str, ast.Expr]]] = {}
    for conjunct in _conjuncts(predicate):
        found = _pushable(conjunct)
        if found is not None:
            variable, key, value = found
            wanted.setdefault(variable, []).append((key, value))
    if not wanted:
        return clause, 0
    pushed = 0
    patterns = []
    for pattern in clause.patterns:
        nodes = []
        for node in pattern.nodes:
            extra = wanted.get(node.variable or "")
            if extra:
                have = {key for key, _ in node.properties}
                fresh = tuple((key, value) for key, value in extra
                              if key not in have)
                if fresh:
                    node = dataclasses.replace(
                        node, properties=node.properties + fresh)
                    pushed += len(fresh)
            nodes.append(node)
        patterns.append(dataclasses.replace(pattern, nodes=tuple(nodes)))
    return dataclasses.replace(clause, patterns=tuple(patterns)), pushed


def _consumer_is_distinct(following: list[ast.Clause]) -> bool:
    """True when every row this MATCH emits is consumed set-wise.

    The first projection clause downstream must be DISTINCT and
    aggregate-free: duplicates collapse there, and every later stage
    sees identical inputs either way. Intervening MATCH/WHERE clauses
    are per-row (duplicated inputs produce duplicated outputs with the
    same row *set*), so they are transparent to this analysis.
    """
    for clause in following:
        if isinstance(clause, (ast.With, ast.Return)):
            if not clause.distinct:
                return False
            if any(ast.contains_aggregate(item.expression)
                   for item in clause.items):
                return False
            if any(ast.contains_aggregate(sort.expression)
                   for sort in clause.order_by):
                return False
            return True
        if not isinstance(clause, (ast.Match, ast.Where)):
            return False
    return False


def reachability_eligible(clause: ast.Match) -> list[ast.RelPattern]:
    """Rels of *clause* safe to expand as BFS reachability, given the
    clause's rows are consumed endpoint-distinct.

    Preconditions (each keeps the rewrite semantics-preserving):

    * the clause binds exactly one relationship in total, so Cypher's
      clause-level edge uniqueness has nothing to cross-check;
    * the rel is var-length with ``min_hops <= 1`` (a node's BFS level
      is its minimum edge-unique hop count, so a bounded BFS answers
      "reachable within <= max hops" exactly; ``min_hops >= 2`` would
      need per-depth revisits);
    * the rel is directed: with ``direction='both'`` a BFS can close a
      cycle back to its source through the one undirected edge it left
      by, which path enumeration rejects as edge reuse;
    * neither the relationship nor the enclosing path is bound to a
      variable (nothing downstream can observe the missing paths);
    * the pattern is not a shortestPath (those already BFS).
    """
    rels = [rel for pattern in clause.patterns for rel in pattern.rels]
    if len(rels) != 1:
        return []
    (rel,) = rels
    (pattern,) = [p for p in clause.patterns if p.rels]
    if (rel.var_length and rel.min_hops <= 1
            and rel.direction != "both"
            and rel.variable is None
            and pattern.path_variable is None
            and pattern.shortest is None):
        return [rel]
    return []


def _mark_predicate_patterns(expr: ast.Expr) -> tuple[ast.Expr, int]:
    """Mark eligible var-length rels inside WHERE pattern predicates.

    A pattern predicate asks "does at least one match exist?", so the
    endpoint-distinct requirement is satisfied trivially — any rel
    meeting the structural conditions of
    :func:`reachability_eligible` (checked by wrapping the predicate's
    pattern in a single-pattern MATCH) may collapse to reachability.
    """
    if isinstance(expr, ast.PatternPredicate):
        probe = ast.Match(patterns=(expr.pattern,))
        marked, count = _mark_reachability(probe)
        if count:
            return ast.PatternPredicate(marked.patterns[0]), count
        return expr, 0
    if isinstance(expr, ast.Unary):
        operand, count = _mark_predicate_patterns(expr.operand)
        if count:
            return dataclasses.replace(expr, operand=operand), count
        return expr, 0
    if isinstance(expr, ast.Binary):
        left, left_count = _mark_predicate_patterns(expr.left)
        right, right_count = _mark_predicate_patterns(expr.right)
        if left_count or right_count:
            return (dataclasses.replace(expr, left=left, right=right),
                    left_count + right_count)
        return expr, 0
    return expr, 0


def _mark_reachability(clause: ast.Match) -> tuple[ast.Match, int]:
    eligible = reachability_eligible(clause)
    if not eligible:
        return clause, 0
    patterns = []
    marked = 0
    for pattern in clause.patterns:
        rels = []
        for rel in pattern.rels:
            if rel in eligible and not rel.reachability:
                rel = dataclasses.replace(rel, reachability=True)
                marked += 1
            rels.append(rel)
        patterns.append(dataclasses.replace(pattern, rels=tuple(rels)))
    return dataclasses.replace(clause, patterns=tuple(patterns)), marked
