"""Pattern matching: the heart of MATCH and of pattern predicates.

Semantics follow Cypher:

* Within one ``MATCH`` clause, relationships are unique across the
  whole clause (an edge is never bound twice in the same match row).
* Variable-length relationships (``-[:t*]->``) *enumerate paths* with
  per-path relationship uniqueness. This is deliberately not a
  visited-set reachability search — path enumeration is what makes the
  paper's Figure 6 transitive closure explode in Cypher while the
  embedded traversal answers in linear time (paper Section 6.1), and
  the reproduction keeps that behaviour honest.

Matching works outward from an *anchor*: the first pattern node whose
variable is already bound, else the most selective scannable node
(label scan beats full scan). Each relationship step expands adjacency
through the :class:`~repro.graphdb.view.GraphView`, so the same code
path serves the in-memory graph and the page-cached disk store.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Mapping

from repro.cypher import ast
from repro.cypher.evaluator import ExecutionContext, evaluate
from repro.cypher.plan import ANCHOR_OPERATORS
from repro.cypher.result import EdgeRef, NodeRef, PathValue
from repro.errors import CypherSemanticError
from repro.graphdb.view import Direction, other_end

_DIRECTIONS = {"out": Direction.OUT, "in": Direction.IN,
               "both": Direction.BOTH}


@dataclasses.dataclass(frozen=True)
class _Step:
    """One relationship expansion, oriented away from the anchor."""

    rel: ast.RelPattern
    target: ast.NodePattern
    source_index: int  # index into pattern.nodes of the bound side
    rel_index: int     # index into pattern.rels
    reversed: bool     # True when walking right-to-left

    @property
    def direction(self) -> Direction:
        wanted = _DIRECTIONS[self.rel.direction]
        return wanted.reverse() if self.reversed else wanted


def match_clause(clause: ast.Match, rows: Iterator[Mapping[str, Any]],
                 ctx: ExecutionContext,
                 plan: Any | None = None) -> Iterator[dict[str, Any]]:
    """Apply one MATCH clause to a stream of binding rows.

    ``plan`` is the clause's profiled operator (an
    :class:`~repro.obs.profile.OperatorStats`) when running under
    PROFILE; the matcher hangs anchor/expand operators off it.
    """
    new_variables = sorted({name for pattern in clause.patterns
                            for name in pattern.variables()})
    for row in rows:
        produced = False
        for result in _match_patterns(clause.patterns, 0, dict(row),
                                      frozenset(), ctx, plan):
            produced = True
            yield result
        if clause.optional and not produced:
            padded = dict(row)
            for name in new_variables:
                padded.setdefault(name, None)
            yield padded


def pattern_exists(pattern: ast.Pattern, row: Mapping[str, Any],
                   ctx: ExecutionContext) -> bool:
    """WHERE pattern predicate: does at least one match exist?"""
    for _ in _match_patterns((pattern,), 0, dict(row), frozenset(), ctx):
        return True
    return False


def _match_patterns(patterns: tuple[ast.Pattern, ...], index: int,
                    row: dict[str, Any], used: frozenset[int],
                    ctx: ExecutionContext,
                    plan: Any | None = None) -> Iterator[dict[str, Any]]:
    if index == len(patterns):
        yield row
        return
    for new_row, new_used in _match_one(patterns[index], row, used, ctx,
                                        plan, index):
        yield from _match_patterns(patterns, index + 1, new_row, new_used,
                                   ctx, plan)


def _match_one(pattern: ast.Pattern, row: dict[str, Any],
               used: frozenset[int], ctx: ExecutionContext,
               plan: Any | None = None, pattern_index: int = 0,
               ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
    profiler = ctx.profiler if plan is not None else None
    if pattern.shortest is not None:
        found = _match_shortest(pattern, row, used, ctx)
        if profiler is not None:
            operator = profiler.operator(
                plan, ("shortest", pattern_index), "ShortestPath",
                mode=pattern.shortest)
            found = profiler.iterate(operator, found)
        yield from found
        return
    anchor = _pick_anchor(pattern, row)
    steps = _build_steps(pattern, anchor)
    track_path = pattern.path_variable is not None
    candidates = _anchor_candidates(pattern.nodes[anchor], row, ctx)
    if profiler is not None:
        strategy, detail = anchor_strategy(
            pattern.nodes[anchor], set(row),
            tuple(getattr(ctx.view.indexes, "auto_index_keys", ())),
            ctx.use_index_seek)
        operator = profiler.operator(
            plan, ("anchor", pattern_index), ANCHOR_OPERATORS[strategy],
            variable=pattern.nodes[anchor].variable, on=detail or None)
        candidates = profiler.iterate(operator, candidates,
                                      hits_per_row=1)
    for node_id in candidates:
        if not _node_ok(pattern.nodes[anchor], node_id, row, ctx):
            continue
        anchored = dict(row)
        _bind_node(anchored, pattern.nodes[anchor], node_id)
        bound = {anchor: node_id}
        for match_row, match_used, final_bound, final_rels in _expand(
                steps, 0, anchored, bound, used, ctx, {}, plan,
                pattern_index):
            if track_path:
                match_row = dict(match_row)
                match_row[pattern.path_variable] = _build_path(
                    pattern, final_bound, final_rels, ctx)
            yield match_row, match_used


def _pick_anchor(pattern: ast.Pattern, row: Mapping[str, Any]) -> int:
    for index, node in enumerate(pattern.nodes):
        if node.variable and node.variable in row:
            return index
    for index, node in enumerate(pattern.nodes):
        if node.labels:
            return index
    for index, node in enumerate(pattern.nodes):
        if node.properties:
            return index
    return 0


def _build_steps(pattern: ast.Pattern, anchor: int) -> list[_Step]:
    steps = []
    for index in range(anchor, len(pattern.rels)):
        steps.append(_Step(pattern.rels[index], pattern.nodes[index + 1],
                           source_index=index, rel_index=index,
                           reversed=False))
    for index in range(anchor - 1, -1, -1):
        steps.append(_Step(pattern.rels[index], pattern.nodes[index],
                           source_index=index + 1, rel_index=index,
                           reversed=True))
    return steps


def anchor_strategy(node: ast.NodePattern, known_variables: set[str],
                    indexed_keys: tuple[str, ...],
                    use_index_seek: bool = True,
                    ) -> tuple[str, str]:
    """How the planner will source candidates for a pattern node.

    Returns (strategy, detail); shared by the matcher and EXPLAIN so
    the plan description can never drift from what actually runs.
    Strategies: 'bound', 'index-seek', 'label-scan', 'all-nodes'.
    """
    if node.variable and node.variable in known_variables:
        return "bound", node.variable
    if use_index_seek and node.properties:
        for key, expr in node.properties:
            if key in indexed_keys and isinstance(expr, ast.Literal) \
                    and expr.value is not None:
                return "index-seek", f"{key} = {expr.value!r}"
    if node.labels:
        return "label-scan", node.labels[0]
    return "all-nodes", ""


def _anchor_candidates(node: ast.NodePattern, row: Mapping[str, Any],
                       ctx: ExecutionContext) -> Iterator[int]:
    indexed_keys = tuple(getattr(ctx.view.indexes, "auto_index_keys",
                                 ()))
    strategy, _detail = anchor_strategy(node, set(row), indexed_keys,
                                        ctx.use_index_seek)
    if strategy == "bound":
        value = row[node.variable]  # type: ignore[index]
        if value is None:
            return
        if not isinstance(value, NodeRef):
            raise CypherSemanticError(
                f"variable {node.variable!r} is not a node")
        yield value.id
        return
    if strategy == "index-seek":
        # a property literal on an auto-indexed key beats a label scan
        for key, expr in node.properties:
            if key in indexed_keys and isinstance(expr, ast.Literal) \
                    and expr.value is not None:
                yield from ctx.view.indexes.lookup(key, expr.value)
                return
    if strategy == "label-scan":
        yield from ctx.view.nodes_with_label(node.labels[0])
        return
    yield from ctx.view.node_ids()


def _expand(steps: list[_Step], step_index: int, row: dict[str, Any],
            bound: dict[int, int], used: frozenset[int],
            ctx: ExecutionContext, rel_values: dict[int, Any],
            plan: Any | None = None, pattern_index: int = 0,
            ) -> Iterator[tuple[dict[str, Any], frozenset[int],
                                dict[int, int], dict[int, Any]]]:
    if step_index == len(steps):
        yield row, used, bound, rel_values
        return
    step = steps[step_index]
    results = _expand_step(step, row, bound, used, ctx, rel_values)
    if plan is not None and ctx.profiler is not None:
        operator = ctx.profiler.operator(
            plan, ("expand", pattern_index, step.rel_index),
            "VarLengthExpand" if step.rel.var_length else "Expand",
            types="|".join(step.rel.types) or None,
            direction=step.rel.direction,
            bounds=_hops_text(step.rel) if step.rel.var_length else None)
        results = ctx.profiler.iterate(operator, results)
    for new_row, new_bound, new_used, new_rels in results:
        yield from _expand(steps, step_index + 1, new_row, new_bound,
                           new_used, ctx, new_rels, plan, pattern_index)


def _expand_step(step: _Step, row: dict[str, Any],
                 bound: dict[int, int], used: frozenset[int],
                 ctx: ExecutionContext, rel_values: dict[int, Any],
                 ) -> Iterator[tuple[dict[str, Any], dict[int, int],
                                     frozenset[int], dict[int, Any]]]:
    """One relationship step: expand, filter the target, bind."""
    source = bound[step.source_index]
    target_index = step.source_index + (-1 if step.reversed else 1)
    if step.rel.var_length:
        expansions = _expand_var_length(step, source, row, used, ctx)
    else:
        expansions = _expand_single(step, source, row, used, ctx)
    for target_node, rel_value, edges in expansions:
        if not _node_ok(step.target, target_node, row, ctx):
            continue
        # orient in pattern order: a reversed walk of a var-length
        # relationship produced its edges back to front
        if step.reversed and isinstance(rel_value, tuple):
            oriented = tuple(reversed(rel_value))
        else:
            oriented = rel_value
        new_row = dict(row)
        _bind_node(new_row, step.target, target_node)
        if step.rel.variable:
            if step.rel.variable in row:
                if row[step.rel.variable] != oriented:
                    continue
            else:
                new_row[step.rel.variable] = oriented
        new_bound = dict(bound)
        new_bound[target_index] = target_node
        new_rels = dict(rel_values)
        new_rels[step.rel_index] = oriented
        yield new_row, new_bound, used | edges, new_rels


def _hops_text(rel: ast.RelPattern) -> str:
    upper = "" if rel.max_hops is None else str(rel.max_hops)
    return f"*{rel.min_hops}..{upper}"


def _expand_single(step: _Step, source: int, row: Mapping[str, Any],
                   used: frozenset[int], ctx: ExecutionContext,
                   ) -> Iterator[tuple[int, Any, frozenset[int]]]:
    types = step.rel.types or None
    for edge_id in ctx.view.edges_of(source, step.direction, types):
        ctx.tick()
        ctx.db_hit()
        if edge_id in used:
            continue
        if not _edge_props_ok(step.rel, edge_id, row, ctx):
            continue
        yield (other_end(ctx.view, edge_id, source), EdgeRef(edge_id),
               frozenset((edge_id,)))


def _expand_var_length(step: _Step, source: int, row: Mapping[str, Any],
                       used: frozenset[int], ctx: ExecutionContext,
                       ) -> Iterator[tuple[int, Any, frozenset[int]]]:
    """Depth-first path enumeration with per-path edge uniqueness."""
    rel = step.rel
    types = rel.types or None
    min_hops = rel.min_hops
    max_hops = rel.max_hops
    if min_hops == 0:
        yield source, (), frozenset()
    stack: list[tuple[int, tuple[int, ...]]] = [(source, ())]
    while stack:
        node_id, path_edges = stack.pop()
        depth = len(path_edges)
        if max_hops is not None and depth >= max_hops:
            continue
        for edge_id in ctx.view.edges_of(node_id, step.direction, types):
            ctx.tick()
            ctx.db_hit()
            if edge_id in path_edges or edge_id in used:
                continue
            if not _edge_props_ok(rel, edge_id, row, ctx):
                continue
            neighbor = other_end(ctx.view, edge_id, node_id)
            new_path = path_edges + (edge_id,)
            if len(new_path) >= min_hops:
                yield (neighbor,
                       tuple(EdgeRef(edge) for edge in new_path),
                       frozenset(new_path))
            stack.append((neighbor, new_path))


def _build_path(pattern: ast.Pattern, bound: dict[int, int],
                rel_values: dict[int, Any],
                ctx: ExecutionContext) -> PathValue:
    """Assemble a PathValue in pattern order, expanding var-length
    segments to include their intermediate nodes."""
    nodes = [NodeRef(bound[0])]
    edges: list[EdgeRef] = []
    current = bound[0]
    for rel_index in range(len(pattern.rels)):
        value = rel_values.get(rel_index)
        segment = value if isinstance(value, tuple) else \
            (() if value is None else (value,))
        for edge_ref in segment:
            edges.append(edge_ref)
            current = other_end(ctx.view, edge_ref.id, current)
            nodes.append(NodeRef(current))
        if not segment:
            # zero-length var-length hop: endpoint equals start
            current = bound[rel_index + 1]
            if nodes[-1].id != current:
                nodes.append(NodeRef(current))
    return PathValue(tuple(nodes), tuple(edges))


def _match_shortest(pattern: ast.Pattern, row: dict[str, Any],
                    used: frozenset[int], ctx: ExecutionContext,
                    ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
    """shortestPath()/allShortestPaths() over one var-length pattern.

    Supported shape (the paper's Section 4.4 use case): two endpoint
    nodes joined by a single variable-length relationship. BFS finds
    the minimum-hop path(s) instead of enumerating all paths.
    """
    if len(pattern.rels) != 1 or not pattern.rels[0].var_length:
        raise CypherSemanticError(
            "shortestPath() supports (a)-[:t*]-(b) patterns")
    rel = pattern.rels[0]
    direction = _DIRECTIONS[rel.direction]
    types = rel.types or None

    def edge_ok(edge_id: int) -> bool:
        if edge_id in used:
            return False
        return _edge_props_ok(rel, edge_id, row, ctx)

    from repro.graphdb import algo
    for source in _anchor_candidates(pattern.nodes[0], row, ctx):
        if not _node_ok(pattern.nodes[0], source, row, ctx):
            continue
        for target in _anchor_candidates(pattern.nodes[1], row, ctx):
            ctx.tick()
            if not _node_ok(pattern.nodes[1], target, row, ctx):
                continue
            if pattern.shortest == "all":
                found = algo.all_shortest_paths(
                    ctx.view, source, target, types, direction,
                    edge_filter=edge_ok)
            else:
                single = algo.shortest_path_with_edges(
                    ctx.view, source, target, types, direction,
                    edge_filter=edge_ok)
                found = [single] if single is not None else []
            for node_path, edge_path in found:
                hops = len(edge_path)
                if hops < rel.min_hops:
                    continue
                if rel.max_hops is not None and hops > rel.max_hops:
                    continue
                new_row = dict(row)
                _bind_node(new_row, pattern.nodes[0], source)
                _bind_node(new_row, pattern.nodes[1], target)
                oriented = tuple(EdgeRef(edge) for edge in edge_path)
                if rel.variable and rel.variable not in new_row:
                    new_row[rel.variable] = oriented
                if pattern.path_variable:
                    new_row[pattern.path_variable] = PathValue(
                        tuple(NodeRef(node) for node in node_path),
                        oriented)
                yield new_row, used | frozenset(edge_path)


def _edge_props_ok(rel: ast.RelPattern, edge_id: int,
                   row: Mapping[str, Any], ctx: ExecutionContext) -> bool:
    for key, expr in rel.properties:
        wanted = evaluate(expr, row, ctx)
        ctx.db_hit()
        if ctx.view.edge_property(edge_id, key) != wanted:
            return False
    return True


def _node_ok(node: ast.NodePattern, node_id: int, row: Mapping[str, Any],
             ctx: ExecutionContext) -> bool:
    if node.variable and node.variable in row:
        value = row[node.variable]
        if not isinstance(value, NodeRef) or value.id != node_id:
            return False
    if node.labels:
        ctx.db_hit()
        labels = ctx.view.node_labels(node_id)
        if not all(label in labels for label in node.labels):
            return False
    for key, expr in node.properties:
        wanted = evaluate(expr, row, ctx)
        ctx.db_hit()
        if ctx.view.node_property(node_id, key) != wanted:
            return False
    return True


def _bind_node(row: dict[str, Any], node: ast.NodePattern,
               node_id: int) -> None:
    if node.variable and node.variable not in row:
        row[node.variable] = NodeRef(node_id)
