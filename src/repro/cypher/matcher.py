"""Pattern matching: the heart of MATCH and of pattern predicates.

Semantics follow Cypher:

* Within one ``MATCH`` clause, relationships are unique across the
  whole clause (an edge is never bound twice in the same match row).
* Variable-length relationships (``-[:t*]->``) *enumerate paths* with
  per-path relationship uniqueness. This is deliberately not a
  visited-set reachability search — path enumeration is what makes the
  paper's Figure 6 transitive closure explode in Cypher while the
  embedded traversal answers in linear time (paper Section 6.1), and
  the reproduction keeps that behaviour honest. The one exception is
  planner-proven safe: a var-length relationship whose paths are
  observably *endpoint-distinct* (no rel/path variable, consumed by a
  DISTINCT projection — see
  :func:`repro.cypher.planner.reachability_eligible`) runs as a
  visited-set BFS when the engine's ``use_reachability_rewrite`` gate
  is on, returning the identical row set in linear time.

Matching works outward from an *anchor*. With the cost-based planner
(default) the anchor and the expansion order come from
:func:`repro.cypher.planner.plan_pattern`, costed against live
:class:`~repro.graphdb.stats.GraphStatistics`; with the planner off,
the legacy heuristic applies: the first pattern node whose variable is
already bound, else the most selective scannable node (label scan
beats full scan). Each relationship step expands adjacency through the
:class:`~repro.graphdb.view.GraphView` (memoized per query by
:meth:`~repro.cypher.evaluator.ExecutionContext.adjacency`), so the
same code path serves the in-memory graph and the page-cached disk
store.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Mapping

from repro.cypher import ast
from repro.cypher.evaluator import ExecutionContext, evaluate
from repro.cypher.plan import ANCHOR_OPERATORS
from repro.cypher.planner import (PatternPlan, anchor_strategy,
                                  plan_pattern)
from repro.cypher.result import EdgeRef, NodeRef, PathValue
from repro.errors import CypherSemanticError
from repro.graphdb.view import Direction, other_end

__all__ = ["match_clause", "pattern_exists", "anchor_strategy"]

_DIRECTIONS = {"out": Direction.OUT, "in": Direction.IN,
               "both": Direction.BOTH}


@dataclasses.dataclass(frozen=True)
class _Step:
    """One relationship expansion, oriented away from the anchor."""

    rel: ast.RelPattern
    target: ast.NodePattern
    source_index: int  # index into pattern.nodes of the bound side
    rel_index: int     # index into pattern.rels
    reversed: bool     # True when walking right-to-left

    @property
    def direction(self) -> Direction:
        wanted = _DIRECTIONS[self.rel.direction]
        return wanted.reverse() if self.reversed else wanted


def match_clause(clause: ast.Match, rows: Iterator[Mapping[str, Any]],
                 ctx: ExecutionContext,
                 plan: Any | None = None) -> Iterator[dict[str, Any]]:
    """Apply one MATCH clause to a stream of binding rows.

    ``plan`` is the clause's profiled operator (an
    :class:`~repro.obs.profile.OperatorStats`) when running under
    PROFILE; the matcher hangs anchor/expand operators off it.
    """
    new_variables = sorted({name for pattern in clause.patterns
                            for name in pattern.variables()})
    for row in rows:
        produced = False
        for result in _match_patterns(clause.patterns, 0, dict(row),
                                      frozenset(), ctx, plan):
            produced = True
            yield result
        if clause.optional and not produced:
            padded = dict(row)
            for name in new_variables:
                padded.setdefault(name, None)
            yield padded


def pattern_exists(pattern: ast.Pattern, row: Mapping[str, Any],
                   ctx: ExecutionContext) -> bool:
    """WHERE pattern predicate: does at least one match exist?"""
    for _ in _match_patterns((pattern,), 0, dict(row), frozenset(), ctx):
        return True
    return False


def _match_patterns(patterns: tuple[ast.Pattern, ...], index: int,
                    row: dict[str, Any], used: frozenset[int],
                    ctx: ExecutionContext,
                    plan: Any | None = None) -> Iterator[dict[str, Any]]:
    if index == len(patterns):
        yield row
        return
    for new_row, new_used in _match_one(patterns[index], row, used, ctx,
                                        plan, index):
        yield from _match_patterns(patterns, index + 1, new_row, new_used,
                                   ctx, plan)


def _match_one(pattern: ast.Pattern, row: dict[str, Any],
               used: frozenset[int], ctx: ExecutionContext,
               plan: Any | None = None, pattern_index: int = 0,
               ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
    profiler = ctx.profiler if plan is not None else None
    if pattern.shortest is not None:
        found = _match_shortest(pattern, row, used, ctx)
        if profiler is not None:
            operator = profiler.operator(
                plan, ("shortest", pattern_index), "ShortestPath",
                mode=pattern.shortest)
            found = profiler.iterate(operator, found)
        yield from found
        return
    if ctx.use_cost_based_planner:
        pattern_plan = _plan_for(pattern, row, ctx)
        anchor = pattern_plan.anchor
        steps = _steps_from_plan(pattern, pattern_plan)
        estimates = {rel_index: estimate for (rel_index, _, _), estimate
                     in zip(pattern_plan.steps,
                            pattern_plan.step_estimates)}
    else:
        pattern_plan = None
        anchor = _pick_anchor(pattern, row)
        steps = _build_steps(pattern, anchor)
        estimates = None
    track_path = pattern.path_variable is not None
    candidates = _anchor_candidates(pattern.nodes[anchor], row, ctx)
    if profiler is not None:
        if pattern_plan is not None:
            strategy, detail = pattern_plan.strategy, pattern_plan.detail
            anchor_estimate = pattern_plan.anchor_estimate
        else:
            strategy, detail = anchor_strategy(
                pattern.nodes[anchor], set(row),
                tuple(getattr(ctx.view.indexes, "auto_index_keys", ())),
                ctx.use_index_seek)
            anchor_estimate = None
        operator = profiler.operator(
            plan, ("anchor", pattern_index), ANCHOR_OPERATORS[strategy],
            estimated=anchor_estimate,
            variable=pattern.nodes[anchor].variable, on=detail or None)
        candidates = profiler.iterate(operator, candidates,
                                      hits_per_row=1)
    for node_id in candidates:
        if not _node_ok(pattern.nodes[anchor], node_id, row, ctx):
            continue
        anchored = dict(row)
        _bind_node(anchored, pattern.nodes[anchor], node_id)
        bound = {anchor: node_id}
        for match_row, match_used, final_bound, final_rels in _expand(
                steps, 0, anchored, bound, used, ctx, {}, plan,
                pattern_index, estimates):
            if track_path:
                match_row = dict(match_row)
                match_row[pattern.path_variable] = _build_path(
                    pattern, final_bound, final_rels, ctx)
            yield match_row, match_used


def _plan_for(pattern: ast.Pattern, row: Mapping[str, Any],
              ctx: ExecutionContext) -> PatternPlan:
    """The pattern's costed plan, memoized per (pattern, bound vars).

    Only pattern variables already bound in the row affect the plan
    (they decide which nodes can anchor as 'bound'), so the memo key
    intersects the row's keys with the pattern's variables: every row
    of one clause's input stream shares a single planning pass.
    """
    known = frozenset(name for name in pattern.variables()
                      if name in row)
    key = (id(pattern), known)
    cached = ctx._pattern_plans.get(key)
    if cached is None:
        plan = plan_pattern(pattern, set(known), ctx.view,
                            ctx.use_index_seek)
        # the entry pins the pattern object so an engine-persistent
        # memo can never serve a plan for a recycled id()
        cached = (pattern, plan)
        ctx._pattern_plans[key] = cached
    return cached[1]


def _pick_anchor(pattern: ast.Pattern, row: Mapping[str, Any]) -> int:
    """Legacy anchor heuristic: bound > labeled > has-properties > 0."""
    for index, node in enumerate(pattern.nodes):
        if node.variable and node.variable in row:
            return index
    for index, node in enumerate(pattern.nodes):
        if node.labels:
            return index
    for index, node in enumerate(pattern.nodes):
        if node.properties:
            return index
    return 0


def _build_steps(pattern: ast.Pattern, anchor: int) -> list[_Step]:
    """Legacy step order: all rightward steps, then all leftward."""
    steps = []
    for index in range(anchor, len(pattern.rels)):
        steps.append(_Step(pattern.rels[index], pattern.nodes[index + 1],
                           source_index=index, rel_index=index,
                           reversed=False))
    for index in range(anchor - 1, -1, -1):
        steps.append(_Step(pattern.rels[index], pattern.nodes[index],
                           source_index=index + 1, rel_index=index,
                           reversed=True))
    return steps


def _steps_from_plan(pattern: ast.Pattern,
                     pattern_plan: PatternPlan) -> list[_Step]:
    """Materialize the planner's costed step order as ``_Step``s."""
    steps = []
    for rel_index, source, reverse in pattern_plan.steps:
        target = pattern.nodes[rel_index] if reverse \
            else pattern.nodes[rel_index + 1]
        steps.append(_Step(pattern.rels[rel_index], target,
                           source_index=source, rel_index=rel_index,
                           reversed=reverse))
    return steps


def _anchor_candidates(node: ast.NodePattern, row: Mapping[str, Any],
                       ctx: ExecutionContext) -> Iterator[int]:
    indexed_keys = tuple(getattr(ctx.view.indexes, "auto_index_keys",
                                 ()))
    strategy, _detail = anchor_strategy(node, set(row), indexed_keys,
                                        ctx.use_index_seek)
    if strategy == "bound":
        value = row[node.variable]  # type: ignore[index]
        if value is None:
            return
        if not isinstance(value, NodeRef):
            raise CypherSemanticError(
                f"variable {node.variable!r} is not a node")
        yield value.id
        return
    if strategy == "index-seek":
        # a property literal on an auto-indexed key beats a label scan
        for key, expr in node.properties:
            if key in indexed_keys and isinstance(expr, ast.Literal) \
                    and expr.value is not None:
                yield from ctx.view.indexes.lookup(key, expr.value)
                return
    if strategy == "label-scan":
        yield from ctx.view.nodes_with_label(node.labels[0])
        return
    yield from ctx.view.node_ids()


def _use_reachability(step: _Step, used: frozenset[int],
                      ctx: ExecutionContext) -> bool:
    """Run this step as visited-set BFS instead of path enumeration?

    The planner proved eligibility at prepare time (the mark); the
    engine's runtime gate decides per query. ``used`` must be empty:
    consumed edges from a sibling pattern would re-introduce the
    clause-level uniqueness the eligibility proof discharged.
    """
    return (step.rel.var_length and step.rel.reachability
            and ctx.use_reachability_rewrite and not used)


def _expand(steps: list[_Step], step_index: int, row: dict[str, Any],
            bound: dict[int, int], used: frozenset[int],
            ctx: ExecutionContext, rel_values: dict[int, Any],
            plan: Any | None = None, pattern_index: int = 0,
            estimates: Mapping[int, float] | None = None,
            ) -> Iterator[tuple[dict[str, Any], frozenset[int],
                                dict[int, int], dict[int, Any]]]:
    if step_index == len(steps):
        yield row, used, bound, rel_values
        return
    step = steps[step_index]
    results = _expand_step(step, row, bound, used, ctx, rel_values)
    if plan is not None and ctx.profiler is not None:
        operator = ctx.profiler.operator(
            plan, ("expand", pattern_index, step.rel_index),
            "VarLengthExpand" if step.rel.var_length else "Expand",
            estimated=estimates.get(step.rel_index)
            if estimates is not None else None,
            types="|".join(step.rel.types) or None,
            direction=step.rel.direction,
            bounds=_hops_text(step.rel) if step.rel.var_length else None,
            mode="reachability"
            if _use_reachability(step, used, ctx) else None)
        results = ctx.profiler.iterate(operator, results)
    for new_row, new_bound, new_used, new_rels in results:
        yield from _expand(steps, step_index + 1, new_row, new_bound,
                           new_used, ctx, new_rels, plan, pattern_index,
                           estimates)


def _expand_step(step: _Step, row: dict[str, Any],
                 bound: dict[int, int], used: frozenset[int],
                 ctx: ExecutionContext, rel_values: dict[int, Any],
                 ) -> Iterator[tuple[dict[str, Any], dict[int, int],
                                     frozenset[int], dict[int, Any]]]:
    """One relationship step: expand, filter the target, bind."""
    source = bound[step.source_index]
    target_index = step.source_index + (-1 if step.reversed else 1)
    if step.rel.var_length:
        if _use_reachability(step, used, ctx):
            expansions = _expand_reachability(step, source, row, ctx)
        else:
            expansions = _expand_var_length(step, source, row, used, ctx)
    else:
        expansions = _expand_single(step, source, row, used, ctx)
    for target_node, rel_value, edges in expansions:
        if not _node_ok(step.target, target_node, row, ctx):
            continue
        # orient in pattern order: a reversed walk of a var-length
        # relationship produced its edges back to front
        if step.reversed and isinstance(rel_value, tuple):
            oriented = tuple(reversed(rel_value))
        else:
            oriented = rel_value
        new_row = dict(row)
        _bind_node(new_row, step.target, target_node)
        if step.rel.variable:
            if step.rel.variable in row:
                if row[step.rel.variable] != oriented:
                    continue
            else:
                new_row[step.rel.variable] = oriented
        new_bound = dict(bound)
        new_bound[target_index] = target_node
        new_rels = dict(rel_values)
        new_rels[step.rel_index] = oriented
        yield new_row, new_bound, used | edges, new_rels


def _hops_text(rel: ast.RelPattern) -> str:
    upper = "" if rel.max_hops is None else str(rel.max_hops)
    return f"*{rel.min_hops}..{upper}"


def _expand_single(step: _Step, source: int, row: Mapping[str, Any],
                   used: frozenset[int], ctx: ExecutionContext,
                   ) -> Iterator[tuple[int, Any, frozenset[int]]]:
    types = step.rel.types or None
    for edge_id in ctx.adjacency(source, step.direction, types):
        ctx.tick()
        if edge_id in used:
            continue
        if not _edge_props_ok(step.rel, edge_id, row, ctx):
            continue
        yield (other_end(ctx.view, edge_id, source), EdgeRef(edge_id),
               frozenset((edge_id,)))


def _expand_var_length(step: _Step, source: int, row: Mapping[str, Any],
                       used: frozenset[int], ctx: ExecutionContext,
                       ) -> Iterator[tuple[int, Any, frozenset[int]]]:
    """Depth-first path enumeration with per-path edge uniqueness."""
    rel = step.rel
    types = rel.types or None
    min_hops = rel.min_hops
    max_hops = rel.max_hops
    if min_hops == 0:
        yield source, (), frozenset()
    stack: list[tuple[int, tuple[int, ...]]] = [(source, ())]
    while stack:
        node_id, path_edges = stack.pop()
        depth = len(path_edges)
        if max_hops is not None and depth >= max_hops:
            continue
        for edge_id in ctx.adjacency(node_id, step.direction, types):
            ctx.tick()
            if edge_id in path_edges or edge_id in used:
                continue
            if not _edge_props_ok(rel, edge_id, row, ctx):
                continue
            neighbor = other_end(ctx.view, edge_id, node_id)
            new_path = path_edges + (edge_id,)
            if len(new_path) >= min_hops:
                yield (neighbor,
                       tuple(EdgeRef(edge) for edge in new_path),
                       frozenset(new_path))
            stack.append((neighbor, new_path))


def _expand_reachability(step: _Step, source: int,
                         row: Mapping[str, Any], ctx: ExecutionContext,
                         ) -> Iterator[tuple[int, Any, frozenset[int]]]:
    """Visited-set BFS for a planner-marked var-length relationship.

    Yields each reachable endpoint exactly once, instead of once per
    path: db-hits become linear in the reachable edge set. Sound only
    under :func:`repro.cypher.planner.reachability_eligible`'s
    preconditions — min_hops <= 1, so "reachable within <= max_hops
    edge-unique hops" equals "BFS level <= max_hops" (a minimum-hop
    path is node-simple, hence edge-unique), and no rel/path variable,
    so the collapsed paths are unobservable. The endpoint binds no
    edges (``frozenset()``): the clause holds a single relationship,
    so clause-level edge uniqueness has nothing left to check.
    """
    rel = step.rel
    types = rel.types or None
    max_hops = rel.max_hops
    visited = {source}
    yielded = set()
    if rel.min_hops == 0:
        yielded.add(source)
        yield source, (), frozenset()
    frontier = [source]
    depth = 0
    while frontier and (max_hops is None or depth < max_hops):
        depth += 1
        next_frontier: list[int] = []
        for node_id in frontier:
            for edge_id in ctx.adjacency(node_id, step.direction, types):
                ctx.tick()
                if rel.properties and \
                        not _edge_props_ok(rel, edge_id, row, ctx):
                    continue
                neighbor = other_end(ctx.view, edge_id, node_id)
                if neighbor not in yielded:
                    # the source itself is yielded only when re-reached
                    # through an edge (a cycle), matching enumeration
                    yielded.add(neighbor)
                    yield neighbor, (), frozenset()
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier


def _build_path(pattern: ast.Pattern, bound: dict[int, int],
                rel_values: dict[int, Any],
                ctx: ExecutionContext) -> PathValue:
    """Assemble a PathValue in pattern order, expanding var-length
    segments to include their intermediate nodes."""
    nodes = [NodeRef(bound[0])]
    edges: list[EdgeRef] = []
    current = bound[0]
    for rel_index in range(len(pattern.rels)):
        value = rel_values.get(rel_index)
        segment = value if isinstance(value, tuple) else \
            (() if value is None else (value,))
        for edge_ref in segment:
            edges.append(edge_ref)
            current = other_end(ctx.view, edge_ref.id, current)
            nodes.append(NodeRef(current))
        if not segment:
            # zero-length var-length hop: endpoint equals start
            current = bound[rel_index + 1]
            if nodes[-1].id != current:
                nodes.append(NodeRef(current))
    return PathValue(tuple(nodes), tuple(edges))


def _match_shortest(pattern: ast.Pattern, row: dict[str, Any],
                    used: frozenset[int], ctx: ExecutionContext,
                    ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
    """shortestPath()/allShortestPaths() over one var-length pattern.

    Supported shape (the paper's Section 4.4 use case): two endpoint
    nodes joined by a single variable-length relationship. One BFS per
    *source* covers every target (the target candidates are answered
    by membership in the BFS parents DAG), instead of the old
    O(sources x targets) BFS-per-pair loop.
    """
    if len(pattern.rels) != 1 or not pattern.rels[0].var_length:
        raise CypherSemanticError(
            "shortestPath() supports (a)-[:t*]-(b) patterns")
    rel = pattern.rels[0]
    direction = _DIRECTIONS[rel.direction]
    types = rel.types or None

    def edge_ok(edge_id: int) -> bool:
        if edge_id in used:
            return False
        return _edge_props_ok(rel, edge_id, row, ctx)

    from repro.graphdb import algo
    targets = [target
               for target in _anchor_candidates(pattern.nodes[1], row,
                                                ctx)
               if _node_ok(pattern.nodes[1], target, row, ctx)]
    limit = 64 if pattern.shortest == "all" else 1
    for source in _anchor_candidates(pattern.nodes[0], row, ctx):
        ctx.tick()
        if not _node_ok(pattern.nodes[0], source, row, ctx):
            continue
        depth_of, parents = algo.shortest_path_dag(
            ctx.view, source, types, direction, edge_filter=edge_ok,
            max_depth=rel.max_hops)
        for target in targets:
            ctx.tick()
            hops = depth_of.get(target)
            if hops is None or hops < rel.min_hops:
                continue
            if rel.max_hops is not None and hops > rel.max_hops:
                continue
            found = algo.unwind_shortest_paths(source, target, depth_of,
                                               parents, limit=limit)
            for node_path, edge_path in found:
                new_row = dict(row)
                _bind_node(new_row, pattern.nodes[0], source)
                _bind_node(new_row, pattern.nodes[1], target)
                oriented = tuple(EdgeRef(edge) for edge in edge_path)
                if rel.variable and rel.variable not in new_row:
                    new_row[rel.variable] = oriented
                if pattern.path_variable:
                    new_row[pattern.path_variable] = PathValue(
                        tuple(NodeRef(node) for node in node_path),
                        oriented)
                yield new_row, used | frozenset(edge_path)


def _edge_props_ok(rel: ast.RelPattern, edge_id: int,
                   row: Mapping[str, Any], ctx: ExecutionContext) -> bool:
    for key, expr in rel.properties:
        wanted = evaluate(expr, row, ctx)
        ctx.db_hit()
        if ctx.view.edge_property(edge_id, key) != wanted:
            return False
    return True


def _node_ok(node: ast.NodePattern, node_id: int, row: Mapping[str, Any],
             ctx: ExecutionContext) -> bool:
    if node.variable and node.variable in row:
        value = row[node.variable]
        if not isinstance(value, NodeRef) or value.id != node_id:
            return False
    if node.labels:
        ctx.db_hit()
        labels = ctx.view.node_labels(node_id)
        if not all(label in labels for label in node.labels):
            return False
    for key, expr in node.properties:
        wanted = evaluate(expr, row, ctx)
        ctx.db_hit()
        if ctx.view.node_property(node_id, key) != wanted:
            return False
    return True


def _bind_node(row: dict[str, Any], node: ast.NodePattern,
               node_id: int) -> None:
    if node.variable and node.variable not in row:
        row[node.variable] = NodeRef(node_id)
