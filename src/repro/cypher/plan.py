"""Structured query plans: the operator tree behind EXPLAIN/PROFILE.

``CypherEngine.explain()`` returns a :class:`PlanDescription` whose
``__str__`` reproduces the engine's historical text plan line for
line, so string-based callers keep working; structured callers walk
``children``/``operators()`` instead. ``PROFILE`` execution produces
the same tree shape annotated with measured rows, db-hits and
per-operator self time.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator

#: anchor-strategy name (from the matcher) -> physical operator name
ANCHOR_OPERATORS = {
    "bound": "Argument",
    "index-seek": "NodeIndexSeek",
    "label-scan": "NodeByLabelScan",
    "all-nodes": "AllNodesScan",
}


@dataclasses.dataclass(frozen=True)
class PlanDescription:
    """One operator in an EXPLAIN/PROFILE tree.

    ``estimated_rows`` is filled by EXPLAIN where an estimate is cheap
    (index/label cardinalities); ``rows``/``db_hits``/``time_ms`` are
    filled only by PROFILE. ``text`` carries the operator's legacy
    explain line(s), and ``__str__`` of a tree that has them reproduces
    the historical text output exactly.
    """

    name: str
    args: dict[str, Any] = dataclasses.field(default_factory=dict)
    children: tuple["PlanDescription", ...] = ()
    estimated_rows: int | None = None
    rows: int | None = None
    db_hits: int | None = None
    time_ms: float | None = None
    text: str | None = None
    #: morsels produced under batch execution (None in row mode)
    batches: int | None = None

    # -- traversal -------------------------------------------------------------

    def operators(self) -> Iterator["PlanDescription"]:
        """Pre-order traversal, self first."""
        yield self
        for child in self.children:
            yield from child.operators()

    def find(self, name: str) -> list["PlanDescription"]:
        """All operators in the tree with this name."""
        return [op for op in self.operators() if op.name == name]

    def find_one(self, name: str) -> "PlanDescription":
        """The unique operator with this name; raises if 0 or many."""
        found = self.find(name)
        if len(found) != 1:
            raise LookupError(
                f"expected exactly one {name!r} operator, "
                f"found {len(found)}")
        return found[0]

    # -- profile helpers -------------------------------------------------------

    @property
    def profiled(self) -> bool:
        return self.rows is not None

    def total_db_hits(self) -> int:
        return sum(op.db_hits or 0 for op in self.operators())

    def hottest(self) -> "PlanDescription | None":
        """The non-root operator with the most self time (PROFILE)."""
        candidates = [op for op in self.operators()
                      if op is not self and op.time_ms is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda op: op.time_ms)

    # -- wire format -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Recursive JSON-compatible encoding (the wire's ``profile``
        field); non-string ``args`` values are stringified so the tree
        always survives ``json.dumps``."""
        payload: dict[str, Any] = {"name": self.name}
        if self.args:
            payload["args"] = {
                key: value if isinstance(value, (str, int, float,
                                                 bool, type(None)))
                else str(value)
                for key, value in self.args.items()}
        for field in ("estimated_rows", "rows", "db_hits", "time_ms",
                      "text", "batches"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        if self.children:
            payload["children"] = [child.to_dict()
                                   for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PlanDescription":
        """Rebuild a tree encoded by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            args=dict(payload.get("args", {})),
            children=tuple(cls.from_dict(child)
                           for child in payload.get("children", ())),
            estimated_rows=payload.get("estimated_rows"),
            rows=payload.get("rows"),
            db_hits=payload.get("db_hits"),
            time_ms=payload.get("time_ms"),
            text=payload.get("text"),
            batches=payload.get("batches"))

    # -- rendering -------------------------------------------------------------

    def pretty(self) -> str:
        """Tree rendering with whatever stats each operator carries."""
        lines: list[str] = []

        def walk(node: "PlanDescription", depth: int) -> None:
            arg_text = ", ".join(f"{key}={value}" for key, value
                                 in node.args.items())
            label = f"{node.name}({arg_text})" if arg_text \
                else node.name
            stats: list[str] = []
            if node.estimated_rows is not None:
                stats.append(f"est={node.estimated_rows}")
            if node.rows is not None:
                stats.append(f"rows={node.rows}")
            if node.batches is not None:
                stats.append(f"batches={node.batches}")
            if node.db_hits is not None:
                stats.append(f"dbhits={node.db_hits}")
            if node.time_ms is not None:
                stats.append(f"time={node.time_ms:.2f}ms")
            prefix = "" if depth == 0 else "  " * (depth - 1) + "+ "
            suffix = "  [" + " ".join(stats) + "]" if stats else ""
            lines.append(prefix + label + suffix)
            for child in node.children:
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def _legacy_lines(self) -> list[str]:
        return [op.text for op in self.operators() if op.text is not None]

    def __str__(self) -> str:
        legacy = self._legacy_lines()
        if legacy:
            return "\n".join(legacy)
        return self.pretty()

    # -- string back-compat ----------------------------------------------------
    # explain() historically returned a str; these keep substring
    # assertions and .splitlines() callers working on the tree.

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            return item in str(self)
        return any(op is item for op in self.operators())

    def splitlines(self) -> list[str]:
        return str(self).splitlines()
