"""Structured per-query execution options.

One :class:`QueryOptions` value replaces the accretion of positional
parameters on ``Frappe.query()`` / ``CypherEngine.run()``::

    frappe.query("MATCH (n:function) RETURN n.short_name",
                 options=QueryOptions(timeout=2.0, max_rows=100,
                                      profile=True))

Explicit keyword arguments (``parameters=``, ``timeout=``) win over
the same field inside ``options``, so callers can share one options
value and override per call.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping


@dataclasses.dataclass(frozen=True)
class QueryOptions:
    """Execution options for one Cypher query run.

    timeout
        Wall-clock budget in seconds (None = the engine default).
    max_rows
        Truncate the result to this many rows after execution;
        ``result.stats.truncated`` records that it happened.
    profile
        Collect an operator-level execution profile on
        ``result.profile`` (same effect as a ``PROFILE`` prefix on
        the query text).
    parameters
        Query parameters, ``$name`` -> value.
    use_reachability_rewrite
        Tri-state override of the engine's reachability-rewrite gate
        for this run: ``None`` (default) inherits the engine setting,
        ``True``/``False`` force the var-length BFS rewrite on or off
        (the Section 6.1 ablation knob).
    """

    timeout: float | None = None
    max_rows: int | None = None
    profile: bool = False
    parameters: Mapping[str, Any] | None = None
    use_reachability_rewrite: bool | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be >= 0")


#: Default options: no timeout override, no truncation, no profiling.
DEFAULT_OPTIONS = QueryOptions()
