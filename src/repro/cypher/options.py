"""Structured per-query execution options.

One :class:`QueryOptions` value replaces the accretion of positional
parameters on ``Frappe.query()`` / ``CypherEngine.run()``::

    frappe.query("MATCH (n:function) RETURN n.short_name",
                 options=QueryOptions(timeout=2.0, max_rows=100,
                                      profile=True))

Explicit keyword arguments (``parameters=``, ``timeout=``) win over
the same field inside ``options``, so callers can share one options
value and override per call.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping


@dataclasses.dataclass(frozen=True)
class QueryOptions:
    """Execution options for one Cypher query run.

    timeout
        Wall-clock budget in seconds (None = the engine default).
    max_rows
        Truncate the result to this many rows after execution;
        ``result.stats.truncated`` records that it happened.
    profile
        Collect an operator-level execution profile on
        ``result.profile`` (same effect as a ``PROFILE`` prefix on
        the query text).
    parameters
        Query parameters, ``$name`` -> value.
    use_reachability_rewrite
        Tri-state override of the engine's reachability-rewrite gate
        for this run: ``None`` (default) inherits the engine setting,
        ``True``/``False`` force the var-length BFS rewrite on or off
        (the Section 6.1 ablation knob).
    execution_mode
        Per-run override of the engine's execution mode: ``None``
        (default) inherits the engine setting; ``"auto"`` picks
        batch execution when every clause has a batch kernel,
        ``"batch"`` forces morsel-at-a-time execution (clauses
        without a kernel fall back per clause), ``"rows"`` forces the
        row-at-a-time generator pipeline.
    morsel_size
        Rows per batch in batch execution; ``None`` inherits the
        engine's morsel size (default 1024).
    """

    timeout: float | None = None
    max_rows: int | None = None
    profile: bool = False
    parameters: Mapping[str, Any] | None = None
    use_reachability_rewrite: bool | None = None
    execution_mode: str | None = None
    morsel_size: int | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        if self.execution_mode is not None and \
                self.execution_mode not in ("auto", "batch", "rows"):
            raise ValueError(
                "execution_mode must be 'auto', 'batch' or 'rows'")
        if self.morsel_size is not None and self.morsel_size < 1:
            raise ValueError("morsel_size must be >= 1")


#: Default options: no timeout override, no truncation, no profiling.
DEFAULT_OPTIONS = QueryOptions()
